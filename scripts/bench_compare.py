#!/usr/bin/env python3
"""Compare two BENCH_<rev>.json files written by benchmarks/baseline.py.

Prints a metric-by-metric table (baseline vs current, % change) and
flags regressions: a throughput metric that dropped, or a wall-clock
metric that grew, by more than ``--threshold`` percent.  With
``--strict`` a flagged regression makes the script exit non-zero, so CI
can gate on it.  ``--assert-overhead`` additionally bounds every
``*_overhead_pct`` metric of the *current* run by an absolute budget
(telemetry attach cost, idle fault-harness cost, observability-plane
cost) and always fails on a breach, strict or not; a bare number sets
the default budget and repeated ``NAME=PCT`` values pin individual
metrics (e.g. ``--assert-overhead 30 --assert-overhead
observability_overhead_pct=10``).

Usage::

    python scripts/bench_compare.py BENCH_old.json BENCH_new.json
    python scripts/bench_compare.py            # two newest in benchmarks/

Both legs must be produced with the determinism sanitizer OFF (the
default).  ``DeterminismSanitizer`` swaps module attributes on hot
paths (``random.*``, ``time.time``), so a sanitized leg measures the
tripwires, not the simulator — never pass ``sanitize=True`` /
``--sanitize`` when timing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: metric -> True when higher is better (False: lower is better).
#: Metrics absent here are informational and never flagged.
DIRECTIONS = {
    "events_per_sec": True,
    "events_per_sec_telemetry": True,
    "telemetry_overhead_pct": False,
    "scheduler_events_per_sec": True,
    "scheduler_ref_events_per_sec": True,
    "scheduler_speedup": True,
    "dataplane_msgs_per_sec": True,
    "dataplane_frame_cache_hit_rate": True,
    "dataplane_envelope_bytes_per_msg": False,
    "scans_per_sec": True,
    "cache_hit_rate": True,
    "chaos_off_s": False,
    "chaos_armed_s": False,
    "chaos_idle_overhead_pct": False,
    "observability_off_s": False,
    "observability_on_s": False,
    "observability_overhead_pct": False,
    "sharded_plain_s": False,
    "sharded_single_s": False,
    "sharded_overhead_pct": False,
    "sharded_two_shard_s": False,
    "replication_serial_s": False,
    "replication_parallel_s": False,
    "replication_speedup": True,
    "resilience_plain_s": False,
    "resilience_supervised_s": False,
    "resilience_overhead_pct": False,
}


def load(path: Path) -> dict:
    with path.open() as handle:
        payload = json.load(handle)
    if "results" not in payload or "rev" not in payload:
        raise ValueError(f"{path} is not a baseline.py benchmark file")
    return payload


class NoPriorBaseline(Exception):
    """There is no earlier benchmark run to compare against."""


def _available(directory: Path):
    return sorted(directory.glob("BENCH_*.json"),
                  key=lambda p: p.stat().st_mtime)


def find_default_pair(directory: Path):
    candidates = _available(directory)
    if len(candidates) < 2:
        have = (f"only {candidates[0].name}" if candidates
                else "no BENCH_*.json files")
        raise NoPriorBaseline(
            f"no prior baseline under {directory} ({have}); run "
            f"benchmarks/baseline.py on the comparison rev first, or "
            f"pass two files explicitly")
    return candidates[-2], candidates[-1]


def require_file(path: Path, directory: Path) -> Path:
    """A named benchmark file, or a clear no-prior-baseline error.

    The benchmark history legitimately has gaps (a rev whose BENCH file
    was never committed); pointing at one must explain itself rather
    than surface a bare ENOENT.
    """
    if path.exists():
        return path
    names = ", ".join(p.name for p in _available(directory)) or "none"
    raise NoPriorBaseline(
        f"no prior baseline at {path}: that rev was never benchmarked "
        f"(or its BENCH file was not committed).  Available under "
        f"{directory}: {names}")


def compare(baseline: dict, current: dict, threshold: float):
    """Yield (metric, old, new, pct_change, regressed) rows."""
    old_results, new_results = baseline["results"], current["results"]
    for metric in sorted(set(old_results) & set(new_results)):
        old, new = old_results[metric], new_results[metric]
        if not isinstance(old, (int, float)) or isinstance(old, bool):
            continue
        pct = ((new - old) / old * 100.0) if old else 0.0
        higher_better = DIRECTIONS.get(metric)
        if higher_better is None:
            regressed = False
        elif metric.endswith("_overhead_pct"):
            # already a percentage: compare absolute points, not the
            # relative change of a near-zero number
            regressed = new - old > threshold
        elif higher_better:
            regressed = pct < -threshold
        else:
            regressed = pct > threshold
        yield metric, float(old), float(new), pct, regressed


def parse_overhead_budgets(specs):
    """(default budget, per-metric overrides) from repeated flag values.

    Mirrors benchmarks/baseline.py: a bare number is the default budget
    for every ``*_overhead_pct`` metric, ``NAME=PCT`` pins one metric;
    with only overrides given, un-named metrics are not gated.
    """
    default_budget = None
    per_metric = {}
    for spec in specs:
        spec = str(spec)
        if "=" in spec:
            name, _, value = spec.partition("=")
            per_metric[name.strip()] = float(value)
        else:
            default_budget = float(spec)
    return default_budget, per_metric


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path, nargs="?")
    parser.add_argument("current", type=Path, nargs="?")
    parser.add_argument("--dir", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "benchmarks",
                        help="where to look for BENCH_*.json when paths "
                             "are not given")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="percent change that counts as a regression")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any tracked metric regressed")
    parser.add_argument("--assert-overhead", action="append",
                        default=None, metavar="PCT|NAME=PCT",
                        help="exit 1 when any *_overhead_pct metric in "
                             "the CURRENT results exceeds its budget "
                             "(absolute, independent of the baseline). "
                             "A bare number is the default budget; "
                             "NAME=PCT pins one metric (repeat the "
                             "flag to combine)")
    args = parser.parse_args(argv)

    try:
        if args.baseline and args.current:
            base_path = require_file(args.baseline, args.dir)
            cur_path = require_file(args.current, args.dir)
        elif args.baseline or args.current:
            parser.error("give both files or neither")
            return 2
        else:
            base_path, cur_path = find_default_pair(args.dir)
    except NoPriorBaseline as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    try:
        baseline, current = load(base_path), load(cur_path)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if baseline.get("quick") != current.get("quick"):
        print("warning: comparing a --quick run against a full run; "
              "deltas are not meaningful", file=sys.stderr)

    print(f"baseline: {baseline['rev']}  ({base_path.name})")
    print(f"current:  {current['rev']}  ({cur_path.name})")
    print(f"{'metric':<26s} {'baseline':>14s} {'current':>14s} "
          f"{'change':>9s}")
    regressions = []
    for metric, old, new, pct, regressed in compare(
            baseline, current, args.threshold):
        flag = "  << REGRESSION" if regressed else ""
        print(f"{metric:<26s} {old:>14,.2f} {new:>14,.2f} "
              f"{pct:>+8.1f}%{flag}")
        if regressed:
            regressions.append(metric)
    over_budget = []
    if args.assert_overhead:
        default_budget, per_metric = parse_overhead_budgets(
            args.assert_overhead)
        for metric, value in sorted(current["results"].items()):
            if (not metric.endswith("_overhead_pct")
                    or not isinstance(value, (int, float))):
                continue
            budget = per_metric.get(metric, default_budget)
            if budget is not None and value > budget:
                over_budget.append(
                    f"{metric} {value:.1f}% (budget {budget:g}%)")
        if over_budget:
            print(f"\noverhead budget exceeded: {', '.join(over_budget)}")
    if regressions:
        print(f"\n{len(regressions)} regression(s) past "
              f"{args.threshold:g}%: {', '.join(regressions)}")
    elif not over_budget:
        print("\nno regressions past threshold")
    if over_budget:
        return 1
    if regressions:
        return 1 if args.strict else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
