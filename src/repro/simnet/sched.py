"""Tiered event scheduler: calendar queue + hierarchical timer wheel.

This is the fast twin of :class:`repro.simnet.events.EventQueue` (the
binary heap, kept verbatim as the reference implementation).  PR 5 left
the heap as the dominant kernel cost: every push and pop pays an
O(log n) sift, and the campaign workload is *cancellation-heavy* --
churn sessions and download retries cancel more timers than they fire
-- so dead entries keep getting sifted over and compacted.  This
scheduler makes insert, pop and cancel O(1) amortized:

* **Near band -- calendar queue.**  The bottom tier is one sorted run
  of ``(time, seq, event)`` entries covering the current window
  ``[origin, origin + NEAR_SPAN)``.  The calendar proper is wheel
  level 0: ``NEAR_SPAN``-wide, grid-aligned buckets that inserts reach
  with one index computation and a ``list.append``.  When the window
  drains, the ladder *re-anchors* at the next occupied bucket -- empty
  stretches of virtual time are skipped in one jump -- and because
  level-0 buckets coincide exactly with the window grid, the next
  bucket is absorbed **wholesale**: one ``list.extend``, one
  tombstone-filter pass (a C-speed comprehension) and one Timsort.  No
  per-event sifting, ever; a sort touches each event once per window.

* **Far band -- hierarchical timer wheel.**  Timers beyond level 0's
  reach land in geometrically coarser levels (each ``WHEEL_SLOTS``
  times wider), dict-keyed by absolute slot number so sparse horizons
  cost nothing.  As the ladder re-anchors, slots overlapping the new
  window **cascade** down: each entry is re-bucketed at most once per
  level.  Timers beyond the top level wait in an overflow bucket with
  a tracked lower bound, re-examined only when the ladder catches up.

* **O(1) cancellation.**  ``cancel`` flips the event's tombstone flag
  and decrements the live count of the *cell* (bucket, slot or window)
  holding it -- the event records its cell in ``Event._home``.  No
  search, no sift, no compaction on the cancel path.  A cell whose
  live count hits zero is discarded *wholesale* when the scheduler
  reaches it: its tombstones are never individually examined, which is
  what makes churn-heavy workloads (cancel >> fire) cheap.

**Determinism.**  Pop order is bit-identical to the heap's: entries
are ``(time, seq, event)`` tuples, the window sorts by that tuple, and
every far entry is strictly later than every window entry (placement
happens against the current horizon, and re-anchoring pulls in
everything below the new horizon).  Late schedules landing inside the
active window are merged into its sorted remainder by bisection,
exactly where the heap would surface them.  ``run_equivalence_check``
and the randomized differential test in ``tests/simnet/test_sched.py``
assert the equivalence event by event.

All widths are powers of two, so the float arithmetic quantizing times
into buckets and slots is exact -- no platform-dependent rounding can
move an event across a bucket boundary.
"""

from __future__ import annotations

import itertools
from bisect import insort
from typing import Any, Callable, Dict, List, Optional, Tuple

from .events import Event

__all__ = ["TieredEventQueue", "NEAR_WIDTH", "NEAR_SPAN", "WHEEL_SLOTS",
           "LEVEL_WIDTHS"]

#: Window-origin quantization grain, seconds.  A power of two:
#: quantization is exact float arithmetic.
NEAR_WIDTH = 0.03125
#: Span of the bottom window and width of a level-0 calendar bucket.
NEAR_SPAN = 8.0
#: Slots each wheel level reaches past the horizon before the next
#: (64x coarser) level takes over.  Deliberately generous: a wide
#: level-0 reach means minutes-scale timers land directly in their
#: final calendar bucket and are absorbed wholesale at re-anchor time,
#: never paying a per-entry cascade.  Slots live in dicts keyed by
#: absolute slot number, so width costs no memory -- only the re-anchor
#: scan sees the extra occupied keys.
WHEEL_SLOTS = 512
#: Slot width per wheel level (seconds): 8 s, 512 s, 32768 s.  Level l
#: accepts deltas up to LEVEL_WIDTHS[l] * WHEEL_SLOTS past the horizon
#: (~68 min / ~3 days / ~194 days); anything later waits in the
#: overflow.
LEVEL_WIDTHS = (NEAR_SPAN, NEAR_SPAN * 64, NEAR_SPAN * 64 * 64)

_INV_NEAR_WIDTH = 1.0 / NEAR_WIDTH
#: Cursor sentinel while the window is unsorted: compares above any
#: real list length, so the pop fast path falls through to activation.
_UNSORTED = 1 << 60

# Unrolled per-level constants for the push hot path: reach past the
# horizon and reciprocal width per level (widths are powers of two, so
# multiplying by the reciprocal is exact and cheaper than dividing).
_REACH0 = LEVEL_WIDTHS[0] * WHEEL_SLOTS
_REACH1 = LEVEL_WIDTHS[1] * WHEEL_SLOTS
_REACH2 = LEVEL_WIDTHS[2] * WHEEL_SLOTS
_INV_W0 = 1.0 / LEVEL_WIDTHS[0]
_INV_W1 = 1.0 / LEVEL_WIDTHS[1]
_INV_W2 = 1.0 / LEVEL_WIDTHS[2]


class _Cell:
    """One calendar bucket, wheel slot or window: entries + live count.

    ``live`` counts non-tombstoned entries; cancel decrements it in
    O(1) via ``Event._home``.  ``live == 0`` with entries present means
    the whole cell is dead weight and gets dropped without ever
    iterating the tombstones.
    """

    __slots__ = ("entries", "live")

    def __init__(self) -> None:
        self.entries: list = []
        self.live = 0


class TieredEventQueue:
    """Deterministic calendar-queue + timer-wheel scheduler.

    Duck-type compatible with :class:`~repro.simnet.events.EventQueue`
    (``push`` / ``cancel`` / ``pop`` / ``peek_time`` / ``pop_ready`` /
    ``__len__`` / ``dead_events`` / ``compactions`` /
    ``cancelled_total``), plus per-tier depth properties
    (:attr:`near_depth` / :attr:`wheel_depth`) for the telemetry
    gauges.  ``compactions`` counts bulk tombstone purges -- whole-cell
    drops and filter passes that removed dead entries -- the tiered
    analogue of the heap twin's rebuild counter.
    """

    #: advertises the window drain protocol: the kernel's fast loop
    #: twins ride ``_entries``/``_pos`` directly between ``_head``
    #: calls instead of paying a ``pop_ready`` call per event (see
    #: ``Simulator._drain_windowed``)
    windowed = True

    def __init__(self) -> None:
        self._counter = itertools.count()
        self._live = 0
        self._dead = 0  # tombstoned entries still held by some cell
        self.compactions = 0
        self.cancelled_total = 0
        # -- bottom tier: the current window --------------------------------
        self._origin = 0.0
        self._horizon = NEAR_SPAN
        #: entries of the current window; append-only until first
        #: consumption, then tombstone-filtered, sorted once and read
        #: out through ``_pos`` (bisection-merged inserts thereafter)
        self._entries: list = []
        self._pos = _UNSORTED
        self._sorted = False
        #: home cell for events pushed straight into the window
        self._window_cell = _Cell()
        #: every cell whose live count contributes to the window --
        #: the window cell plus calendar buckets absorbed wholesale
        self._absorbed: List[_Cell] = [self._window_cell]
        # -- far tiers: wheel levels + overflow -----------------------------
        #: per level: absolute slot number -> _Cell
        self._levels: Tuple[Dict[int, _Cell], ...] = tuple(
            {} for _ in LEVEL_WIDTHS)
        self._overflow = _Cell()
        #: lower bound on every overflow entry's time (tracked on push,
        #: rebuilt when the overflow is drained); lets re-anchoring
        #: skip the overflow entirely while it lies beyond reach
        self._overflow_min = float("inf")

    # -- sizing / gauges ----------------------------------------------------
    def __len__(self) -> int:
        return self._live

    @property
    def dead_events(self) -> int:
        """Tombstoned events still occupying some cell (telemetry gauge)."""
        return self._dead

    @property
    def near_depth(self) -> int:
        """Live events waiting in the current calendar window."""
        return sum(cell.live for cell in self._absorbed)

    @property
    def wheel_depth(self) -> int:
        """Live events waiting in the wheel levels or the overflow."""
        return self._live - self.near_depth

    def iter_entries(self):
        """Yield every queued ``(time, seq, event)`` entry, unordered.

        Introspection for tests and debugging only -- both scheduler
        twins expose it.  Tombstoned entries are included; the window's
        already-consumed prefix is not.
        """
        yield from self._entries[self._pos if self._sorted else 0:]
        for slots in self._levels:
            for cell in slots.values():
                yield from cell.entries
        yield from self._overflow.entries

    # -- scheduling ---------------------------------------------------------
    def push(self, time: float, callback: Callable[..., Any],
             label: str = "", args: tuple = ()) -> Event:
        """Schedule ``callback`` at absolute virtual ``time`` (O(1)).

        The far branch is the level-placement logic of :meth:`_push_far`
        unrolled inline: pushes are the single hottest queue operation
        and a per-call loop over the levels costs more than the
        placement itself.
        """
        if time < 0:
            raise ValueError(f"cannot schedule at negative time {time!r}")
        seq = next(self._counter)
        event = Event(time, seq, callback, label, False, args)
        self._live += 1
        horizon = self._horizon
        if time < horizon:
            cell = self._window_cell
            if self._sorted:
                # active window: merge into the sorted remainder --
                # tuple order lands it exactly where the heap twin
                # would pop it, stragglers included
                insort(self._entries, (time, seq, event), self._pos)
            else:
                self._entries.append((time, seq, event))
        elif time < horizon + _REACH0:
            slots = self._levels[0]
            key = int(time * _INV_W0)
            cell = slots.get(key)
            if cell is None:
                cell = slots[key] = _Cell()
            cell.entries.append((time, seq, event))
        elif time < horizon + _REACH1:
            slots = self._levels[1]
            key = int(time * _INV_W1)
            cell = slots.get(key)
            if cell is None:
                cell = slots[key] = _Cell()
            cell.entries.append((time, seq, event))
        elif time < horizon + _REACH2:
            slots = self._levels[2]
            key = int(time * _INV_W2)
            cell = slots.get(key)
            if cell is None:
                cell = slots[key] = _Cell()
            cell.entries.append((time, seq, event))
        else:
            cell = self._overflow
            cell.entries.append((time, seq, event))
            if time < self._overflow_min:
                self._overflow_min = time
        cell.live += 1
        event._home = cell
        return event

    def _push_far(self, time: float, seq: int, event: Event) -> None:
        """Place an event beyond the window: calendar bucket, coarser
        wheel slot, or overflow.  Cascade-path twin of the unrolled
        placement in :meth:`push` -- same level rule, same results.
        """
        horizon = self._horizon
        for width, slots in zip(LEVEL_WIDTHS, self._levels):
            if time < horizon + width * WHEEL_SLOTS:
                key = int(time / width)
                cell = slots.get(key)
                if cell is None:
                    cell = slots[key] = _Cell()
                cell.entries.append((time, seq, event))
                cell.live += 1
                event._home = cell
                return
        cell = self._overflow
        cell.entries.append((time, seq, event))
        cell.live += 1
        event._home = cell
        if time < self._overflow_min:
            self._overflow_min = time

    # -- cancellation -------------------------------------------------------
    def cancel(self, event: Event) -> None:
        """Tombstone ``event`` in O(1) -- no sift, no search (idempotent).

        Cancelling an event that already fired marks it but leaves the
        counters alone, the same rule as the heap twin.
        """
        if event.cancelled:
            return
        event.cancelled = True
        home = event._home
        if home is None:
            return
        event._home = None
        home.live -= 1
        self.cancelled_total += 1
        self._live -= 1
        self._dead += 1

    def note_cancelled(self) -> None:
        """Count-only hook mirroring the heap twin's API.

        Callers that tombstone ``event.cancelled`` directly (instead of
        :meth:`cancel`) keep the totals right with this; the event's
        cell live count stays stale, so the entry is skipped lazily at
        pop time rather than enabling a whole-cell drop -- same
        observable behaviour, slightly less bulk skipping.
        """
        self._live -= 1
        self._dead += 1
        self.cancelled_total += 1

    # -- consumption --------------------------------------------------------
    def pop_ready(self, end_time: float) -> Optional[Event]:
        """Pop the earliest live event with ``time <= end_time``.

        The kernel's hot-path primitive: the common case is two list
        indexings and an integer bump -- no heap sift, no comparison
        cascade.  Pop order is bit-identical to the heap twin's.
        """
        pos = self._pos
        entries = self._entries
        if pos < len(entries):
            entry = entries[pos]
            event = entry[2]
            if not event.cancelled:
                if entry[0] > end_time:
                    return None
                self._pos = pos + 1
                self._live -= 1
                home = event._home
                home.live -= 1
                event._home = None
                return event
        entry = self._head()
        if entry is None or entry[0] > end_time:
            return None
        self._pos += 1
        self._live -= 1
        event = entry[2]
        home = event._home
        home.live -= 1
        event._home = None
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None when drained."""
        return self.pop_ready(float("inf"))

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without removing it."""
        pos = self._pos
        entries = self._entries
        if pos < len(entries):
            entry = entries[pos]
            if not entry[2].cancelled:
                return entry[0]
        entry = self._head()
        return entry[0] if entry is not None else None

    def _head(self) -> Optional[tuple]:
        """Position the cursor on the head entry and return it.

        Activates the window on first touch (bulk tombstone filter +
        one sort), skips tombstones cancelled since, and re-anchors
        the ladder from the wheel when the window drains.  Returns
        None only when no live event remains.
        """
        while True:
            entries = self._entries
            if self._sorted:
                pos = self._pos
                length = len(entries)
                while pos < length:
                    entry = entries[pos]
                    if entry[2].cancelled:
                        pos += 1
                        if self._dead > 0:
                            self._dead -= 1
                        continue
                    self._pos = pos
                    return entry
                self._pos = pos
            elif entries:
                # activation: one bulk filter pass (never a per-entry
                # sift) and one Timsort over the survivors
                survivors = [e for e in entries if not e[2].cancelled]
                dropped = len(entries) - len(survivors)
                if dropped:
                    self._dead -= dropped
                    self.compactions += 1
                survivors.sort()
                self._entries = survivors
                self._sorted = True
                self._pos = 0
                continue
            if not self._refill():
                return None

    def _refill(self) -> bool:
        """Re-anchor the ladder at the next occupied instant.

        Finds the earliest live far cell (slot starts are lower bounds;
        the overflow keeps a tracked one), jumps the window there, and
        pulls every slot that starts before the new horizon: a level-0
        bucket that coincides with the window is absorbed wholesale
        (one ``extend``, no per-entry work), straddling coarser slots
        are split -- their tail cascades one level down.  Loops because
        a pulled coarse slot may only feed finer levels; each entry
        descends at most once per level, so the loop terminates.
        Returns False when nothing live remains anywhere.
        """
        while True:
            if self._live == 0:
                self._purge_far_dead()
                return False
            # -- find the earliest candidate instant -----------------------
            candidate = self._overflow_min if self._overflow.live else None
            for width, slots in zip(LEVEL_WIDTHS, self._levels):
                dead_keys = []
                best_key = None
                for key, cell in slots.items():
                    if cell.live:
                        if best_key is None or key < best_key:
                            best_key = key
                    else:
                        dead_keys.append(key)
                for key in dead_keys:
                    # whole bucket of tombstones: drop without sifting
                    dropped = slots.pop(key)
                    self._dead -= len(dropped.entries)
                    if dropped.entries:
                        self.compactions += 1
                if best_key is not None:
                    start = best_key * width
                    if candidate is None or start < candidate:
                        candidate = start
            if candidate is None:
                # _live > 0 yet nothing live far: stale counts can only
                # come from tombstoning around cancel(); report drained
                # rather than spin
                return False
            # -- jump the window there -------------------------------------
            origin = int(candidate * _INV_NEAR_WIDTH) * NEAR_WIDTH
            self._origin = origin
            self._horizon = horizon = origin + NEAR_SPAN
            window: list = []
            window_cell = _Cell()
            absorbed = [window_cell]
            self._entries = window
            self._window_cell = window_cell
            self._absorbed = absorbed
            self._sorted = False
            self._pos = _UNSORTED
            # -- pull everything that starts before the new horizon --------
            for width, slots in zip(LEVEL_WIDTHS, self._levels):
                pull = [key for key in slots if key * width < horizon]
                for key in pull:
                    cell = slots.pop(key)
                    entries = cell.entries
                    if not cell.live:
                        self._dead -= len(entries)
                        if entries:
                            self.compactions += 1
                        continue
                    if key * width >= origin and (key + 1) * width <= horizon:
                        # grid-aligned calendar bucket inside the
                        # window: absorb in bulk.  Entry homes stay on
                        # the old cell, which keeps counting its share
                        # of the window (see _absorbed).
                        window.extend(entries)
                        absorbed.append(cell)
                        continue
                    # straddling slot: head joins the window, tail
                    # cascades down the wheel
                    for entry in entries:
                        event = entry[2]
                        if event.cancelled:
                            if self._dead > 0:
                                self._dead -= 1
                            continue
                        if entry[0] < horizon:
                            window.append(entry)
                            window_cell.live += 1
                            event._home = window_cell
                        else:
                            self._push_far(entry[0], entry[1], event)
            if self._overflow.entries and self._overflow_min < horizon:
                entries = self._overflow.entries
                self._overflow = _Cell()
                self._overflow_min = float("inf")
                for entry in entries:
                    event = entry[2]
                    if event.cancelled:
                        if self._dead > 0:
                            self._dead -= 1
                        continue
                    if entry[0] < horizon:
                        window.append(entry)
                        window_cell.live += 1
                        event._home = window_cell
                    else:
                        self._push_far(entry[0], entry[1], event)
            if window_cell.live or len(absorbed) > 1:
                return True
            # pulled slots only cascaded into finer levels; go again
            # with the sharpened candidates

    def _purge_far_dead(self) -> None:
        """Drop every remaining (all-dead) far cell in bulk."""
        for slots in self._levels:
            for cell in slots.values():
                self._dead -= len(cell.entries)
            if slots:
                slots.clear()
        self._dead -= len(self._overflow.entries)
        self._overflow = _Cell()
        self._overflow_min = float("inf")
        if self._dead < 0:
            self._dead = 0
