"""Deterministic random-number streams for the simulator.

Every stochastic subsystem in the reproduction (topology wiring, file
catalogs, malware placement, churn, query workloads...) draws from its own
named stream derived from a single campaign seed.  This keeps experiments
reproducible while allowing one subsystem's draw count to change without
perturbing the others -- the property the paper's month-long measurement
obviously had (the network did not reshuffle because the crawler asked one
more query) and the one regression tests rely on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterator, Optional, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["derive_seed", "SeededStream", "StreamRegistry"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a child seed from ``master_seed`` and a stream ``name``.

    Uses SHA-256 so that nearby master seeds or similar names do not produce
    correlated child seeds (Python's ``random.Random(seed)`` is sensitive to
    low-entropy seeds).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SeededStream:
    """A named, independently seeded wrapper around :class:`random.Random`.

    Only the operations the simulator needs are exposed; this keeps call
    sites honest about what randomness they consume and makes it easy to
    audit determinism.
    """

    def __init__(self, master_seed: int, name: str) -> None:
        self.name = name
        self.seed = derive_seed(master_seed, name)
        self._random = random.Random(self.seed)

    # -- draws ------------------------------------------------------------
    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high)``."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival time with the given ``rate``."""
        return self._random.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal draw."""
        return self._random.gauss(mu, sigma)

    def lognormvariate(self, mu: float, sigma: float) -> float:
        """Log-normal draw (natural parameters)."""
        return self._random.lognormvariate(mu, sigma)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(seq)

    def choices(self, seq: Sequence[T], weights: Optional[Sequence[float]] = None,
                k: int = 1) -> list:
        """``k`` weighted choices with replacement."""
        return self._random.choices(seq, weights=weights, k=k)

    def sample(self, seq: Sequence[T], k: int) -> list:
        """``k`` choices without replacement."""
        return self._random.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(seq)

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability."""
        return self._random.random() < probability

    def bytes(self, n: int) -> bytes:
        """``n`` random bytes (used for synthetic payload content)."""
        return self._random.getrandbits(8 * n).to_bytes(n, "big") if n else b""

    def geometric(self, p: float) -> int:
        """Number of Bernoulli(p) trials up to and including first success."""
        if not 0.0 < p <= 1.0:
            raise ValueError("p must be in (0, 1]")
        count = 1
        while not self.bernoulli(p):
            count += 1
        return count

    def zipf_rank(self, n: int, alpha: float) -> int:
        """Draw a 1-based rank from a truncated Zipf(alpha) law over ``n`` items.

        Inverse-CDF sampling over the normalized harmonic weights; O(n) setup
        is avoided by callers that need bulk draws (see ``files.zipf``), this
        helper is for incidental draws.
        """
        total = sum(1.0 / (rank ** alpha) for rank in range(1, n + 1))
        target = self.random() * total
        cumulative = 0.0
        for rank in range(1, n + 1):
            cumulative += 1.0 / (rank ** alpha)
            if cumulative >= target:
                return rank
        return n

    def iter_uniform(self, low: float, high: float) -> Iterator[float]:
        """Infinite iterator of uniform draws; convenient for tests."""
        while True:
            yield self.uniform(low, high)


class StreamRegistry:
    """Registry handing out :class:`SeededStream` objects by name.

    A campaign creates one registry from its master seed; all subsystems ask
    it for their stream.  Asking twice for the same name returns the *same*
    stream object, so a subsystem's state is shared across its components.
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, SeededStream] = {}

    def stream(self, name: str) -> SeededStream:
        """Return (creating on first use) the stream for ``name``."""
        if name not in self._streams:
            self._streams[name] = SeededStream(self.master_seed, name)
        return self._streams[name]

    def names(self) -> list:
        """Names of all streams created so far (sorted, for reporting)."""
        return sorted(self._streams)
