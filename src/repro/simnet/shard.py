"""Overlay sharding primitives: partition plan, scoped transport, windows.

The sharded kernel (see :mod:`repro.core.sharded`) runs one full
:class:`~repro.simnet.kernel.Simulator` per shard and advances them in
*conservative time windows*: every shard may safely process events up to
``T_min + L``, where ``T_min`` is the earliest pending event across all
shards and ``L`` (the *lookahead*) is the minimum inter-shard link
latency -- no message sent at or after ``T_min`` can arrive before the
window closes, so no shard can receive an event from the past.  This
module holds the pieces of that design that are pure simnet:

* :class:`ShardPlan` -- the deterministic endpoint -> shard assignment;
* :class:`ShardedTransport` -- a :class:`~repro.simnet.transport.
  Transport` that only *sends* for endpoints its shard owns, routes
  cross-shard deliveries through an outbox, and (crucially for
  N-invariance) draws loss/latency from per-*source* streams so a
  message's fate never depends on which shard happens to own its
  sender;
* :class:`WindowDriver` -- the barrier loop itself, executor-agnostic:
  the serial twin and the multi-process executor both drive their
  shards through this exact code.

Windows are *end-exclusive*: a window ``[T_min, W)`` is run via
``run_until(nextafter(W, -inf))`` because the kernel's ``run_until`` is
end-inclusive and an event scheduled at exactly ``W`` belongs to the
next window (a zero-payload message sent at ``T_min`` whose latency
draw lands on ``base_min_s`` arrives at exactly ``T_min + L == W``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .transport import DELIVER_LABEL, Envelope, LatencyModel, Transport

__all__ = ["ShardPlan", "ShardedTransport", "WindowDriver",
           "lookahead_of", "window_run_target"]


def lookahead_of(latency: LatencyModel) -> float:
    """The conservative lookahead a latency model guarantees.

    Every delay is ``uniform(base_min_s, base_max_s) + size/rate`` with
    ``size >= 0``, so ``base_min_s`` lower-bounds the time any message
    spends in flight -- the window size the sync protocol may safely
    advance by past the earliest pending event.
    """
    return latency.base_min_s


def window_run_target(window_end: float) -> float:
    """The end-inclusive ``run_until`` target for an end-exclusive window."""
    return math.nextafter(window_end, float("-inf"))


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic endpoint -> shard ownership map.

    Endpoints not in the map (notably the measurement crawler, attached
    mid-campaign) belong to ``default_shard`` -- shard 0, which also
    hosts the measurement plane.
    """

    nshards: int
    owners: Dict[str, int] = field(default_factory=dict)
    default_shard: int = 0

    def __post_init__(self) -> None:
        if self.nshards < 1:
            raise ValueError(f"nshards must be >= 1, got {self.nshards!r}")

    def owner_of(self, endpoint_id: str) -> int:
        """The shard that owns ``endpoint_id``'s sends and deliveries."""
        return self.owners.get(endpoint_id, self.default_shard)

    @classmethod
    def from_groups(cls, nshards: int,
                    groups: Sequence[Sequence[str]]) -> "ShardPlan":
        """Round-robin whole neighbourhoods onto shards.

        ``groups`` is an ordered partition of the endpoint ids (an
        ultrapeer and its leaves; a search node and its users): group
        ``i`` lands on shard ``i % nshards``, keeping tightly-coupled
        endpoints co-resident while balancing shard sizes.  The order
        of ``groups`` is part of the deterministic contract -- callers
        derive it from build-time state that is identical on every
        shard.
        """
        owners: Dict[str, int] = {}
        for index, group in enumerate(groups):
            shard = index % nshards
            for endpoint_id in group:
                owners[endpoint_id] = shard
        return cls(nshards=nshards, owners=owners)


#: A cross-shard message at rest between barriers.  Plain tuple of
#: plain fields -- these are what the pickled pipe batches carry:
#: (deliver_time, src, send_seq, dst, payload bytes, sent_at).
OutboxEntry = Tuple[float, str, int, str, bytes, float]


class ShardedTransport(Transport):
    """Transport twin that partitions the send side by endpoint owner.

    Every shard builds the *entire* world (the build is replicated, so
    all shards agree on endpoints, topology and seeded state), but only
    the owner of a source endpoint actually performs its sends -- a
    non-owned source returns False before any stream draw, so the
    replicated timer/churn hooks that fire everywhere stay draw-free
    outside their owner.  Deliveries into endpoints owned by other
    shards are parked in :attr:`outbox` and shipped at the next barrier.

    In shard mode (``nshards >= 2``) loss and latency draw from
    per-source ``shard:transport:<src>`` streams: a source's draw order
    is then its own send order, which is invariant under the partition
    -- the whole reason N-shard runs collect identical measurement
    bytes for any N.  With one shard the plan is a no-op and sends
    delegate verbatim to :meth:`Transport.send` (shared ``transport``
    stream, fast/slow path intact): bit-identical to the plain kernel.
    """

    #: protocol layers and fault injectors key their shard-mode
    #: behaviour off this class attribute (duck-typed via getattr so
    #: the plain Transport needs no knowledge of sharding)
    shard_scoped = True

    def __init__(self, sim, latency: Optional[LatencyModel] = None,
                 loss_rate: float = 0.0) -> None:
        super().__init__(sim, latency=latency, loss_rate=loss_rate)
        self._plan: Optional[ShardPlan] = None
        self._shard_id = 0
        #: cross-shard envelopes produced since the last barrier
        self.outbox: List[OutboxEntry] = []
        self._send_seq: Dict[str, int] = {}
        self._src_streams: Dict[str, object] = {}
        #: cross-shard delivery tallies (telemetry, fingerprints)
        self.cross_sent = 0
        self.cross_received = 0

    # -- plan binding -------------------------------------------------------
    def bind(self, plan: ShardPlan, shard_id: int) -> None:
        """Attach the ownership plan; sends before this are replicated.

        World building happens *before* the plan exists (the plan is
        derived from the built topology), so build-time sends -- the
        OpenFT adoption handshakes -- run identically on every shard
        through the plain path and their deliveries fire replicated.
        That is correct by construction: replicated sends mutate
        replicated state identically everywhere.
        """
        if plan.nshards > 1 and shard_id >= plan.nshards:
            raise ValueError(f"shard_id {shard_id} out of range for "
                             f"{plan.nshards} shards")
        self._plan = plan
        self._shard_id = shard_id

    @property
    def shard_id(self) -> int:
        return self._shard_id

    @property
    def shard_active(self) -> bool:
        """True once a real (N >= 2) partition is bound.

        Protocol layers and fault injectors consult this (via getattr,
        so the plain Transport reads as False) to switch the few
        predicates that would otherwise read replica state another
        shard owns.  With one shard nothing is partitioned and every
        code path must stay byte-for-byte the plain one.
        """
        return self._plan is not None and self._plan.nshards > 1

    def _src_stream(self, src: str):
        stream = self._src_streams.get(src)
        if stream is None:
            stream = self.sim.stream(f"shard:transport:{src}")
            self._src_streams[src] = stream
        return stream

    # -- sending ------------------------------------------------------------
    def send(self, src: str, dst: str, payload: bytes) -> bool:
        """Queue ``payload`` from ``src``; owner-filtered in shard mode.

        Mirrors :meth:`Transport.send` check for check (same causes,
        same order) but draws from the per-source stream and parks
        remote deliveries in the outbox.  Returns False for a source
        this shard does not own -- before any draw, so replicated
        callers stay stream-neutral off their owner shard.
        """
        plan = self._plan
        if plan is None or plan.nshards == 1:
            return Transport.send(self, src, dst, payload)
        if plan.owner_of(src) != self._shard_id:
            return False
        sender = self._endpoints.get(src)
        if sender is None or not sender.online:
            self.count_drop("offline-sender")
            return False
        if dst not in self._endpoints:
            self.count_drop("unknown-dst")
            return False
        stream = self._src_stream(src)
        if self.loss_rate and stream.bernoulli(self.loss_rate):
            self.count_drop("random-loss")
            return False

        sender.sent += 1
        now = self.sim.now
        delay = self.latency.delay(stream, len(payload))
        if plan.owner_of(dst) == self._shard_id:
            envelope = Envelope(src=src, dst=dst, payload=payload,
                                sent_at=now)
            self.sim.queue.push(now + delay, self._dispatch,
                                DELIVER_LABEL, (envelope,))
        else:
            seq = self._send_seq.get(src, 0)
            self._send_seq[src] = seq + 1
            self.cross_sent += 1
            self.outbox.append((now + delay, src, seq, dst, payload, now))
        return True

    # -- barrier exchange ---------------------------------------------------
    def take_outbox(self) -> List[OutboxEntry]:
        """Drain the cross-shard entries produced since the last call."""
        out, self.outbox = self.outbox, []
        return out

    def ingest(self, batch: Sequence[OutboxEntry]) -> None:
        """Schedule a barrier batch of inbound cross-shard deliveries.

        The caller hands the batch pre-sorted by ``(deliver_time, src,
        send_seq)`` -- a canonical order independent of which shard
        produced which entry -- and every entry's ``deliver_time`` lies
        at or beyond the window boundary (guaranteed by the lookahead).
        Deliveries go through ``_dispatch`` exactly like local ones, so
        fault-injector and trace taps intercept them identically.
        """
        push = self.sim.queue.push
        dispatch = self._dispatch
        for deliver_time, src, _seq, dst, payload, sent_at in batch:
            self.cross_received += 1
            envelope = Envelope(src=src, dst=dst, payload=payload,
                                sent_at=sent_at)
            push(deliver_time, dispatch, DELIVER_LABEL, (envelope,))


class WindowDriver:
    """The conservative-window barrier loop, over any shard handles.

    A *shard handle* is duck-typed: ``peek() -> float | None`` (next
    pending event time) and ``advance(target, inclusive, batch) ->
    (outbox, peek)``.  Handles that also expose ``start_advance`` /
    ``finish_advance`` get the two calls split around the barrier so
    all shards compute their window concurrently (the pipe proxies of
    the multi-process executor).  The serial executor hands in
    in-process runtimes; the barrier algebra is this one class either
    way, which is what makes the serial twin a meaningful reference.

    With one shard (and ``force_windows`` unset) the loop degenerates
    to a single inclusive advance per segment: no cross-shard messages
    can exist, so conservative windows would be pure overhead -- this
    is what keeps the ``shards=1`` configuration within a few percent
    of the plain kernel.  ``force_windows=True`` runs the full window
    loop anyway, which the equivalence tests use to prove the window
    math itself is bit-identical to an unwindowed run.
    """

    def __init__(self, shards: Sequence[object], plan: ShardPlan,
                 lookahead: float, force_windows: bool = False) -> None:
        if lookahead <= 0:
            raise ValueError(f"lookahead must be positive, got {lookahead!r}")
        self.shards = list(shards)
        self.plan = plan
        self.lookahead = lookahead
        self.degenerate = plan.nshards == 1 and not force_windows
        #: envelopes collected at the last barrier, not yet ingested
        self.pending: List[OutboxEntry] = []
        self.windows = 0
        self.barriers = 0
        #: parent-side hook fired before every barrier round (the
        #: ShardCrash host-fault clause hangs its SIGKILL off this)
        self.on_barrier = None
        self._peeks: List[float] = [math.inf] * len(self.shards)

    def absorb(self, outbox: Sequence[OutboxEntry]) -> None:
        """Bank cross-shard envelopes produced outside a window (phases)."""
        self.pending.extend(outbox)

    def _split_pending(self) -> List[List[OutboxEntry]]:
        """Partition + canonically sort the pending batch per dst shard."""
        owner_of = self.plan.owner_of
        batches: List[List[OutboxEntry]] = [[] for _ in self.shards]
        for entry in self.pending:
            batches[owner_of(entry[3])].append(entry)
        self.pending = []
        for batch in batches:
            batch.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        return batches

    def _advance_all(self, target: float, inclusive: bool) -> None:
        if self.on_barrier is not None:
            self.on_barrier()
        batches = self._split_pending()
        self.barriers += 1
        # ship the window to every pipelined handle first, run the
        # in-process handles while the workers compute, then collect --
        # shard 0 (in the parent) overlaps with the pipe workers
        replies: List[Optional[tuple]] = [None] * len(self.shards)
        deferred: List[int] = []
        for index, (shard, batch) in enumerate(zip(self.shards, batches)):
            start = getattr(shard, "start_advance", None)
            if start is not None:
                start(target, inclusive, batch)
                deferred.append(index)
        for index, (shard, batch) in enumerate(zip(self.shards, batches)):
            if replies[index] is None and index not in deferred:
                replies[index] = shard.advance(target, inclusive, batch)
        for index in deferred:
            replies[index] = self.shards[index].finish_advance()
        for index, (outbox, peek) in enumerate(replies):
            self.pending.extend(outbox)
            self._peeks[index] = math.inf if peek is None else peek

    def refresh(self) -> None:
        """Re-query every shard's next event time (after phase hooks)."""
        self._peeks = [
            math.inf if peek is None else peek
            for peek in (shard.peek() for shard in self.shards)]

    def horizon(self) -> float:
        """Earliest actionable time: shard queues plus in-flight batches."""
        t_min = min(self._peeks) if self._peeks else math.inf
        for entry in self.pending:
            if entry[0] < t_min:
                t_min = entry[0]
        return t_min

    def run_segment(self, final: float) -> None:
        """Advance every shard to ``final`` (inclusive), window by window.

        Loops end-exclusive windows of ``T_min + lookahead`` until the
        next window would reach past ``final``, then runs one inclusive
        closing window: with ``T_min + L > final`` no send inside it
        can deliver at or before ``final`` on another shard, so the
        inclusive run cannot miss a cross-shard message.  Envelopes
        still in flight afterwards stay in :attr:`pending` for the next
        segment (their delivery times lie beyond ``final``).
        """
        if self.degenerate:
            self._advance_all(final, inclusive=True)
            return
        self.refresh()
        while True:
            t_min = self.horizon()
            if t_min == math.inf or t_min + self.lookahead > final:
                self._advance_all(final, inclusive=True)
                return
            self.windows += 1
            self._advance_all(t_min + self.lookahead, inclusive=False)
