"""Session churn: peers alternate between online and offline periods.

P2P measurement results are shaped by availability -- a host serving
malware 24/7 (the paper's single host serving 67% of OpenFT malicious
responses) contributes far more responses than a flaky home peer.  We model
each peer's session/offline durations as exponential draws around per-class
means, which matches the heavy-churn picture of 2006 Gnutella measurement
studies closely enough for response-count shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .clock import hours
from .kernel import Simulator
from .rng import SeededStream

__all__ = ["ChurnProfile", "ALWAYS_ON", "HOME_PEER", "SERVER_LIKE", "ChurnProcess"]


@dataclass(frozen=True)
class ChurnProfile:
    """Mean session and offline durations in virtual seconds.

    ``initial_online_probability`` controls the stationary start state so
    campaigns do not begin with an artificial synchronized mass-join.
    """

    mean_session_s: float
    mean_offline_s: float
    initial_online_probability: float

    def stationary_availability(self) -> float:
        """Long-run fraction of time a peer with this profile is online."""
        total = self.mean_session_s + self.mean_offline_s
        return self.mean_session_s / total if total else 1.0


#: A host that effectively never leaves (dedicated seeder / malware host).
ALWAYS_ON = ChurnProfile(mean_session_s=hours(24 * 365),
                         mean_offline_s=1.0,
                         initial_online_probability=1.0)

#: Typical 2006 home file-sharer: ~2h sessions, ~4h gaps.
HOME_PEER = ChurnProfile(mean_session_s=hours(2.0),
                         mean_offline_s=hours(4.0),
                         initial_online_probability=0.33)

#: Well-connected hosts that stay up most of the day (campus, office).
SERVER_LIKE = ChurnProfile(mean_session_s=hours(18.0),
                           mean_offline_s=hours(3.0),
                           initial_online_probability=0.85)


class ChurnProcess:
    """Drives one peer's online/offline alternation on the kernel.

    ``on_up`` / ``on_down`` callbacks let the protocol layer rejoin the
    overlay and flush state; the transport's ``set_online`` is typically
    wired in as well.
    """

    def __init__(self, sim: Simulator, stream: SeededStream,
                 profile: ChurnProfile,
                 on_up: Callable[[], None],
                 on_down: Callable[[], None],
                 until: Optional[float] = None) -> None:
        self.sim = sim
        self.profile = profile
        self.online = stream.bernoulli(profile.initial_online_probability)
        self._stream = stream
        self._on_up = on_up
        self._on_down = on_down
        self._until = until
        self.transitions = 0

    def start(self) -> None:
        """Announce the initial state and schedule the first transition.

        The first period is drawn from the same distribution as later ones;
        because exponentials are memoryless this is also the correct
        residual-time distribution for a stationary start.
        """
        if self.online:
            self._on_up()
            delay = self._stream.expovariate(1.0 / self.profile.mean_session_s)
        else:
            self._on_down()
            delay = self._stream.expovariate(1.0 / self.profile.mean_offline_s)
        self._schedule(delay)

    def _schedule(self, delay: float) -> None:
        when = self.sim.now + delay
        if self._until is not None and when > self._until:
            # Clamp the final transition to the horizon instead of
            # dropping it: a session that would have ended past ``until``
            # ends exactly at ``until``, so ``online`` is never stale
            # relative to the campaign end (the drain phase sees the
            # state the horizon left behind, not one frozen mid-session).
            if self.sim.now >= self._until:
                return  # the clamped flip already ran at the horizon
            when = self._until
        self.sim.at(when, self._flip, label="churn")

    def _flip(self) -> None:
        self.online = not self.online
        self.transitions += 1
        if self.online:
            self._on_up()
            mean = self.profile.mean_session_s
        else:
            self._on_down()
            mean = self.profile.mean_offline_s
        self._schedule(self._stream.expovariate(1.0 / mean))
