"""Process-wide switch between the data-plane fast path and its twin.

The data plane (transport scheduling, Gnutella/OpenFT envelope handling)
has two implementations:

* the **fast path** (default): encode-once fan-out with ttl/hops header
  patching, lazy body decode, allocation-lean args-carrying delivery
  events;
* the **reference path**: the straightforward encode-per-hop /
  decode-everything implementation the fast path must be bit-identical
  to.

Both paths draw the same random numbers in the same order and schedule
the same events under the same labels, so a campaign run is
byte-identical either way -- same store sha256, same headline metrics,
same kernel :class:`~repro.devtools.sanitizer.EventDigest`.  The
equivalence tests, the selfcheck ``--compare-slow-path`` mode and the
``bench_dataplane`` leg all assert exactly that.

The switch is a plain module flag, *not* an environment variable:
``src/`` never reads ``os.environ`` (detlint DET006).  Test drivers
that advertise a ``REPRO_SLOW_PATH=1`` knob read the environment on
their side and call :func:`set_slow_path` before building the world.
Components sample the flag at construction time, so flip it before
creating a :class:`~repro.simnet.transport.Transport` or any protocol
node -- never mid-run.
"""

from __future__ import annotations

__all__ = ["slow_path_enabled", "set_slow_path", "use_slow_path"]

_SLOW_PATH = False


def slow_path_enabled() -> bool:
    """True when new components should take the reference path."""
    return _SLOW_PATH


def set_slow_path(enabled: bool) -> bool:
    """Flip the process-wide path selection; returns the previous value."""
    global _SLOW_PATH
    previous = _SLOW_PATH
    _SLOW_PATH = bool(enabled)
    return previous


class use_slow_path:
    """Context manager scoping the reference path to one world build."""

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._previous = False

    def __enter__(self) -> "use_slow_path":
        self._previous = set_slow_path(self._enabled)
        return self

    def __exit__(self, *exc_info) -> None:
        set_slow_path(self._previous)
