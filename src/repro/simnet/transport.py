"""Virtual transport: endpoints, links and message delivery.

Protocol layers (Gnutella, OpenFT) exchange *encoded byte payloads* through
this layer.  Each endpoint registers a delivery callback; ``send`` schedules
the callback on the receiving endpoint after a latency draw, optionally
dropping the message to model loss.  Endpoints correspond to hosts; a
dropped endpoint (peer went offline) silently swallows traffic, exactly as
a closed TCP connection would from the sender's point of view once the
kernel notices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

from . import fastpath
from .kernel import Simulator
from .rng import SeededStream

__all__ = ["LatencyModel", "Envelope", "Endpoint", "Transport",
           "DROP_CAUSES", "DELIVER_LABEL"]

#: The one event label every delivery is scheduled under.  Deliberately
#: constant: the old ``f"deliver:{src}->{dst}"`` scheme interned one
#: string (and grew one telemetry ``label_counts`` key) per endpoint
#: pair -- unbounded in population size.  Per-pair traffic breakdowns
#: belong in sampled traces, not per-event labels.
DELIVER_LABEL = "deliver"


@dataclass
class LatencyModel:
    """One-way delay model: base propagation plus per-byte serialization.

    Defaults approximate 2006 broadband: tens of milliseconds propagation,
    ~1 Mbit/s effective upstream (Gnutella's dominant host class was cable
    or DSL).
    """

    base_min_s: float = 0.020
    base_max_s: float = 0.180
    bytes_per_second: float = 125_000.0

    def delay(self, stream: SeededStream, size_bytes: int) -> float:
        """Draw a one-way delay for a message of ``size_bytes``."""
        propagation = stream.uniform(self.base_min_s, self.base_max_s)
        serialization = size_bytes / self.bytes_per_second
        return propagation + serialization


@dataclass(slots=True)
class Envelope:
    """A message in flight between two endpoints.

    Slotted: one Envelope is allocated per transported message, so the
    per-instance ``__dict__`` was pure overhead on the hottest
    allocation site in a campaign.
    """

    src: str
    dst: str
    payload: bytes
    sent_at: float


@dataclass(eq=False)
class Endpoint:
    """A host's attachment to the virtual network.

    ``eq=False``: endpoints are identity-compared registry entries, and
    the generated ``__eq__`` would tuple-compare five fields (including
    a callback) on every accidental comparison.
    """

    endpoint_id: str
    on_message: Callable[[Envelope], None]
    online: bool = True
    received: int = 0
    sent: int = 0


#: Every cause the transport (or a fault injector) can drop a message for.
DROP_CAUSES = ("offline-sender", "unknown-dst", "random-loss",
               "offline-recv", "fault-injected")


class Transport:
    """Message fabric connecting all endpoints of one simulated overlay."""

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None,
                 loss_rate: float = 0.0) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate!r}")
        self.sim = sim
        self.latency = latency or LatencyModel()
        self.loss_rate = loss_rate
        self._endpoints: Dict[str, Endpoint] = {}
        self._stream = sim.stream("transport")
        #: sampled at construction: True routes sends through the
        #: closure-allocating reference scheduler (see simnet.fastpath)
        self._slow = fastpath.slow_path_enabled()
        self.delivered = 0
        #: per-cause drop tally; ``dropped`` sums it (see DROP_CAUSES)
        self.drop_causes: Dict[str, int] = {cause: 0 for cause in DROP_CAUSES}

    @property
    def dropped(self) -> int:
        """Total messages dropped, across all causes."""
        return sum(self.drop_causes.values())

    def count_drop(self, cause: str) -> None:
        """Record one dropped message under ``cause``.

        The transport's own paths use the four built-in causes; fault
        injectors tap in with ``"fault-injected"``.
        """
        self.drop_causes[cause] = self.drop_causes.get(cause, 0) + 1

    # -- endpoint lifecycle -------------------------------------------------
    def attach(self, endpoint_id: str,
               on_message: Callable[[Envelope], None]) -> Endpoint:
        """Register a host; re-attaching an id is a logic error."""
        if endpoint_id in self._endpoints:
            raise ValueError(f"endpoint {endpoint_id!r} already attached")
        endpoint = Endpoint(endpoint_id=endpoint_id, on_message=on_message)
        self._endpoints[endpoint_id] = endpoint
        return endpoint

    def detach(self, endpoint_id: str) -> None:
        """Remove a host entirely (end of simulation lifetime)."""
        self._endpoints.pop(endpoint_id, None)

    def set_online(self, endpoint_id: str, online: bool) -> None:
        """Toggle a host's session state (churn hooks call this)."""
        endpoint = self._endpoints.get(endpoint_id)
        if endpoint is not None:
            endpoint.online = online

    def is_online(self, endpoint_id: str) -> bool:
        """True when the endpoint exists and its session is up."""
        endpoint = self._endpoints.get(endpoint_id)
        return endpoint is not None and endpoint.online

    def endpoint(self, endpoint_id: str) -> Optional[Endpoint]:
        """Look up an endpoint by id."""
        return self._endpoints.get(endpoint_id)

    # -- sending --------------------------------------------------------------
    def send(self, src: str, dst: str, payload: bytes) -> bool:
        """Queue ``payload`` for delivery from ``src`` to ``dst``.

        Returns False when the message was dropped up-front (offline sender,
        unknown destination, or random loss).  A destination that goes
        offline while the message is in flight also loses it, checked at
        delivery time.
        """
        sender = self._endpoints.get(src)
        if sender is None or not sender.online:
            self.count_drop("offline-sender")
            return False
        if dst not in self._endpoints:
            self.count_drop("unknown-dst")
            return False
        if self.loss_rate and self._stream.bernoulli(self.loss_rate):
            self.count_drop("random-loss")
            return False

        sender.sent += 1
        now = self.sim.now
        envelope = Envelope(src=src, dst=dst, payload=payload, sent_at=now)
        delay = self.latency.delay(self._stream, len(payload))
        if self._slow:
            # reference twin: per-message closure, same label, same
            # delivery-time _deliver lookup -- byte-identical schedule
            self.sim.after(delay, lambda: self._deliver(envelope),
                           label=DELIVER_LABEL)
        else:
            # args-carrying event: no closure allocation.  The callback
            # is _dispatch, not the bound _deliver, so fault injectors
            # and traces that tap ``self._deliver`` after this message
            # was scheduled still see it (the tap is resolved at fire
            # time, exactly as the closure resolved it).
            self.sim.queue.push(now + delay, self._dispatch,
                                DELIVER_LABEL, (envelope,))
        return True

    def send_many(self, src: str, dsts: Iterable[str],
                  payload: bytes) -> int:
        """Fan one encoded payload out to many destinations.

        Equivalent to calling :meth:`send` once per destination in
        order -- same drop accounting, same per-destination loss and
        latency draws, one scheduled delivery per receiver (so
        per-envelope taps observe every copy individually) -- but the
        caller encodes the payload exactly once.  Returns the number of
        messages actually queued.
        """
        send = self.send
        sent = 0
        for dst in dsts:
            if send(src, dst, payload):
                sent += 1
        return sent

    def _dispatch(self, envelope: Envelope) -> None:
        # late-binds self._deliver so delivery taps installed while the
        # message was in flight still intercept it
        self._deliver(envelope)

    def _deliver(self, envelope: Envelope) -> None:
        receiver = self._endpoints.get(envelope.dst)
        if receiver is None or not receiver.online:
            self.count_drop("offline-recv")
            return
        receiver.received += 1
        self.delivered += 1
        receiver.on_message(envelope)
