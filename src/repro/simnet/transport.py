"""Virtual transport: endpoints, links and message delivery.

Protocol layers (Gnutella, OpenFT) exchange *encoded byte payloads* through
this layer.  Each endpoint registers a delivery callback; ``send`` schedules
the callback on the receiving endpoint after a latency draw, optionally
dropping the message to model loss.  Endpoints correspond to hosts; a
dropped endpoint (peer went offline) silently swallows traffic, exactly as
a closed TCP connection would from the sender's point of view once the
kernel notices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from .kernel import Simulator
from .rng import SeededStream

__all__ = ["LatencyModel", "Envelope", "Endpoint", "Transport",
           "DROP_CAUSES"]


@dataclass
class LatencyModel:
    """One-way delay model: base propagation plus per-byte serialization.

    Defaults approximate 2006 broadband: tens of milliseconds propagation,
    ~1 Mbit/s effective upstream (Gnutella's dominant host class was cable
    or DSL).
    """

    base_min_s: float = 0.020
    base_max_s: float = 0.180
    bytes_per_second: float = 125_000.0

    def delay(self, stream: SeededStream, size_bytes: int) -> float:
        """Draw a one-way delay for a message of ``size_bytes``."""
        propagation = stream.uniform(self.base_min_s, self.base_max_s)
        serialization = size_bytes / self.bytes_per_second
        return propagation + serialization


@dataclass
class Envelope:
    """A message in flight between two endpoints."""

    src: str
    dst: str
    payload: bytes
    sent_at: float


@dataclass
class Endpoint:
    """A host's attachment to the virtual network."""

    endpoint_id: str
    on_message: Callable[[Envelope], None]
    online: bool = True
    received: int = field(default=0, compare=False)
    sent: int = field(default=0, compare=False)


#: Every cause the transport (or a fault injector) can drop a message for.
DROP_CAUSES = ("offline-sender", "unknown-dst", "random-loss",
               "offline-recv", "fault-injected")


class Transport:
    """Message fabric connecting all endpoints of one simulated overlay."""

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None,
                 loss_rate: float = 0.0) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate!r}")
        self.sim = sim
        self.latency = latency or LatencyModel()
        self.loss_rate = loss_rate
        self._endpoints: Dict[str, Endpoint] = {}
        self._stream = sim.stream("transport")
        self.delivered = 0
        #: per-cause drop tally; ``dropped`` sums it (see DROP_CAUSES)
        self.drop_causes: Dict[str, int] = {cause: 0 for cause in DROP_CAUSES}

    @property
    def dropped(self) -> int:
        """Total messages dropped, across all causes."""
        return sum(self.drop_causes.values())

    def count_drop(self, cause: str) -> None:
        """Record one dropped message under ``cause``.

        The transport's own paths use the four built-in causes; fault
        injectors tap in with ``"fault-injected"``.
        """
        self.drop_causes[cause] = self.drop_causes.get(cause, 0) + 1

    # -- endpoint lifecycle -------------------------------------------------
    def attach(self, endpoint_id: str,
               on_message: Callable[[Envelope], None]) -> Endpoint:
        """Register a host; re-attaching an id is a logic error."""
        if endpoint_id in self._endpoints:
            raise ValueError(f"endpoint {endpoint_id!r} already attached")
        endpoint = Endpoint(endpoint_id=endpoint_id, on_message=on_message)
        self._endpoints[endpoint_id] = endpoint
        return endpoint

    def detach(self, endpoint_id: str) -> None:
        """Remove a host entirely (end of simulation lifetime)."""
        self._endpoints.pop(endpoint_id, None)

    def set_online(self, endpoint_id: str, online: bool) -> None:
        """Toggle a host's session state (churn hooks call this)."""
        endpoint = self._endpoints.get(endpoint_id)
        if endpoint is not None:
            endpoint.online = online

    def is_online(self, endpoint_id: str) -> bool:
        """True when the endpoint exists and its session is up."""
        endpoint = self._endpoints.get(endpoint_id)
        return endpoint is not None and endpoint.online

    def endpoint(self, endpoint_id: str) -> Optional[Endpoint]:
        """Look up an endpoint by id."""
        return self._endpoints.get(endpoint_id)

    # -- sending --------------------------------------------------------------
    def send(self, src: str, dst: str, payload: bytes) -> bool:
        """Queue ``payload`` for delivery from ``src`` to ``dst``.

        Returns False when the message was dropped up-front (offline sender,
        unknown destination, or random loss).  A destination that goes
        offline while the message is in flight also loses it, checked at
        delivery time.
        """
        sender = self._endpoints.get(src)
        if sender is None or not sender.online:
            self.count_drop("offline-sender")
            return False
        if dst not in self._endpoints:
            self.count_drop("unknown-dst")
            return False
        if self.loss_rate and self._stream.bernoulli(self.loss_rate):
            self.count_drop("random-loss")
            return False

        sender.sent += 1
        envelope = Envelope(src=src, dst=dst, payload=payload,
                            sent_at=self.sim.now)
        delay = self.latency.delay(self._stream, len(payload))
        self.sim.after(delay, lambda: self._deliver(envelope),
                       label=f"deliver:{src}->{dst}")
        return True

    def _deliver(self, envelope: Envelope) -> None:
        receiver = self._endpoints.get(envelope.dst)
        if receiver is None or not receiver.online:
            self.count_drop("offline-recv")
            return
        receiver.received += 1
        self.delivered += 1
        receiver.on_message(envelope)
