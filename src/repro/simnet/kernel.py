"""The discrete-event simulation kernel.

A :class:`Simulator` owns the virtual clock, the event queue and the stream
registry.  Protocol nodes schedule callbacks (timers, message deliveries)
and the kernel advances virtual time event by event until a stop condition.

The kernel is deliberately tiny -- the complexity of the reproduction lives
in the protocol and ecosystem layers -- but it enforces the two invariants
everything else depends on: time never runs backwards, and same-seed runs
replay identically.
"""

from __future__ import annotations

from typing import Callable, Optional

from . import fastpath
from .clock import VirtualClock
from .events import Event, EventQueue
from .rng import SeededStream, StreamRegistry
from .sched import TieredEventQueue

__all__ = ["Simulator"]


class Simulator:
    """Event loop + clock + seeded randomness for one campaign."""

    def __init__(self, seed: int = 0, start_time: float = 0.0,
                 telemetry=None) -> None:
        self.clock = VirtualClock(start_time)
        #: scheduler twins, selected once at construction (the PR 5
        #: fastpath pattern): the tiered calendar-queue + timer-wheel
        #: scheduler on the fast path, the reference binary heap on the
        #: slow path.  Pop order is bit-identical either way -- proven
        #: by run_equivalence_check and the differential tests.
        if fastpath.slow_path_enabled():
            self.queue = EventQueue()
        else:
            self.queue = TieredEventQueue()
        self.streams = StreamRegistry(seed)
        self.seed = seed
        self.events_processed = 0
        self._halted = False
        #: optional :class:`repro.telemetry.KernelTelemetry` (duck-typed
        #: so this bottom layer never imports the telemetry package): the
        #: loop bumps ``telemetry.label_counts`` per event, wraps every
        #: ``telemetry.sample_every``-th callback in a wall-time sample,
        #: and calls ``telemetry.flush(self)`` when run_until returns
        self.telemetry = telemetry

    # -- time -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self.clock.now

    # -- randomness ---------------------------------------------------------
    def stream(self, name: str) -> SeededStream:
        """Named deterministic random stream (see :mod:`repro.simnet.rng`)."""
        return self.streams.stream(name)

    # -- scheduling ---------------------------------------------------------
    def at(self, time: float, callback: Callable[[], None],
           label: str = "") -> Event:
        """Schedule ``callback`` at absolute virtual ``time``.

        Scheduling in the past is a programming error and raises.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time!r}, clock already at {self.now!r}")
        return self.queue.push(time, callback, label)

    def after(self, delay: float, callback: Callable[[], None],
              label: str = "") -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self.queue.push(self.now + delay, callback, label)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (safe to call any number of times)."""
        self.queue.cancel(event)

    def every(self, interval: float, callback: Callable[[], None],
              label: str = "", jitter: Optional[SeededStream] = None,
              until: Optional[float] = None) -> None:
        """Run ``callback`` periodically until ``until`` (or forever).

        With a ``jitter`` stream, each period is uniformly perturbed by up to
        +/-10% so that periodic behaviours across thousands of simulated
        peers do not phase-lock -- the same reason real servents jitter their
        keepalives.
        """
        if interval <= 0:
            raise ValueError(f"non-positive interval {interval!r}")

        def tick() -> None:
            if until is not None and self.now > until:
                return
            callback()
            delay = interval
            if jitter is not None:
                delay *= jitter.uniform(0.9, 1.1)
            next_time = self.now + delay
            if until is None or next_time <= until:
                self.queue.push(next_time, tick, label)

        first = interval if jitter is None else interval * jitter.uniform(0.0, 1.0)
        self.queue.push(self.now + first, tick, label)

    # -- running ------------------------------------------------------------
    def halt(self) -> None:
        """Stop the run loop after the current event returns."""
        self._halted = True

    def _drain_windowed(self, end_time: float, limit: float) -> int:
        """Drain loop twins for the tiered scheduler's window protocol.

        ``TieredEventQueue._head`` leaves the cursor on a live head of
        the activated (tombstone-filtered, sorted) window; between
        ``_head`` calls these loops consume the window list by index --
        two list indexings and an integer bump per event instead of a
        ``pop_ready`` method call.  The riding is exact, not a replay
        approximation:

        * the queue cursor/counters (``_pos``/``_live`` and the home
          cell's live count) are synced *before* every callback, so a
          callback observes the same queue state ``pop_ready`` would
          have left (``len(queue)``, gauges, ``peek_time``);
        * a callback pushing into the active window bisect-inserts at
          an index >= the synced cursor (its time is >= now), so the
          re-read ``entries[pos]`` picks it up in exact heap order;
        * cancels only flip tombstone flags, handled by the in-loop
          skip (mirroring the heap's discard-dead-head rule, beyond
          the horizon included);
        * ``halt()`` and ``max_events`` are honoured per event, same
          as the reference twins.
        """
        queue, clock = self.queue, self.clock
        telemetry = self.telemetry
        head = queue._head
        processed = 0
        if telemetry is None:
            while not self._halted and processed < limit:
                entry = head()
                if entry is None or entry[0] > end_time:
                    break
                entries = queue._entries
                pos = queue._pos
                while True:
                    event = entry[2]
                    if event.cancelled:
                        pos += 1
                        if queue._dead > 0:
                            queue._dead -= 1
                    else:
                        time = entry[0]
                        if time > end_time:
                            queue._pos = pos
                            break
                        if time < clock._now:
                            raise ValueError(
                                f"clock cannot run backwards: "
                                f"now={clock._now!r}, target={time!r}")
                        pos += 1
                        queue._pos = pos
                        queue._live -= 1
                        home = event._home
                        home.live -= 1
                        event._home = None
                        clock._now = time
                        args = event.args
                        if args:
                            event.callback(*args)
                        else:
                            event.callback()
                        processed += 1
                        if self._halted or processed >= limit:
                            break
                    if pos < len(entries):
                        entry = entries[pos]
                    else:
                        queue._pos = pos
                        break
        else:
            # instrumented twins of the loop above; see the reference
            # loops in run_until for what each knob does
            from time import perf_counter

            counts = telemetry.label_counts
            counts_get = counts.get
            sample_every = telemetry.sample_every
            since_sample = telemetry.since_sample
            on_event = getattr(telemetry, "on_event", None)
            while not self._halted and processed < limit:
                entry = head()
                if entry is None or entry[0] > end_time:
                    break
                entries = queue._entries
                pos = queue._pos
                while True:
                    event = entry[2]
                    if event.cancelled:
                        pos += 1
                        if queue._dead > 0:
                            queue._dead -= 1
                    else:
                        time = entry[0]
                        if time > end_time:
                            queue._pos = pos
                            break
                        if time < clock._now:
                            raise ValueError(
                                f"clock cannot run backwards: "
                                f"now={clock._now!r}, target={time!r}")
                        pos += 1
                        queue._pos = pos
                        queue._live -= 1
                        home = event._home
                        home.live -= 1
                        event._home = None
                        clock._now = time
                        label = event.label
                        counts[label] = counts_get(label, 0) + 1
                        if on_event is not None:
                            on_event(time, label)
                        args = event.args
                        since_sample += 1
                        if since_sample >= sample_every:
                            since_sample = 0
                            started = perf_counter()
                            if args:
                                event.callback(*args)
                            else:
                                event.callback()
                            telemetry.observe_callback(
                                label, perf_counter() - started)
                        elif args:
                            event.callback(*args)
                        else:
                            event.callback()
                        processed += 1
                        if self._halted or processed >= limit:
                            break
                    if pos < len(entries):
                        entry = entries[pos]
                    else:
                        queue._pos = pos
                        break
            telemetry.since_sample = since_sample
        return processed

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Process events up to and including virtual ``end_time``.

        Returns the number of events processed by this call.  Events
        scheduled beyond ``end_time`` remain queued, so the simulation can be
        resumed (the campaign driver uses this to take daily snapshots).
        """
        processed = 0
        self._halted = False
        queue, clock = self.queue, self.clock
        telemetry = self.telemetry
        # hot-loop style shared by all three twins below: pop_ready
        # fuses the peek/pop pair (one walk over the dead prefix, two
        # fewer calls per event), the clock is advanced by direct
        # assignment behind an explicit monotonicity guard (the same
        # invariant VirtualClock.advance_to enforces, without a method
        # call per event), and args-carrying events dispatch without a
        # closure: ``callback(*args)``.
        pop_ready = queue.pop_ready
        limit = float("inf") if max_events is None else max_events
        if getattr(queue, "windowed", False):
            # tiered scheduler: ride the sorted window by index instead
            # of paying a pop_ready call per event (the loop twins below
            # stay verbatim as the heap reference path)
            processed = self._drain_windowed(end_time, limit)
        elif telemetry is None:
            while not self._halted and processed < limit:
                event = pop_ready(end_time)
                if event is None:
                    break
                time = event.time
                if time < clock._now:
                    raise ValueError(
                        f"clock cannot run backwards: now={clock._now!r}, "
                        f"target={time!r}")
                clock._now = time
                args = event.args
                if args:
                    event.callback(*args)
                else:
                    event.callback()
                processed += 1
        else:
            # instrumented twin of the loop above: one dict get/set per
            # event, plus a perf_counter pair around every Nth callback.
            # ``on_event`` is the optional per-event hook of the telemetry
            # duck type (the determinism selfcheck hangs its event-stream
            # digest here); absent on the standard KernelTelemetry, in
            # which case the hook-free twin below runs instead — the
            # common instrumented path pays nothing for the slot.
            from time import perf_counter

            counts = telemetry.label_counts
            counts_get = counts.get
            sample_every = telemetry.sample_every
            since_sample = telemetry.since_sample
            on_event = getattr(telemetry, "on_event", None)
            if on_event is None:
                while not self._halted and processed < limit:
                    event = pop_ready(end_time)
                    if event is None:
                        break
                    time = event.time
                    if time < clock._now:
                        raise ValueError(
                            f"clock cannot run backwards: "
                            f"now={clock._now!r}, target={time!r}")
                    clock._now = time
                    label = event.label
                    counts[label] = counts_get(label, 0) + 1
                    args = event.args
                    since_sample += 1
                    if since_sample >= sample_every:
                        since_sample = 0
                        started = perf_counter()
                        if args:
                            event.callback(*args)
                        else:
                            event.callback()
                        telemetry.observe_callback(
                            label, perf_counter() - started)
                    elif args:
                        event.callback(*args)
                    else:
                        event.callback()
                    processed += 1
            else:
                while not self._halted and processed < limit:
                    event = pop_ready(end_time)
                    if event is None:
                        break
                    time = event.time
                    if time < clock._now:
                        raise ValueError(
                            f"clock cannot run backwards: "
                            f"now={clock._now!r}, target={time!r}")
                    clock._now = time
                    label = event.label
                    counts[label] = counts_get(label, 0) + 1
                    on_event(time, label)
                    args = event.args
                    since_sample += 1
                    if since_sample >= sample_every:
                        since_sample = 0
                        started = perf_counter()
                        if args:
                            event.callback(*args)
                        else:
                            event.callback()
                        telemetry.observe_callback(
                            label, perf_counter() - started)
                    elif args:
                        event.callback(*args)
                    else:
                        event.callback()
                    processed += 1
            telemetry.since_sample = since_sample
        remaining = queue.peek_time()
        if not self._halted and (remaining is None or remaining > end_time):
            # drain reached the horizon; move the clock to it so callers can
            # rely on now == end_time after the call
            if end_time > self.clock.now:
                self.clock.advance_to(end_time)
        self.events_processed += processed
        if telemetry is not None:
            # after the horizon advance, so gauges reflect the final state
            telemetry.flush(self)
        return processed

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Process every queued event (bounded by ``max_events``)."""
        return self.run_until(float("inf"), max_events=max_events)
