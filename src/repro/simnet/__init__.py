"""Discrete-event network simulation substrate.

This package replaces the live Internet the paper measured: a virtual clock
and event kernel (:mod:`kernel`), deterministic randomness (:mod:`rng`),
IPv4 addressing with NAT/private-range semantics (:mod:`addresses`), a
latency/loss message fabric (:mod:`transport`) and peer session churn
(:mod:`churn`).
"""

from .addresses import (AddressAllocator, HostAddress, classify_address,
                        is_private)
from .churn import ALWAYS_ON, HOME_PEER, SERVER_LIKE, ChurnProcess, ChurnProfile
from .clock import SECONDS_PER_DAY, VirtualClock, days, hours, minutes
from .events import Event, EventQueue
from .kernel import Simulator
from .rng import SeededStream, StreamRegistry, derive_seed
from .transport import Endpoint, Envelope, LatencyModel, Transport

__all__ = [
    "AddressAllocator", "HostAddress", "classify_address", "is_private",
    "ALWAYS_ON", "HOME_PEER", "SERVER_LIKE", "ChurnProcess", "ChurnProfile",
    "SECONDS_PER_DAY", "VirtualClock", "days", "hours", "minutes",
    "Event", "EventQueue", "Simulator",
    "SeededStream", "StreamRegistry", "derive_seed",
    "Endpoint", "Envelope", "LatencyModel", "Transport",
]
