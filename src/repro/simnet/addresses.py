"""IPv4 address modelling: allocation pools, RFC 1918 classification, NAT.

The paper's most surprising source finding -- 28% of malicious Limewire
responses came from *private* address ranges -- is an artifact of how
Gnutella query hits carry a self-reported IPv4 address: a servent behind a
NAT that never learned its external address advertises its RFC 1918 one.
We model that directly: every simulated host has a *true* attachment
address, and NATed hosts self-report a private address in protocol
payloads.  The analysis layer then classifies reported addresses exactly as
the paper did.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Iterator, Optional, Set, Tuple

from .rng import SeededStream

__all__ = [
    "PRIVATE_NETWORKS", "is_private", "is_loopback", "is_reserved",
    "classify_address", "HostAddress", "AddressAllocator",
]

#: RFC 1918 private ranges plus link-local, matching the classification a
#: 2006 measurement study would apply to self-reported Gnutella addresses.
PRIVATE_NETWORKS = (
    ipaddress.ip_network("10.0.0.0/8"),
    ipaddress.ip_network("172.16.0.0/12"),
    ipaddress.ip_network("192.168.0.0/16"),
    ipaddress.ip_network("169.254.0.0/16"),
)

_LOOPBACK = ipaddress.ip_network("127.0.0.0/8")
_RESERVED = (
    ipaddress.ip_network("0.0.0.0/8"),
    ipaddress.ip_network("224.0.0.0/4"),
    ipaddress.ip_network("240.0.0.0/4"),
)


def is_private(address: str) -> bool:
    """True when ``address`` falls in RFC 1918 / link-local space."""
    ip = ipaddress.ip_address(address)
    return any(ip in network for network in PRIVATE_NETWORKS)


def is_loopback(address: str) -> bool:
    """True for 127.0.0.0/8."""
    return ipaddress.ip_address(address) in _LOOPBACK


def is_reserved(address: str) -> bool:
    """True for unroutable reserved space (0/8, multicast, class E)."""
    ip = ipaddress.ip_address(address)
    return any(ip in network for network in _RESERVED)


def classify_address(address: str) -> str:
    """Bucket an address the way the paper's source analysis does.

    Returns one of ``"private"``, ``"loopback"``, ``"reserved"``,
    ``"public"``.
    """
    if is_loopback(address):
        return "loopback"
    if is_private(address):
        return "private"
    if is_reserved(address):
        return "reserved"
    return "public"


@dataclass(frozen=True)
class HostAddress:
    """The two faces of a simulated host's addressing.

    ``attachment``: where the host actually sits (always unique, used for
    ground-truth host attribution).
    ``advertised``: what the host self-reports inside protocol payloads --
    equals ``attachment`` for well-connected hosts, a private address for
    NATed hosts that never learned their external IP.
    """

    attachment: str
    advertised: str

    @property
    def behind_nat(self) -> bool:
        """True when the host advertises a private address."""
        return self.advertised != self.attachment

    def advertised_class(self) -> str:
        """Paper-style classification of the advertised address."""
        return classify_address(self.advertised)


class AddressAllocator:
    """Hands out unique attachment addresses and NATed advertised ones.

    Public attachment addresses are drawn across many /8s to mimic the AS
    spread of a real swarm; private advertised addresses are drawn from the
    three RFC 1918 pools with the empirical skew towards 192.168/16 home
    routers.
    """

    _PUBLIC_FIRST_OCTETS = tuple(
        octet for octet in range(1, 224)
        if octet not in (10, 127, 169, 172, 192)
    )
    _PRIVATE_POOLS: Tuple[Tuple[str, float], ...] = (
        ("192.168.0.0/16", 0.62),
        ("10.0.0.0/8", 0.27),
        ("172.16.0.0/12", 0.11),
    )

    def __init__(self, stream: SeededStream) -> None:
        self._stream = stream
        self._used: Set[str] = set()

    def _unique(self, generator: Iterator[str]) -> str:
        for candidate in generator:
            if candidate not in self._used:
                self._used.add(candidate)
                return candidate
        raise RuntimeError("address pool exhausted")

    def _public_candidates(self) -> Iterator[str]:
        while True:
            first = self._stream.choice(self._PUBLIC_FIRST_OCTETS)
            rest = [self._stream.randint(0, 255) for _ in range(2)]
            last = self._stream.randint(1, 254)
            yield f"{first}.{rest[0]}.{rest[1]}.{last}"

    def _private_candidates(self) -> Iterator[str]:
        pools = [pool for pool, _ in self._PRIVATE_POOLS]
        weights = [weight for _, weight in self._PRIVATE_POOLS]
        while True:
            pool = ipaddress.ip_network(
                self._stream.choices(pools, weights=weights, k=1)[0])
            offset = self._stream.randint(1, pool.num_addresses - 2)
            yield str(pool[offset])

    def allocate(self, behind_nat: bool = False) -> HostAddress:
        """Allocate addressing for one host.

        NATed hosts get a unique public attachment address (their NAT's
        outside face) and a private advertised address.
        """
        attachment = self._unique(self._public_candidates())
        if behind_nat:
            advertised = self._unique(self._private_candidates())
        else:
            advertised = attachment
        return HostAddress(attachment=attachment, advertised=advertised)

    def allocate_public(self) -> HostAddress:
        """Convenience: allocate a host that is not behind NAT."""
        return self.allocate(behind_nat=False)

    @property
    def allocated_count(self) -> int:
        """Number of distinct addresses handed out so far."""
        return len(self._used)
