"""Virtual time for the discrete-event simulator.

The paper's measurement ran for over a month of wall-clock time; we compress
that into seconds by advancing a virtual clock from event to event.  Time is
kept in float seconds since campaign start, with helpers to convert to the
day granularity the analysis time-series use.
"""

from __future__ import annotations

__all__ = ["SECONDS_PER_MINUTE", "SECONDS_PER_HOUR", "SECONDS_PER_DAY",
           "minutes", "hours", "days", "VirtualClock"]

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0


def minutes(n: float) -> float:
    """``n`` minutes expressed in virtual seconds."""
    return n * SECONDS_PER_MINUTE


def hours(n: float) -> float:
    """``n`` hours expressed in virtual seconds."""
    return n * SECONDS_PER_HOUR


def days(n: float) -> float:
    """``n`` days expressed in virtual seconds."""
    return n * SECONDS_PER_DAY


class VirtualClock:
    """Monotonically advancing virtual clock.

    Only the event kernel may advance it; everything else reads ``now``.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds since campaign start."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Advance to absolute time ``t``; going backwards is a logic error."""
        if t < self._now:
            raise ValueError(
                f"clock cannot run backwards: now={self._now!r}, target={t!r}")
        self._now = t

    def day_index(self) -> int:
        """Zero-based virtual day of the current time (for daily series)."""
        return int(self._now // SECONDS_PER_DAY)

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.3f})"
