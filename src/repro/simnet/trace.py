"""Transport tracing: a tcpdump for the simulated overlay.

A :class:`TransportTrace` taps a transport's delivery path and records
(time, src, dst, size, classification) per message into a bounded ring.
The classifier is pluggable -- the protocol layers supply one that peeks
at the frame header -- so traces can answer "what is this overlay's
traffic made of", which is what the overhead analysis reports.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from .transport import Envelope, Transport

__all__ = ["TracedMessage", "TransportTrace"]

Classifier = Callable[[bytes], str]


@dataclass(frozen=True)
class TracedMessage:
    """One captured delivery."""

    time: float
    src: str
    dst: str
    size: int
    kind: str


class TransportTrace:
    """Bounded capture of a transport's deliveries."""

    def __init__(self, transport: Transport, classify: Classifier,
                 capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.transport = transport
        self.classify = classify
        self.capacity = capacity
        self._ring: Deque[TracedMessage] = deque(maxlen=capacity)
        self.captured = 0
        self._installed = False
        self._capturing = False
        self._original_deliver: Optional[Callable] = None

    # -- lifecycle -----------------------------------------------------------
    def install(self) -> None:
        """Start capturing (wraps the transport's delivery path).

        Multiple traces stack: each tap forwards to the ``_deliver`` it
        wrapped, so several traces capture the same transport at once.
        """
        if self._installed:
            return
        self._original_deliver = self.transport._deliver

        def tapped(envelope: Envelope) -> None:
            if self._capturing:
                try:
                    kind = self.classify(envelope.payload)
                except Exception:  # classification must never break delivery
                    kind = "unparseable"
                self._ring.append(TracedMessage(
                    time=self.transport.sim.now, src=envelope.src,
                    dst=envelope.dst, size=len(envelope.payload), kind=kind))
                self.captured += 1
            assert self._original_deliver is not None
            self._original_deliver(envelope)

        tapped._trace_owner = self  # type: ignore[attr-defined]
        self.transport._deliver = tapped  # type: ignore[method-assign]
        self._installed = True
        self._capturing = True

    def uninstall(self) -> None:
        """Stop capturing and restore the transport.

        Safe in any order when several traces are stacked: a trace that
        is not on top of the tap chain merely stops recording (its tap
        keeps forwarding), and the chain unwinds past every such
        deactivated tap as soon as the traces above it uninstall --
        out-of-order uninstalls can never restore a stale ``_deliver``.
        """
        if not self._installed:
            return
        self._installed = False
        self._capturing = False
        while True:
            owner = getattr(self.transport._deliver, "_trace_owner", None)
            if owner is None or owner._installed:
                break
            # the top tap is deactivated: pop it off the chain
            self.transport._deliver = (  # type: ignore[method-assign]
                owner._original_deliver)

    def __enter__(self) -> "TransportTrace":
        self.install()
        return self

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # -- queries ---------------------------------------------------------------
    def messages(self) -> List[TracedMessage]:
        """Captured messages, oldest first (bounded by capacity)."""
        return list(self._ring)

    def counts_by_kind(self) -> Dict[str, int]:
        """Message counts per classification."""
        return dict(Counter(message.kind for message in self._ring))

    def bytes_by_kind(self) -> Dict[str, int]:
        """Payload bytes per classification."""
        totals: Counter = Counter()
        for message in self._ring:
            totals[message.kind] += message.size
        return dict(totals)

    def total_bytes(self) -> int:
        """All captured payload bytes."""
        return sum(message.size for message in self._ring)
