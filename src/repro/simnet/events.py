"""Event queue primitives for the discrete-event kernel.

Events are (time, sequence, callback) triples kept in a binary heap.  The
sequence number breaks ties deterministically: two events scheduled for the
same instant fire in scheduling order, which is what keeps campaign runs
bit-for-bit reproducible across Python versions.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    ``cancelled`` events stay in the heap (removal from a heap middle is
    O(n)) and are skipped on pop -- the standard lazy-deletion idiom.
    """

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it."""
        self.cancelled = True


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: float, callback: Callable[[], Any],
             label: str = "") -> Event:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if time < 0:
            raise ValueError(f"cannot schedule at negative time {time!r}")
        event = Event(time=time, seq=next(self._counter),
                      callback=callback, label=label)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None when drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def note_cancelled(self) -> None:
        """Bookkeeping hook: callers invoke this after cancelling an event."""
        self._live -= 1
