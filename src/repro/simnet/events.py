"""Event queue primitives for the discrete-event kernel.

Events are (time, sequence, callback) triples kept in a binary heap.  The
sequence number breaks ties deterministically: two events scheduled for the
same instant fire in scheduling order, which is what keeps campaign runs
bit-for-bit reproducible across Python versions.

Cancelled events stay in the heap (removal from a heap middle is O(n))
and are discarded lazily -- the standard lazy-deletion idiom.  Long
campaigns with heavy churn cancel far more timers than they fire, so the
queue compacts itself (rebuilds the heap without dead entries) once the
cancelled fraction passes one half; pops then never wade through piles
of dead events.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

__all__ = ["Event", "EventQueue"]

#: Heaps smaller than this are never compacted -- rebuilding a tiny heap
#: costs more than popping through its dead entries.
_COMPACT_MIN_SIZE = 64


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    ``cancelled`` events stay in the heap (removal from a heap middle is
    O(n)) and are skipped on pop -- the standard lazy-deletion idiom.

    ``args`` are splatted into the callback when the kernel fires it:
    ``callback(*args)``.  High-volume schedulers (the transport's
    delivery path) pass a shared method plus an args tuple instead of
    allocating a fresh closure per message.
    """

    time: float
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    args: Tuple[Any, ...] = field(default=(), compare=False)
    #: owning bucket/slot cell in the tiered scheduler (see
    #: :mod:`repro.simnet.sched`); None while heap-queued or after the
    #: event fired.  The heap twin never reads or writes it.
    _home: Any = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it."""
        self.cancelled = True


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects.

    Heap entries are ``(time, seq, event)`` tuples rather than the
    events themselves: tuple ordering is resolved entirely in C, so a
    sift never calls back into a Python ``__lt__`` (the generated
    dataclass comparison allocated two tuples per comparison, ~log n
    times per pop -- the single hottest cost in the kernel loop).  The
    unique ``seq`` guarantees the ``event`` slot is never compared.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._live = 0
        self._dead = 0  # cancelled events still sitting in the heap
        self.compactions = 0
        #: events ever cancelled through this queue (monotonic; the
        #: tiered scheduler twin keeps the same counter, so telemetry
        #: accounting is identical whichever scheduler a run used)
        self.cancelled_total = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: float, callback: Callable[..., Any],
             label: str = "", args: tuple = ()) -> Event:
        """Schedule ``callback`` at absolute virtual ``time``.

        ``args`` are splatted into the callback at fire time; see
        :class:`Event`.
        """
        if time < 0:
            raise ValueError(f"cannot schedule at negative time {time!r}")
        seq = next(self._counter)
        event = Event(time=time, seq=seq,
                      callback=callback, label=label, args=args)
        event._home = self
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel ``event`` and keep the live count right (idempotent).

        Cancelling an event that already fired (or was never queued
        here) marks it but leaves the counters alone -- the scheduler
        twins share this rule, so ``cancelled_total`` / ``dead_events``
        agree whichever scheduler a run used.
        """
        if not event.cancelled:
            event.cancel()
            if event._home is self:
                event._home = None
                self.note_cancelled()

    def _discard_cancelled_head(self) -> None:
        """Drop cancelled events off the top of the heap.

        Shared by :meth:`pop` and :meth:`peek_time` so both agree on
        which event is the head: peek never reports the time of a
        cancelled event, and pop never returns one.
        """
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            if self._dead > 0:
                self._dead -= 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None when drained."""
        self._discard_cancelled_head()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)[2]
        self._live -= 1
        event._home = None
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without removing it."""
        self._discard_cancelled_head()
        return self._heap[0][0] if self._heap else None

    def pop_ready(self, end_time: float,
                  _heappop=heapq.heappop) -> Optional[Event]:
        """Pop the earliest live event with ``time <= end_time``.

        Returns None when the queue is drained or the head lies beyond
        the horizon.  This is the kernel's hot-path primitive: one pass
        over the (possibly cancelled) head instead of the
        peek_time()/pop() pair, which walked the dead prefix twice and
        paid two extra calls per event.  Pop order is identical to
        ``peek_time() <= end_time and pop()``, so run digests are
        unaffected.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                _heappop(heap)
                if self._dead > 0:
                    self._dead -= 1
                continue
            if entry[0] > end_time:
                return None
            _heappop(heap)
            self._live -= 1
            event._home = None
            return event
        return None

    @property
    def dead_events(self) -> int:
        """Cancelled events still occupying the heap (telemetry gauge)."""
        return self._dead

    @property
    def near_depth(self) -> int:
        """Live events in the (single) near tier.

        The heap has one tier, so every live event is "near"; the
        tiered twin splits the same total across its calendar window
        and wheel.  Both twins therefore satisfy the telemetry
        invariant ``near_depth + wheel_depth == len(queue)``.
        """
        return self._live

    @property
    def wheel_depth(self) -> int:
        """Live events in far tiers: always 0, the heap has no wheel."""
        return 0

    def iter_entries(self):
        """Yield every queued ``(time, seq, event)`` entry, unordered.

        Introspection for tests and debugging only -- both scheduler
        twins expose it, so callers need not know which one a
        ``Simulator`` picked.  Tombstoned entries are included.
        """
        yield from self._heap

    def note_cancelled(self) -> None:
        """Bookkeeping hook: callers invoke this after cancelling an event."""
        self._live -= 1
        self._dead += 1
        self.cancelled_total += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the heap when over half of it is dead weight.

        heapify over the surviving entries preserves the (time, seq)
        order, so pop order -- and therefore campaign determinism -- is
        unaffected.
        """
        heap = self._heap
        if len(heap) >= _COMPACT_MIN_SIZE and 2 * self._dead > len(heap):
            self._heap = [entry for entry in heap
                          if not entry[2].cancelled]
            heapq.heapify(self._heap)
            self._dead = 0
            self.compactions += 1
