"""repro: a reproduction of "A Study of Malware in Peer-to-Peer Networks"
(Kalafut, Acharya, Gupta -- ACM IMC 2006).

The live Gnutella and OpenFT networks the paper instrumented are gone, so
this package rebuilds them: a discrete-event network substrate
(:mod:`repro.simnet`), protocol-faithful Gnutella 0.6 and OpenFT overlays
(:mod:`repro.gnutella`, :mod:`repro.openft`), a synthetic shared-content
and malware ecosystem (:mod:`repro.files`, :mod:`repro.malware`,
:mod:`repro.peers`), an AV-style scanner (:mod:`repro.scanner`), and --
on top -- the paper's contribution (:mod:`repro.core`): instrumented
measurement campaigns, the prevalence/concentration/source analyses, and
the size-based filtering proposal.

Quickstart::

    from repro.core import CampaignConfig, run_limewire_campaign
    from repro.core.analysis import compute_prevalence

    result = run_limewire_campaign(CampaignConfig(seed=1, duration_days=1))
    print(compute_prevalence(result.store).fraction)   # ~0.68
"""

from .core import (CampaignConfig, CampaignResult, ExistingLimewireFilter,
                   MeasurementStore, ResponseRecord, SizeBasedFilter,
                   compute_prevalence, evaluate_filter,
                   run_limewire_campaign, run_openft_campaign,
                   size_dictionary, top_malware, top_n_share)

__version__ = "1.0.0"

__all__ = [
    "CampaignConfig", "CampaignResult", "ExistingLimewireFilter",
    "MeasurementStore", "ResponseRecord", "SizeBasedFilter",
    "compute_prevalence", "evaluate_filter",
    "run_limewire_campaign", "run_openft_campaign",
    "size_dictionary", "top_malware", "top_n_share",
    "__version__",
]
