"""OpenFT protocol implementation over the simulated network.

Binary packet codec (:mod:`packets`), node classes and behaviour
(:mod:`nodes`) and the overlay facade (:mod:`network`).  Substitutes for
the live OpenFT network the paper measured with an instrumented giFT node.
"""

from .constants import (CLASS_INDEX, CLASS_SEARCH, CLASS_USER,
                        DEFAULT_HTTP_PORT, DEFAULT_OPENFT_PORT,
                        MAX_SEARCH_RESULTS, OPENFT_VERSION, SEARCH_TTL)
from .network import OpenFTNetwork
from .nodes import NodeStats, OpenFTNode, ShareRecord
from .packets import (AddShare, BrowseRequest, BrowseResponse, ChildRequest,
                      ChildResponse, NodeInfoRequest, NodeInfoResponse,
                      PacketError, PushRequest, RemShare, SearchRequest,
                      SearchResponse, ShareSyncEnd, StatsRequest,
                      StatsResponse, VersionRequest, VersionResponse,
                      decode_packet, encode_packet)

__all__ = [
    "CLASS_INDEX", "CLASS_SEARCH", "CLASS_USER", "DEFAULT_HTTP_PORT",
    "DEFAULT_OPENFT_PORT", "MAX_SEARCH_RESULTS", "OPENFT_VERSION",
    "SEARCH_TTL",
    "OpenFTNetwork",
    "NodeStats", "OpenFTNode", "ShareRecord",
    "AddShare", "BrowseRequest", "BrowseResponse", "ChildRequest",
    "ChildResponse", "NodeInfoRequest", "NodeInfoResponse", "PacketError",
    "PushRequest", "RemShare", "SearchRequest", "SearchResponse",
    "ShareSyncEnd", "StatsRequest", "StatsResponse", "VersionRequest",
    "VersionResponse", "decode_packet", "encode_packet",
]
