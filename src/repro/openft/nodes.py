"""OpenFT node behaviour: USER children, SEARCH parents, INDEX statistics.

A USER node synchronizes its share list to its SEARCH parents each time
its session comes up; SEARCH nodes hold the resulting per-child index and
answer keyword searches from it, fanning searches one hop across the
search-node mesh.  Results carry the *sharing child's* self-reported
address and ports, which is what the paper's source analysis sees.

Stale-index realism: when a child's session drops, its parent keeps the
entries (the real giFT daemon only noticed on TCP failure), so searches
can return currently-offline hosts whose downloads then fail -- these are
the non-"downloadable" responses of the paper's denominator.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..files.library import SharedLibrary
from ..files.names import tokenize
from ..malware.infection import HostInfection
from ..simnet import fastpath
from ..simnet.addresses import HostAddress
from ..simnet.kernel import Simulator
from ..simnet.rng import SeededStream
from ..simnet.transport import Envelope, Transport
from .constants import (CLASS_SEARCH, CLASS_USER, DEFAULT_HTTP_PORT,
                        DEFAULT_OPENFT_PORT, FT_BROWSE_RESPONSE,
                        FT_SEARCH_REQUEST, FT_SEARCH_RESPONSE,
                        MAX_SEARCH_RESULTS, OPENFT_VERSION, SEARCH_TTL)
from .packets import (PACKET_HEADER_LENGTH, SEARCH_ID_OFFSET, AddShare,
                      BrowseRequest, BrowseResponse, ChildRequest,
                      ChildResponse, NodeInfoRequest, NodeInfoResponse,
                      NodeListEntry, NodeListRequest, NodeListResponse,
                      PacketError, SearchRequest, SearchResponse,
                      ShareSyncEnd, StatsRequest, StatsResponse,
                      VersionRequest, VersionResponse, decode_packet,
                      encode_packet, parse_packet_header, patch_search_ttl)

__all__ = ["ShareRecord", "NodeStats", "OpenFTNode"]


@dataclass(frozen=True)
class ShareRecord:
    """One indexed share of a child, as its SEARCH parent sees it."""

    child_id: str
    host: str
    port: int
    http_port: int
    availability: int
    size: int
    md5: str
    filename: str


@dataclass
class NodeStats:
    """Per-node packet counters."""

    searches_seen: int = 0
    searches_forwarded: int = 0
    results_sent: int = 0
    shares_indexed: int = 0
    decode_errors: int = 0


class OpenFTNode:
    """One simulated OpenFT host (class bitmask decides behaviour)."""

    def __init__(self, sim: Simulator, transport: Transport,
                 endpoint_id: str, address: HostAddress,
                 klass: int = CLASS_USER,
                 alias: str = "",
                 port: int = DEFAULT_OPENFT_PORT,
                 http_port: int = DEFAULT_HTTP_PORT,
                 library: Optional[SharedLibrary] = None,
                 infection: Optional[HostInfection] = None,
                 stream: Optional[SeededStream] = None,
                 max_children: int = 35) -> None:
        self.sim = sim
        self.transport = transport
        self.endpoint_id = endpoint_id
        self.address = address
        self.klass = klass
        self.alias = alias or endpoint_id
        self.port = port
        self.http_port = http_port
        self.library = library if library is not None else SharedLibrary()
        self.infection = infection
        self.stream = stream if stream is not None else sim.stream(
            f"openft:{endpoint_id}")
        self.max_children = max_children
        self.stats = NodeStats()

        #: SEARCH parents this node is a child of
        self.parent_ids: List[str] = []
        #: SEARCH mesh neighbours (search nodes only)
        self.search_peer_ids: List[str] = []

        # SEARCH-node state
        self._children: Set[str] = set()
        #: key is (child, md5, filename) -- a host may share the same
        #: content under many names (bait copies), each its own entry
        self._records: Dict[Tuple[str, str, str], ShareRecord] = {}
        self._token_index: Dict[str, Set[Tuple[str, str, str]]] = {}
        #: search_id -> (requester endpoint, expiry) for relaying responses
        self._search_routes: Dict[int, Tuple[str, float]] = {}
        self._seen_searches: Set[int] = set()

        #: callback receiving (SearchResponse) packets for own searches
        self.on_search_result: Optional[Callable[[SearchResponse], None]] = None
        self.on_browse_result: Optional[Callable[[BrowseResponse], None]] = None
        #: callback receiving (source endpoint, StatsResponse) pairs
        self.on_stats: Optional[Callable[[str, StatsResponse], None]] = None
        #: callback receiving (source endpoint, NodeListResponse) pairs
        self.on_nodelist: Optional[
            Callable[[str, NodeListResponse], None]] = None
        #: resolver from peer endpoint ids to nodes, wired by the network
        #: facade; used to build node-list responses
        self.peer_resolver: Optional[
            Callable[[str], Optional["OpenFTNode"]]] = None
        self._own_searches: Set[int] = set()
        self._own_browses: Set[int] = set()
        self._search_counter = 0
        #: sampled at construction (see simnet.fastpath): True selects
        #: the decode-everything reference receive path
        self._slow = fastpath.slow_path_enabled()

        transport.attach(endpoint_id, self._on_envelope_reference
                         if self._slow else self._on_envelope)

    # -- identity -----------------------------------------------------------
    @property
    def is_search_node(self) -> bool:
        """True when this node carries the SEARCH class."""
        return bool(self.klass & CLASS_SEARCH)

    @property
    def advertised_address(self) -> str:
        """Self-reported address placed in share records."""
        return self.address.advertised

    def is_online(self) -> bool:
        """Current session state."""
        return self.transport.is_online(self.endpoint_id)

    def node_info(self) -> NodeInfoResponse:
        """The NODEINFO response this node would give."""
        return NodeInfoResponse(klass=self.klass, port=self.port,
                                http_port=self.http_port, alias=self.alias)

    # -- plumbing ------------------------------------------------------------
    def _send(self, dst: str, packet) -> None:
        self.transport.send(self.endpoint_id, dst, encode_packet(packet))

    def _on_envelope(self, envelope: Envelope) -> None:
        """Fast receive path: header-only parse, decode on demand.

        The two relay-dominated commands (search responses travelling
        back to the requester, browse listings streaming past
        non-owners) and search requests at non-search nodes skip the
        payload decode entirely; everything else falls through to the
        eager dispatch.  ``parse_packet_header`` applies the same
        framing checks as :func:`decode_packet`, so accept/reject --
        and ``decode_errors`` -- match the reference path for every
        packet our encoders produce.
        """
        raw = envelope.payload
        try:
            command, length = parse_packet_header(raw)
        except PacketError:
            self.stats.decode_errors += 1
            return
        if command == FT_SEARCH_RESPONSE:
            self._handle_SearchResponse_raw(envelope.src, raw, length)
        elif command == FT_SEARCH_REQUEST:
            if not self.is_search_node:
                return  # the reference path decodes, then discards
            try:
                packet = SearchRequest.decode(raw[PACKET_HEADER_LENGTH:])
            except PacketError:
                self.stats.decode_errors += 1
                return
            self._handle_SearchRequest(envelope.src, packet, raw)
        elif command == FT_BROWSE_RESPONSE:
            self._handle_BrowseResponse_raw(envelope.src, raw, length)
        else:
            try:
                packet = decode_packet(raw)
            except PacketError:
                self.stats.decode_errors += 1
                return
            handler = getattr(self, f"_handle_{type(packet).__name__}", None)
            if handler is not None:
                handler(envelope.src, packet)

    def _on_envelope_reference(self, envelope: Envelope) -> None:
        """Reference receive path: decode every payload eagerly.

        The pre-fast-path behaviour, kept for the equivalence harness
        (see :mod:`repro.simnet.fastpath`).
        """
        try:
            packet = decode_packet(envelope.payload)
        except PacketError:
            self.stats.decode_errors += 1
            return
        handler = getattr(self, f"_handle_{type(packet).__name__}", None)
        if handler is not None:
            handler(envelope.src, packet)

    # -- handshake-ish packets -----------------------------------------------
    def _handle_VersionRequest(self, src: str, packet: VersionRequest) -> None:
        self._send(src, VersionResponse(*OPENFT_VERSION))

    def _handle_VersionResponse(self, src: str,
                                packet: VersionResponse) -> None:
        pass  # recorded nowhere; version mismatches are out of scope

    def _handle_NodeInfoRequest(self, src: str,
                                packet: NodeInfoRequest) -> None:
        self._send(src, self.node_info())

    def _handle_NodeInfoResponse(self, src: str,
                                 packet: NodeInfoResponse) -> None:
        pass

    def _handle_NodeListRequest(self, src: str,
                                packet: NodeListRequest) -> None:
        entries = [NodeListEntry(host=self.advertised_address,
                                 port=self.port, klass=self.klass)]
        if self.peer_resolver is not None:
            for peer_id in self.search_peer_ids:
                peer = self.peer_resolver(peer_id)
                if peer is not None:
                    entries.append(NodeListEntry(
                        host=peer.advertised_address, port=peer.port,
                        klass=peer.klass))
        self._send(src, NodeListResponse(entries=tuple(entries)))

    def _handle_NodeListResponse(self, src: str,
                                 packet: NodeListResponse) -> None:
        if self.on_nodelist is not None:
            self.on_nodelist(src, packet)

    def request_nodelist(self, node_id: str) -> None:
        """Ask a node for the search/index nodes it knows."""
        self._send(node_id, NodeListRequest())

    def _handle_StatsRequest(self, src: str, packet: StatsRequest) -> None:
        self._send(src, StatsResponse(
            users=len(self._children), shares=len(self._records),
            gigabytes=sum(record.size for record in self._records.values())
            // (1024 ** 3)))

    def _handle_StatsResponse(self, src: str, packet: StatsResponse) -> None:
        if self.on_stats is not None:
            self.on_stats(src, packet)

    def request_stats(self, node_id: str) -> None:
        """Ask a SEARCH/INDEX node for its network statistics."""
        self._send(node_id, StatsRequest())

    # -- child adoption ------------------------------------------------------
    def _handle_ChildRequest(self, src: str, packet: ChildRequest) -> None:
        accepted = (self.is_search_node
                    and len(self._children) < self.max_children)
        if accepted:
            self._children.add(src)
        self._send(src, ChildResponse(accepted=accepted))

    def _handle_ChildResponse(self, src: str, packet: ChildResponse) -> None:
        if packet.accepted and src not in self.parent_ids:
            self.parent_ids.append(src)
            self.sync_shares_to(src)

    def request_parent(self, search_node_id: str) -> None:
        """Ask a SEARCH node to adopt this node as a child."""
        self._send(search_node_id, ChildRequest())

    # -- share sync ------------------------------------------------------------
    def _share_sync_packets(self) -> List[bytes]:
        """The encoded AddShare burst (plus end marker) for one sync."""
        packets = [encode_packet(AddShare(size=shared.size,
                                          md5=shared.blob.md5_hex(),
                                          filename=shared.name))
                   for shared in self.library]
        packets.append(encode_packet(ShareSyncEnd()))
        return packets

    def sync_shares_to(self, parent_id: str) -> None:
        """Send the current library as AddShare packets to one parent."""
        send = self.transport.send
        for raw in self._share_sync_packets():
            send(self.endpoint_id, parent_id, raw)

    def sync_shares(self) -> None:
        """Re-sync shares to every parent (called on session up).

        The burst is encoded once and replayed per parent -- same send
        order (all of parent A, then all of parent B) and identical
        bytes as encoding inside the loop, minus the redundant work.
        """
        if not self.parent_ids:
            return
        packets = self._share_sync_packets()
        send = self.transport.send
        for parent_id in self.parent_ids:
            for raw in packets:
                send(self.endpoint_id, parent_id, raw)

    def _handle_AddShare(self, src: str, packet: AddShare) -> None:
        if src not in self._children:
            return
        child = self.transport.endpoint(src)
        if child is None:
            return
        record = self._make_record(src, packet)
        key = (src, packet.md5, packet.filename)
        previous = self._records.get(key)
        if previous is not None:
            self._unindex(key, previous)
        self._records[key] = record
        for token in tokenize(packet.filename):
            self._token_index.setdefault(token, set()).add(key)
        self.stats.shares_indexed += 1

    def _make_record(self, child_id: str, packet: AddShare) -> ShareRecord:
        node = self._child_node(child_id)
        host = node.advertised_address if node else "0.0.0.0"
        port = node.port if node else DEFAULT_OPENFT_PORT
        http_port = node.http_port if node else DEFAULT_HTTP_PORT
        return ShareRecord(child_id=child_id, host=host, port=port,
                           http_port=http_port,
                           availability=self.stream.randint(0, 3),
                           size=packet.size, md5=packet.md5,
                           filename=packet.filename)

    #: wired by the network facade: child endpoint id -> OpenFTNode
    child_resolver: Optional[Callable[[str], Optional["OpenFTNode"]]] = None

    def _child_node(self, child_id: str) -> Optional["OpenFTNode"]:
        if self.child_resolver is None:
            return None
        return self.child_resolver(child_id)

    def _handle_RemShare(self, src: str, packet: RemShare) -> None:
        stale = [key for key in self._records
                 if key[0] == src and key[1] == packet.md5]
        for key in stale:
            self._unindex(key, self._records.pop(key))

    def _unindex(self, key: Tuple[str, str, str],
                 record: ShareRecord) -> None:
        for token in tokenize(record.filename):
            bucket = self._token_index.get(token)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._token_index[token]

    def _handle_ShareSyncEnd(self, src: str, packet: ShareSyncEnd) -> None:
        pass

    def drop_child(self, child_id: str) -> None:
        """Remove a child and all its index entries (TCP drop noticed)."""
        self._children.discard(child_id)
        stale = [key for key in self._records if key[0] == child_id]
        for key in stale:
            self._unindex(key, self._records.pop(key))

    # -- searching ---------------------------------------------------------
    def _request_id(self) -> int:
        """Next search/browse id: a stable endpoint tag + local counter.

        ``zlib.crc32`` rather than builtin ``hash()``: the latter is
        salted per process (PYTHONHASHSEED), which would give the same
        node different ids -- and different id-collision patterns --
        on every run.
        """
        self._search_counter += 1
        endpoint_tag = zlib.crc32(self.endpoint_id.encode("utf-8"))
        return (endpoint_tag & 0xFFFF) << 16 | (
            self._search_counter & 0xFFFF)

    def originate_search(self, query: str) -> int:
        """Send a search to every parent; returns the search id.

        Encoded once and fanned out: every parent receives the same
        wire bytes, exactly as the per-parent encode produced.
        """
        search_id = self._request_id()
        self._own_searches.add(search_id)
        request = SearchRequest(search_id=search_id, ttl=SEARCH_TTL,
                                query=query)
        self.transport.send_many(self.endpoint_id, self.parent_ids,
                                 encode_packet(request))
        return search_id

    def _handle_SearchRequest(self, src: str, packet: SearchRequest,
                              raw: Optional[bytes] = None) -> None:
        """Serve and forward one search.  ``raw`` (fast path only) lets
        the mesh forward re-stamp the ttl bytes instead of re-encoding
        the request once per peer."""
        if not self.is_search_node:
            return
        self.stats.searches_seen += 1
        if packet.search_id in self._seen_searches:
            return
        self._seen_searches.add(packet.search_id)
        if len(self._seen_searches) > 8192:
            self._seen_searches.clear()
        self._search_routes[packet.search_id] = (src, self.sim.now + 600.0)

        for response in self._match_local(packet):
            self._send(src, response)
            self.stats.results_sent += 1
        self._send(src, SearchResponse.end_marker(packet.search_id))

        if packet.ttl > 0:
            if raw is not None:
                forwarded = patch_search_ttl(raw, packet.ttl - 1)
                targets = [peer_id for peer_id in self.search_peer_ids
                           if peer_id != src]
                self.transport.send_many(self.endpoint_id, targets,
                                         forwarded)
                self.stats.searches_forwarded += len(targets)
            else:
                request = SearchRequest(search_id=packet.search_id,
                                        ttl=packet.ttl - 1,
                                        query=packet.query)
                for peer_id in self.search_peer_ids:
                    if peer_id != src:
                        self._send(peer_id, request)
                        self.stats.searches_forwarded += 1

    def _match_local(self, packet: SearchRequest) -> List[SearchResponse]:
        tokens = [token for token in tokenize(packet.query) if token]
        if not tokens:
            return []
        buckets = []
        for token in tokens:
            bucket = self._token_index.get(token)
            if not bucket:
                return []
            buckets.append(bucket)
        buckets.sort(key=len)
        keys = set(buckets[0])
        for bucket in buckets[1:]:
            keys &= bucket
        responses = []
        for key in sorted(keys)[:MAX_SEARCH_RESULTS]:
            record = self._records[key]
            responses.append(SearchResponse(
                search_id=packet.search_id, host=record.host,
                port=record.port, http_port=record.http_port,
                availability=record.availability, size=record.size,
                md5=record.md5, filename=record.filename))
        return responses

    def _handle_SearchResponse(self, src: str,
                               packet: SearchResponse) -> None:
        if packet.search_id in self._own_searches:
            if self.on_search_result is not None:
                self.on_search_result(packet)
            return
        route = self._search_routes.get(packet.search_id)
        if route is None or route[1] < self.sim.now:
            return
        self._send(route[0], packet)

    def _handle_SearchResponse_raw(self, src: str, raw: bytes,
                                   length: int) -> None:
        """Fast-path twin of :meth:`_handle_SearchResponse`.

        A relaying node only needs the search id (fixed offset) to pick
        the route; the received bytes forward untouched -- they are the
        bytes a decode/re-encode would produce.  Responses to our *own*
        searches decode fully before the callback sees them.
        """
        if length < 38:
            # below SearchResponse.decode's floor; count it like the
            # reference path would
            self.stats.decode_errors += 1
            return
        search_id = struct.unpack_from(">I", raw, SEARCH_ID_OFFSET)[0]
        if search_id in self._own_searches:
            try:
                packet = SearchResponse.decode(raw[PACKET_HEADER_LENGTH:])
            except PacketError:
                self.stats.decode_errors += 1
                return
            if self.on_search_result is not None:
                self.on_search_result(packet)
            return
        route = self._search_routes.get(search_id)
        if route is None or route[1] < self.sim.now:
            return
        self.transport.send(self.endpoint_id, route[0], raw)

    # -- browsing ------------------------------------------------------------
    def originate_browse(self, target_id: str) -> int:
        """Ask ``target_id`` for its share list; returns the browse id."""
        browse_id = self._request_id()
        self._own_browses.add(browse_id)
        self._send(target_id, BrowseRequest(browse_id=browse_id))
        return browse_id

    def _handle_BrowseRequest(self, src: str, packet: BrowseRequest) -> None:
        for shared in self.library:
            self._send(src, BrowseResponse(browse_id=packet.browse_id,
                                           size=shared.size,
                                           md5=shared.blob.md5_hex(),
                                           filename=shared.name))
        self._send(src, BrowseResponse.end_marker(packet.browse_id))

    def _handle_BrowseResponse(self, src: str,
                               packet: BrowseResponse) -> None:
        if packet.browse_id in self._own_browses:
            if self.on_browse_result is not None:
                self.on_browse_result(packet)

    def _handle_BrowseResponse_raw(self, src: str, raw: bytes,
                                   length: int) -> None:
        """Fast-path twin of :meth:`_handle_BrowseResponse`: listings
        streaming past a non-owner are dropped on the browse id alone."""
        if length < 26:
            self.stats.decode_errors += 1
            return
        browse_id = struct.unpack_from(">I", raw, PACKET_HEADER_LENGTH)[0]
        if browse_id not in self._own_browses:
            return
        try:
            packet = BrowseResponse.decode(raw[PACKET_HEADER_LENGTH:])
        except PacketError:
            self.stats.decode_errors += 1
            return
        if self.on_browse_result is not None:
            self.on_browse_result(packet)

    def _handle_PushRequest(self, src: str, packet) -> None:
        pass  # downloads are modelled at the measurement layer
