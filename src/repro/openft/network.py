"""The OpenFT overlay facade.

Mirrors :class:`repro.gnutella.network.GnutellaNetwork`: owns the node
registry, wires the search-node mesh and child adoptions, exposes crawler
creation and the download path (giFT's HTTP transfer, modelled as a
content request by MD5 that requires the serving host to be online).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..files.payload import Blob
from ..malware.infection import dropper_archive_blob, strain_body_blob
from ..malware.strain import Behaviour, MalwareStrain
from ..simnet.addresses import HostAddress
from ..simnet.kernel import Simulator
from ..simnet.rng import SeededStream
from ..simnet.transport import Transport
from .constants import CLASS_SEARCH, CLASS_USER
from .nodes import OpenFTNode

__all__ = ["OpenFTNetwork"]


class OpenFTNetwork:
    """A wired OpenFT overlay plus content-fetch semantics."""

    def __init__(self, sim: Simulator, transport: Transport,
                 search_nodes: Sequence[OpenFTNode],
                 user_nodes: Sequence[OpenFTNode],
                 strains: Iterable[MalwareStrain] = ()) -> None:
        self.sim = sim
        self.transport = transport
        self.search_nodes = list(search_nodes)
        self.user_nodes = list(user_nodes)
        self.nodes: Dict[str, OpenFTNode] = {
            node.endpoint_id: node
            for node in [*self.search_nodes, *self.user_nodes]
        }
        self._by_host: Dict[str, str] = {
            node.advertised_address: node.endpoint_id
            for node in self.nodes.values()
        }
        self._malware_blobs = self._index_malware_blobs(strains)
        for node in self.nodes.values():
            node.child_resolver = self.nodes.get
            node.peer_resolver = self.nodes.get

    @staticmethod
    def _index_malware_blobs(strains: Iterable[MalwareStrain],
                             ) -> Dict[str, tuple]:
        index: Dict[str, tuple] = {}
        for strain in strains:
            for variant_index in range(len(strain.sizes)):
                body = strain_body_blob(strain, variant_index)
                index[body.md5_hex()] = (strain.strain_id, body)
                if strain.behaviour is Behaviour.TROJAN_DROPPER:
                    archive = dropper_archive_blob(strain, variant_index)
                    index[archive.md5_hex()] = (strain.strain_id, archive)
        return index

    # -- wiring --------------------------------------------------------------
    def wire(self, stream: SeededStream, parents_per_user: int = 2) -> None:
        """Connect the search mesh and adopt every user under parents.

        The search mesh is a clique for small meshes (OpenFT search nodes
        kept connections to all known peers).  Adoption runs through the
        real ChildRequest/Response packets; the chosen assignment is kept
        in :attr:`desired_parents` so churn hooks can retry adoption for
        users whose first attempt raced an offline session.
        """
        self.desired_parents: Dict[str, List[str]] = {}
        for node in self.search_nodes:
            node.search_peer_ids = [
                other.endpoint_id for other in self.search_nodes
                if other.endpoint_id != node.endpoint_id
            ]
        for user in self.user_nodes:
            parents = stream.sample(
                self.search_nodes,
                min(parents_per_user, len(self.search_nodes)))
            self.desired_parents[user.endpoint_id] = [
                parent.endpoint_id for parent in parents]
            for parent in parents:
                user.request_parent(parent.endpoint_id)

    # -- lookup ----------------------------------------------------------------
    def node_by_host(self, host: str) -> Optional[OpenFTNode]:
        """Ground-truth resolution of a response's self-reported host."""
        endpoint_id = self._by_host.get(host)
        return self.nodes.get(endpoint_id) if endpoint_id else None

    def online_count(self) -> int:
        """Nodes whose session is currently up."""
        return sum(1 for node in self.nodes.values() if node.is_online())

    # -- crawler -----------------------------------------------------------
    def create_crawler(self, endpoint_id: str, address: HostAddress,
                       attach_to: int = 2,
                       alias: str = "gift-instrumented") -> OpenFTNode:
        """Create the instrumented giFT client and adopt it under parents."""
        crawler = OpenFTNode(sim=self.sim, transport=self.transport,
                             endpoint_id=endpoint_id, address=address,
                             klass=CLASS_USER, alias=alias)
        self.nodes[endpoint_id] = crawler
        self._by_host[address.advertised] = endpoint_id
        stream = self.sim.stream("openft:crawler")
        for parent in stream.sample(self.search_nodes,
                                    min(attach_to, len(self.search_nodes))):
            crawler.request_parent(parent.endpoint_id)
        return crawler

    def bootstrap_crawler(self, endpoint_id: str, address: HostAddress,
                          attach_to: int = 2,
                          alias: str = "gift-instrumented") -> OpenFTNode:
        """Create the crawler via node-list discovery.

        The crawler contacts one seed node, asks for its node list, and
        requests adoption from the advertised SEARCH nodes as the
        responses come in -- the giFT startup flow.
        """
        crawler = OpenFTNode(sim=self.sim, transport=self.transport,
                             endpoint_id=endpoint_id, address=address,
                             klass=CLASS_USER, alias=alias)
        crawler.peer_resolver = self.nodes.get
        self.nodes[endpoint_id] = crawler
        self._by_host[address.advertised] = endpoint_id

        def adopt_from_list(src: str, response) -> None:
            adopted = 0
            for entry in response.entries:
                if adopted >= attach_to:
                    break
                if not entry.klass & CLASS_SEARCH:
                    continue
                node = self.node_by_host(entry.host)
                if node is None:
                    continue
                crawler.request_parent(node.endpoint_id)
                adopted += 1

        crawler.on_nodelist = adopt_from_list
        stream = self.sim.stream("openft:crawler-bootstrap")

        def request_from_seed() -> None:
            seed = stream.choice(self.search_nodes)
            crawler.request_nodelist(seed.endpoint_id)

        def retry_until_adopted(attempts_left: int) -> None:
            if crawler.parent_ids or attempts_left <= 0:
                return
            request_from_seed()
            self.sim.after(30.0,
                           lambda: retry_until_adopted(attempts_left - 1),
                           label="bootstrap-retry")

        # the first request can be lost (lossy overlay, offline seed);
        # keep retrying against random seeds until an adoption lands
        retry_until_adopted(attempts_left=20)
        return crawler

    # -- downloads ---------------------------------------------------------
    #: probability a host's upload slots are saturated at request time
    BUSY_PROBABILITY = 0.05

    def _resolve_content(self, node: OpenFTNode, md5: str) -> Optional[Blob]:
        shared = node.library.by_md5(md5)
        if shared is not None:
            return shared.blob
        entry = self._malware_blobs.get(md5)
        if entry is not None:
            strain_id, blob = entry
            infection = node.infection
            if infection is not None and infection.carries(strain_id):
                return blob
        return None

    def relay_push(self, requester_id: str, responder: OpenFTNode,
                   md5: str) -> bool:
        """Relay a PushRequest to a NATed responder via a shared parent.

        giFT forwarded push requests through the firewalled child's
        SEARCH parent.  The relay succeeds when some parent that still
        lists the responder as a child is online; the packet is encoded
        and re-parsed to exercise the codec.
        """
        from .packets import PushRequest, decode_packet, encode_packet

        requester = self.nodes.get(requester_id)
        if requester is None or not requester.is_online():
            return False
        push = PushRequest(host=requester.advertised_address,
                           port=requester.port, md5=md5)
        wire = encode_packet(push)
        if getattr(self.transport, "shard_active", False):
            # shard mode: adoption state (parent_ids, _children) lives
            # on the endpoints' owner shards; the replicas here are
            # stale.  Decide relayability from the build-time parent
            # wish-list plus replicated session state, draw-free.
            for parent_id in self.desired_parents.get(
                    responder.endpoint_id, []):
                parent = self.nodes.get(parent_id)
                if parent is None or not parent.is_online():
                    continue
                decode_packet(wire)  # the parent parses and relays it
                return True
            return False
        for parent_id in responder.parent_ids:
            parent = self.nodes.get(parent_id)
            if parent is None or not parent.is_online():
                continue
            if responder.endpoint_id not in parent._children:
                continue
            decode_packet(wire)  # the parent parses and relays it
            return True
        return False

    def fetch(self, host: str, md5: str,
              requester_id: Optional[str] = None) -> Optional[Blob]:
        """Attempt the giFT HTTP transfer of ``md5`` from ``host``.

        The request/response heads run through :mod:`repro.transfer`.
        Fails when the host is unknown (stale index pointing at a gone
        node) or offline, occasionally 503-busy; a NATed responder
        additionally needs a push relay through an online parent (or
        fails outright when no ``requester_id`` is given).  Succeeds when
        the host shares that content or is infected with the strain it
        belongs to.
        """
        from ..transfer.http import HttpRequest, HttpResponse, \
            openft_request
        from ..transfer.server import serve_request

        node = self.node_by_host(host)
        if node is None or not node.is_online():
            return None
        if node.address.behind_nat:
            if requester_id is None:
                return None
            if not self.relay_push(requester_id, node, md5):
                return None
        request = HttpRequest.decode(openft_request(md5).encode())
        if getattr(self.transport, "shard_active", False):
            # shard mode: see GnutellaNetwork.fetch -- busyness draws
            # move to a per-endpoint stream whose order is the fetch
            # order, invariant under the partition
            busy_stream = self.sim.stream(f"shard:fetch:{node.endpoint_id}")
        else:
            busy_stream = node.stream
        response_head, blob = serve_request(
            request,
            resolve=lambda key: self._resolve_content(node, key),
            is_busy=busy_stream.bernoulli(self.BUSY_PROBABILITY),
            server="giFT/0.11.8 (OpenFT)")
        response = HttpResponse.decode(response_head.encode())
        if not response.ok or blob is None:
            return None
        return blob
