"""Binary packet codec for OpenFT.

Wire format (giFT/OpenFT style): a 4-byte header ``length(2 BE) |
command(2 BE)`` followed by ``length`` bytes of payload.  Payload fields
are packed big-endian with NUL-terminated strings, matching OpenFT's
``ft_packet_put_*`` conventions.

Each packet class round-trips through ``encode``/``decode``; the dispatch
table in :func:`decode_packet` mirrors :mod:`repro.gnutella.messages`.
"""

from __future__ import annotations

import socket
import struct
from dataclasses import dataclass
from typing import List, Tuple

from .constants import (FT_ADDSHARE_REQUEST, FT_BROWSE_REQUEST,
                        FT_BROWSE_RESPONSE, FT_CHILD_REQUEST,
                        FT_CHILD_RESPONSE, FT_NODEINFO_REQUEST,
                        FT_NODEINFO_RESPONSE, FT_NODELIST_REQUEST,
                        FT_NODELIST_RESPONSE, FT_PUSH_REQUEST,
                        FT_REMSHARE_REQUEST, FT_SEARCH_REQUEST,
                        FT_SEARCH_RESPONSE, FT_SHARE_SYNC_END,
                        FT_STATS_REQUEST, FT_STATS_RESPONSE,
                        FT_VERSION_REQUEST, FT_VERSION_RESPONSE)

__all__ = ["PacketError", "VersionRequest", "VersionResponse",
           "NodeInfoRequest", "NodeInfoResponse", "NodeListRequest",
           "NodeListEntry", "NodeListResponse", "ChildRequest",
           "ChildResponse", "AddShare", "RemShare", "ShareSyncEnd",
           "StatsRequest", "StatsResponse", "SearchRequest",
           "SearchResponse", "BrowseRequest", "BrowseResponse",
           "PushRequest", "encode_packet", "decode_packet",
           "parse_packet_header", "patch_search_ttl",
           "PACKET_HEADER_LENGTH", "SEARCH_ID_OFFSET", "SEARCH_TTL_OFFSET"]

#: ``length(2 BE) | command(2 BE)`` -- every packet starts with these.
PACKET_HEADER_LENGTH = 4
#: SearchRequest/SearchResponse payloads open with the 4-byte search id.
SEARCH_ID_OFFSET = PACKET_HEADER_LENGTH
#: SearchRequest ttl sits right after the search id (see its ``encode``).
SEARCH_TTL_OFFSET = SEARCH_ID_OFFSET + 4


class PacketError(ValueError):
    """Raised on malformed OpenFT packets."""


def _pack_string(value: str) -> bytes:
    encoded = value.encode("utf-8", errors="replace")
    if b"\x00" in encoded:
        raise PacketError(f"string field contains NUL: {value!r}")
    return encoded + b"\x00"


def _unpack_string(buffer: bytes, offset: int) -> Tuple[str, int]:
    end = buffer.find(b"\x00", offset)
    if end < 0:
        raise PacketError("string field not NUL-terminated")
    return buffer[offset:end].decode("utf-8", errors="replace"), end + 1


def _pack_ip(address: str) -> bytes:
    try:
        return socket.inet_aton(address)
    except OSError as exc:
        raise PacketError(f"bad IPv4 address {address!r}") from exc


def _unpack_ip(buffer: bytes, offset: int) -> Tuple[str, int]:
    if len(buffer) - offset < 4:
        raise PacketError("truncated IPv4 field")
    return socket.inet_ntoa(buffer[offset:offset + 4]), offset + 4


@dataclass(frozen=True)
class VersionRequest:
    """Ask a peer for its protocol version."""

    command = FT_VERSION_REQUEST

    def encode(self) -> bytes:
        return b""

    @staticmethod
    def decode(payload: bytes) -> "VersionRequest":
        return VersionRequest()


@dataclass(frozen=True)
class VersionResponse:
    """Protocol version advertisement."""

    major: int
    minor: int
    micro: int
    revision: int

    command = FT_VERSION_RESPONSE

    def encode(self) -> bytes:
        return struct.pack(">HHHH", self.major, self.minor, self.micro,
                           self.revision)

    @staticmethod
    def decode(payload: bytes) -> "VersionResponse":
        if len(payload) < 8:
            raise PacketError("short version response")
        return VersionResponse(*struct.unpack_from(">HHHH", payload))


@dataclass(frozen=True)
class NodeInfoRequest:
    """Ask a peer for its class/ports."""

    command = FT_NODEINFO_REQUEST

    def encode(self) -> bytes:
        return b""

    @staticmethod
    def decode(payload: bytes) -> "NodeInfoRequest":
        return NodeInfoRequest()


@dataclass(frozen=True)
class NodeInfoResponse:
    """Class bitmask plus the two listening ports."""

    klass: int
    port: int
    http_port: int
    alias: str

    command = FT_NODEINFO_RESPONSE

    def encode(self) -> bytes:
        return (struct.pack(">HHH", self.klass, self.port, self.http_port)
                + _pack_string(self.alias))

    @staticmethod
    def decode(payload: bytes) -> "NodeInfoResponse":
        if len(payload) < 7:
            raise PacketError("short nodeinfo response")
        klass, port, http_port = struct.unpack_from(">HHH", payload)
        alias, _ = _unpack_string(payload, 6)
        return NodeInfoResponse(klass=klass, port=port, http_port=http_port,
                                alias=alias)


@dataclass(frozen=True)
class NodeListRequest:
    """Ask a SEARCH/INDEX node which other nodes it knows."""

    command = FT_NODELIST_REQUEST

    def encode(self) -> bytes:
        return b""

    @staticmethod
    def decode(payload: bytes) -> "NodeListRequest":
        return NodeListRequest()


@dataclass(frozen=True)
class NodeListEntry:
    """One advertised node: where it listens and what classes it runs."""

    host: str
    port: int
    klass: int

    def encode(self) -> bytes:
        return _pack_ip(self.host) + struct.pack(">HH", self.port,
                                                 self.klass)

    @staticmethod
    def decode_from(buffer: bytes, offset: int) -> Tuple["NodeListEntry",
                                                         int]:
        if len(buffer) - offset < 8:
            raise PacketError("truncated nodelist entry")
        host, offset = _unpack_ip(buffer, offset)
        port, klass = struct.unpack_from(">HH", buffer, offset)
        return NodeListEntry(host=host, port=port, klass=klass), offset + 4


@dataclass(frozen=True)
class NodeListResponse:
    """The node list (count-prefixed entries)."""

    entries: Tuple[NodeListEntry, ...]

    command = FT_NODELIST_RESPONSE

    def encode(self) -> bytes:
        if len(self.entries) > 0xFFFF:
            raise PacketError("nodelist too large")
        parts = [struct.pack(">H", len(self.entries))]
        parts.extend(entry.encode() for entry in self.entries)
        return b"".join(parts)

    @staticmethod
    def decode(payload: bytes) -> "NodeListResponse":
        if len(payload) < 2:
            raise PacketError("short nodelist response")
        count = struct.unpack_from(">H", payload)[0]
        offset = 2
        entries = []
        for _ in range(count):
            entry, offset = NodeListEntry.decode_from(payload, offset)
            entries.append(entry)
        return NodeListResponse(entries=tuple(entries))


@dataclass(frozen=True)
class ChildRequest:
    """A USER node asking a SEARCH node to adopt it as a child."""

    command = FT_CHILD_REQUEST

    def encode(self) -> bytes:
        return b""

    @staticmethod
    def decode(payload: bytes) -> "ChildRequest":
        return ChildRequest()


@dataclass(frozen=True)
class ChildResponse:
    """SEARCH node's accept/reject of a child request."""

    accepted: bool

    command = FT_CHILD_RESPONSE

    def encode(self) -> bytes:
        return struct.pack(">H", 1 if self.accepted else 0)

    @staticmethod
    def decode(payload: bytes) -> "ChildResponse":
        if len(payload) < 2:
            raise PacketError("short child response")
        return ChildResponse(accepted=bool(struct.unpack_from(
            ">H", payload)[0]))


@dataclass(frozen=True)
class AddShare:
    """Child -> parent share registration (one file)."""

    size: int
    md5: str
    filename: str

    command = FT_ADDSHARE_REQUEST

    def encode(self) -> bytes:
        if len(self.md5) != 32:
            raise PacketError(f"md5 must be 32 hex chars, got {self.md5!r}")
        return (struct.pack(">I", min(self.size, 0xFFFFFFFF))
                + bytes.fromhex(self.md5) + _pack_string(self.filename))

    @staticmethod
    def decode(payload: bytes) -> "AddShare":
        if len(payload) < 21:
            raise PacketError("short addshare")
        size = struct.unpack_from(">I", payload)[0]
        md5 = payload[4:20].hex()
        filename, _ = _unpack_string(payload, 20)
        return AddShare(size=size, md5=md5, filename=filename)


@dataclass(frozen=True)
class RemShare:
    """Child -> parent share removal by content hash."""

    md5: str

    command = FT_REMSHARE_REQUEST

    def encode(self) -> bytes:
        return bytes.fromhex(self.md5)

    @staticmethod
    def decode(payload: bytes) -> "RemShare":
        if len(payload) < 16:
            raise PacketError("short remshare")
        return RemShare(md5=payload[:16].hex())


@dataclass(frozen=True)
class ShareSyncEnd:
    """Marks the end of a share synchronization burst."""

    command = FT_SHARE_SYNC_END

    def encode(self) -> bytes:
        return b""

    @staticmethod
    def decode(payload: bytes) -> "ShareSyncEnd":
        return ShareSyncEnd()


@dataclass(frozen=True)
class StatsRequest:
    """Ask an INDEX node for network statistics."""

    command = FT_STATS_REQUEST

    def encode(self) -> bytes:
        return b""

    @staticmethod
    def decode(payload: bytes) -> "StatsRequest":
        return StatsRequest()


@dataclass(frozen=True)
class StatsResponse:
    """Network statistics (users, shares, total size in GB)."""

    users: int
    shares: int
    gigabytes: int

    command = FT_STATS_RESPONSE

    def encode(self) -> bytes:
        return struct.pack(">III", self.users, self.shares, self.gigabytes)

    @staticmethod
    def decode(payload: bytes) -> "StatsResponse":
        if len(payload) < 12:
            raise PacketError("short stats response")
        return StatsResponse(*struct.unpack_from(">III", payload))


@dataclass(frozen=True)
class SearchRequest:
    """Keyword search.

    ``search_id`` correlates responses; ``ttl`` controls mesh fan-out
    (searches hop at most once between SEARCH nodes).
    """

    search_id: int
    ttl: int
    query: str

    command = FT_SEARCH_REQUEST

    def encode(self) -> bytes:
        return (struct.pack(">IH", self.search_id, self.ttl)
                + _pack_string(self.query))

    @staticmethod
    def decode(payload: bytes) -> "SearchRequest":
        if len(payload) < 7:
            raise PacketError("short search request")
        search_id, ttl = struct.unpack_from(">IH", payload)
        query, _ = _unpack_string(payload, 6)
        return SearchRequest(search_id=search_id, ttl=ttl, query=query)


@dataclass(frozen=True)
class SearchResponse:
    """One search result (or the end-of-results sentinel).

    ``host`` is the serving node's self-reported address.  An empty
    ``md5`` marks end-of-results for ``search_id``, as OpenFT signalled
    completion with a null result.
    """

    search_id: int
    host: str
    port: int
    http_port: int
    availability: int
    size: int
    md5: str
    filename: str

    command = FT_SEARCH_RESPONSE

    @staticmethod
    def end_marker(search_id: int) -> "SearchResponse":
        """The sentinel closing a result stream."""
        return SearchResponse(search_id=search_id, host="0.0.0.0", port=0,
                              http_port=0, availability=0, size=0, md5="",
                              filename="")

    @property
    def is_end_marker(self) -> bool:
        """True when this response closes the stream."""
        return not self.md5

    def encode(self) -> bytes:
        md5_raw = bytes.fromhex(self.md5) if self.md5 else b"\x00" * 16
        has_md5 = 1 if self.md5 else 0
        return (struct.pack(">IB", self.search_id, has_md5)
                + _pack_ip(self.host)
                + struct.pack(">HHII", self.port, self.http_port,
                              self.availability,
                              min(self.size, 0xFFFFFFFF))
                + md5_raw + _pack_string(self.filename))

    @staticmethod
    def decode(payload: bytes) -> "SearchResponse":
        if len(payload) < 38:
            raise PacketError("short search response")
        search_id, has_md5 = struct.unpack_from(">IB", payload)
        host, offset = _unpack_ip(payload, 5)
        port, http_port, availability, size = struct.unpack_from(
            ">HHII", payload, offset)
        offset += 12
        md5 = payload[offset:offset + 16].hex() if has_md5 else ""
        offset += 16
        filename, _ = _unpack_string(payload, offset)
        return SearchResponse(search_id=search_id, host=host, port=port,
                              http_port=http_port, availability=availability,
                              size=size, md5=md5, filename=filename)


@dataclass(frozen=True)
class BrowseRequest:
    """Ask a host for its full share list."""

    browse_id: int

    command = FT_BROWSE_REQUEST

    def encode(self) -> bytes:
        return struct.pack(">I", self.browse_id)

    @staticmethod
    def decode(payload: bytes) -> "BrowseRequest":
        if len(payload) < 4:
            raise PacketError("short browse request")
        return BrowseRequest(browse_id=struct.unpack_from(">I", payload)[0])


@dataclass(frozen=True)
class BrowseResponse:
    """One browsed share (empty md5 = end of listing)."""

    browse_id: int
    size: int
    md5: str
    filename: str

    command = FT_BROWSE_RESPONSE

    @staticmethod
    def end_marker(browse_id: int) -> "BrowseResponse":
        """The sentinel closing a browse listing."""
        return BrowseResponse(browse_id=browse_id, size=0, md5="",
                              filename="")

    @property
    def is_end_marker(self) -> bool:
        """True when this response closes the listing."""
        return not self.md5

    def encode(self) -> bytes:
        md5_raw = bytes.fromhex(self.md5) if self.md5 else b"\x00" * 16
        has_md5 = 1 if self.md5 else 0
        return (struct.pack(">IBI", self.browse_id, has_md5,
                            min(self.size, 0xFFFFFFFF))
                + md5_raw + _pack_string(self.filename))

    @staticmethod
    def decode(payload: bytes) -> "BrowseResponse":
        if len(payload) < 26:
            raise PacketError("short browse response")
        browse_id, has_md5, size = struct.unpack_from(">IBI", payload)
        md5 = payload[9:25].hex() if has_md5 else ""
        filename, _ = _unpack_string(payload, 25)
        return BrowseResponse(browse_id=browse_id, size=size, md5=md5,
                              filename=filename)


@dataclass(frozen=True)
class PushRequest:
    """Ask a firewalled host to connect out for a download."""

    host: str
    port: int
    md5: str

    command = FT_PUSH_REQUEST

    def encode(self) -> bytes:
        return (_pack_ip(self.host) + struct.pack(">H", self.port)
                + bytes.fromhex(self.md5))

    @staticmethod
    def decode(payload: bytes) -> "PushRequest":
        if len(payload) < 22:
            raise PacketError("short push request")
        host, offset = _unpack_ip(payload, 0)
        port = struct.unpack_from(">H", payload, offset)[0]
        md5 = payload[offset + 2:offset + 18].hex()
        return PushRequest(host=host, port=port, md5=md5)


_DECODERS = {
    FT_VERSION_REQUEST: VersionRequest.decode,
    FT_VERSION_RESPONSE: VersionResponse.decode,
    FT_NODEINFO_REQUEST: NodeInfoRequest.decode,
    FT_NODEINFO_RESPONSE: NodeInfoResponse.decode,
    FT_NODELIST_REQUEST: NodeListRequest.decode,
    FT_NODELIST_RESPONSE: NodeListResponse.decode,
    FT_CHILD_REQUEST: ChildRequest.decode,
    FT_CHILD_RESPONSE: ChildResponse.decode,
    FT_ADDSHARE_REQUEST: AddShare.decode,
    FT_REMSHARE_REQUEST: RemShare.decode,
    FT_SHARE_SYNC_END: ShareSyncEnd.decode,
    FT_STATS_REQUEST: StatsRequest.decode,
    FT_STATS_RESPONSE: StatsResponse.decode,
    FT_SEARCH_REQUEST: SearchRequest.decode,
    FT_SEARCH_RESPONSE: SearchResponse.decode,
    FT_BROWSE_REQUEST: BrowseRequest.decode,
    FT_BROWSE_RESPONSE: BrowseResponse.decode,
    FT_PUSH_REQUEST: PushRequest.decode,
}


def encode_packet(packet) -> bytes:
    """Frame a packet: ``length(2 BE) | command(2 BE) | payload``."""
    payload = packet.encode()
    if len(payload) > 0xFFFF:
        raise PacketError(f"payload too large: {len(payload)}")
    return struct.pack(">HH", len(payload), packet.command) + payload


def decode_packet(raw: bytes):
    """Parse framed bytes back into a packet object."""
    if len(raw) < 4:
        raise PacketError(f"short packet: {len(raw)} bytes")
    length, command = struct.unpack_from(">HH", raw)
    payload = raw[4:]
    if len(payload) != length:
        raise PacketError(
            f"length mismatch: header says {length}, got {len(payload)}")
    decoder = _DECODERS.get(command)
    if decoder is None:
        raise PacketError(f"unknown command 0x{command:04x}")
    return decoder(payload)


def parse_packet_header(raw) -> Tuple[int, int]:
    """``(command, payload_length)`` without decoding the payload.

    Applies exactly the framing checks :func:`decode_packet` applies
    (short packet, declared-vs-actual length, known command), so a
    packet accepted here is a packet ``decode_packet`` would hand to a
    payload decoder.  Lazy receivers dispatch on the command and decode
    only when a handler needs payload fields.

    ``raw`` may be ``bytes``, ``bytearray`` or a ``memoryview``:
    ``struct.unpack_from`` reads the four header bytes straight out of
    the underlying buffer, so a receiver holding a view into a larger
    batch never materializes the packet just to dispatch on it.
    """
    if len(raw) < PACKET_HEADER_LENGTH:
        raise PacketError(f"short packet: {len(raw)} bytes")
    length, command = struct.unpack_from(">HH", raw)
    if len(raw) - PACKET_HEADER_LENGTH != length:
        raise PacketError(
            f"length mismatch: header says {length}, "
            f"got {len(raw) - PACKET_HEADER_LENGTH}")
    if command not in _DECODERS:
        raise PacketError(f"unknown command 0x{command:04x}")
    return command, length


def patch_search_ttl(raw, ttl: int) -> bytes:
    """Re-stamp a framed SearchRequest's ttl without re-encoding.

    The ttl is the only field a forwarding SEARCH node changes, and it
    sits at a fixed offset (search id is fixed-width), so stamping the
    two ttl bytes produces the same bytes a decode/re-encode would.

    One buffer copy plus an in-place ``struct.pack_into`` -- the old
    three-slice splice built four transient objects and copied the
    body twice.  ``raw`` may be ``bytes``, ``bytearray`` or a
    ``memoryview``.
    """
    patched = bytearray(raw)
    struct.pack_into(">H", patched, SEARCH_TTL_OFFSET, ttl)
    return bytes(patched)
