"""Command-line interface.

The subcommands mirror the study's workflow::

    repro-study run       --network both --days 1 --seed 2 --out data/
    repro-study replicate --network limewire --seeds 8 --workers 4
    repro-study chaos     --quick
    repro-study analyze   data/limewire.jsonl --table all
    repro-study filter-eval data/limewire.jsonl
    repro-study telemetry --network limewire --days 1 --out telemetry/
    repro-study serve     --network limewire --days 1 --port 8000
    repro-study hotspots  --network limewire --days 0.1
    repro-study lint      --strict
    repro-study selfcheck --seeds 2
    repro-study doctor    checkpoints/ --repair

``run`` simulates the campaigns and writes raw measurement stores as
JSON-lines; ``replicate`` runs the same campaign under several seeds
(fanned out over worker processes) and prints the headline-metric
ranges; ``serve`` runs an instrumented campaign with the live
observability plane attached (HTML dashboard, ``/metrics``, journal
tail, trace and hotspot endpoints -- also available on ``replicate``
and ``telemetry`` via ``--serve-port``); ``hotspots`` prints where the
kernel's wall time went, from the always-on sampled callback
histograms; ``analyze`` recomputes any table/figure from a saved store
(no re-simulation); ``filter-eval`` compares the existing-Limewire
baseline against the size-based filter on a saved store; ``telemetry``
runs a fully instrumented campaign and dumps its Prometheus metrics,
span chains and JSONL run journal (``tail -f`` the journal while it
runs).

The last three are the correctness tooling: ``lint`` runs detlint (the
determinism & layering static-analysis pass) over ``src/``,
``selfcheck`` proves at runtime that same-seed campaigns replay to
identical event-stream digests with the entropy sanitizer armed, and
``doctor`` verifies (and with ``--repair`` fixes) on-disk artifacts
after a crash -- reporting exactly what a checkpoint resume would
recover.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from .core import reports
from .core.analysis import top_malware
from .core.filtering import (ExistingLimewireFilter, SizeBasedFilter,
                             evaluate_filters)
from .core.measure import (CampaignConfig, MeasurementStore,
                           run_limewire_campaign, run_openft_campaign)
from .faults import SEVERITIES
from .malware.corpus import limewire_strains

__all__ = ["main", "build_parser"]

_TABLES = ("t1", "t2", "t3", "t4", "t5", "t6",
           "f1", "f2", "f3", "f4", "x1", "x2", "x3", "x4")


def build_parser() -> argparse.ArgumentParser:
    """The repro-study argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description="Reproduce 'A study of malware in P2P networks' "
                    "(IMC 2006)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run", help="simulate measurement campaigns and save raw stores")
    run.add_argument("--network", choices=("limewire", "openft", "both"),
                     default="both")
    run.add_argument("--days", type=float, default=1.0,
                     help="virtual days to measure (paper: 35)")
    run.add_argument("--seed", type=int, default=2)
    run.add_argument("--out", type=Path, default=Path("study_output"))

    analyze = subparsers.add_parser(
        "analyze", help="recompute tables/figures from a saved store")
    analyze.add_argument("store", type=Path,
                         help="JSON-lines store written by 'run'")
    analyze.add_argument("--table", choices=_TABLES + ("all",),
                         default="all")
    analyze.add_argument("--days", type=float, default=1.0,
                         help="campaign length for T1 (informational)")

    replicate = subparsers.add_parser(
        "replicate",
        help="run a multi-seed replication campaign and print the "
             "mean/min/max of every headline metric")
    replicate.add_argument("--network", choices=("limewire", "openft"),
                           default="limewire")
    replicate.add_argument("--seeds", type=int, default=4,
                           help="number of replication seeds")
    replicate.add_argument("--base-seed", type=int, default=1,
                           help="first seed; replications use "
                                "base-seed..base-seed+seeds-1")
    replicate.add_argument("--days", type=float, default=1.0,
                           help="virtual days per replication")
    replicate.add_argument("--workers", type=int, default=None,
                           help="campaign processes to run in parallel "
                                "(default: one per CPU; 1 = serial)")
    replicate.add_argument("--shards", type=int, default=1,
                           help="kernel shards per campaign (default 1 = "
                                "the plain single-process kernel; N >= 2 "
                                "partitions each seed's overlay into N "
                                "conservative-window shards)")
    replicate.add_argument("--shard-executor",
                           choices=("auto", "serial", "process"),
                           default="auto",
                           help="how shards execute: forked worker "
                                "processes, in-process serial twin, or "
                                "auto-pick by host (results are identical "
                                "either way)")
    replicate.add_argument("--telemetry-dir", type=Path, default=None,
                           help="instrument every replication and write "
                                "per-seed journals/spans/metrics plus the "
                                "merged Prometheus textfile here")
    replicate.add_argument("--sanitize", action="store_true",
                           help="arm the runtime determinism sanitizer in "
                                "every replication (forbidden entropy "
                                "sources abort the run)")
    replicate.add_argument("--checkpoint", type=Path, default=None,
                           help="JSONL journal of completed seeds; an "
                                "interrupted campaign rerun with the same "
                                "path resumes instead of recomputing")
    replicate.add_argument("--journal-interval", type=float, default=None,
                           help="virtual seconds between journal snapshots "
                                "(default: horizon/100 clamped to "
                                "[1s, 3600s]; pass 3600 for the fixed "
                                "hourly cadence)")
    replicate.add_argument("--serve-port", type=int, default=None,
                           help="serve the fan-out live on one aggregated "
                                "observability endpoint (0 = ephemeral "
                                "port; requires --telemetry-dir)")
    replicate.add_argument("--supervise", action="store_true",
                           help="run workers under heartbeat supervision: "
                                "hung or stalled workers are killed, "
                                "requeued with backoff, and quarantined "
                                "instead of blocking the campaign")
    replicate.add_argument("--deadline", type=float, default=300.0,
                           metavar="SECONDS",
                           help="wall-clock budget per supervised attempt "
                                "(default: 300)")
    replicate.add_argument("--stall-timeout", type=float, default=60.0,
                           metavar="SECONDS",
                           help="max heartbeat silence before a supervised "
                                "worker is declared wedged (default: 60)")
    replicate.add_argument("--hang-seeds", type=int, nargs="*", default=None,
                           metavar="SEED",
                           help="chaos: inject a worker hang for these "
                                "seeds (every attempt; the supervisor must "
                                "kill and quarantine them -- requires "
                                "--supervise)")

    doctor = subparsers.add_parser(
        "doctor",
        help="verify on-disk artifacts (checkpoints, journals, JSON "
             "exports): report what a resume would recover and, with "
             "--repair, truncate torn tails and quarantine corrupt "
             "records")
    doctor.add_argument("paths", type=Path, nargs="+",
                        help="artifact files or directories to examine")
    doctor.add_argument("--repair", action="store_true",
                        help="fix what can be fixed: truncate torn tails, "
                             "move corrupt records to a .quarantine side "
                             "file, delete stale atomic-write temp files")

    chaos = subparsers.add_parser(
        "chaos",
        help="experiment R1: sweep the graded fault envelopes over both "
             "networks and check the headline claims under stress")
    chaos.add_argument("--network", choices=("limewire", "openft", "both"),
                       default="both")
    chaos.add_argument("--severities", nargs="*", choices=SEVERITIES,
                       default=None,
                       help="severity rungs to sweep (default: all, "
                            "mildest first)")
    chaos.add_argument("--seeds", type=int, default=3,
                       help="replication seeds per (severity, network)")
    chaos.add_argument("--base-seed", type=int, default=1)
    chaos.add_argument("--days", type=float, default=0.25,
                       help="virtual days per campaign")
    chaos.add_argument("--scale", type=float, default=0.5,
                       help="population scale factor")
    chaos.add_argument("--workers", type=int, default=1,
                       help="campaign processes per replication cell")
    chaos.add_argument("--sanitize", action="store_true",
                       help="arm the determinism sanitizer inside every "
                            "faulted campaign")
    chaos.add_argument("--quick", action="store_true",
                       help="CI smoke preset: one seed, 0.1 days, scale "
                            "0.35, severities off+moderate")

    telemetry = subparsers.add_parser(
        "telemetry",
        help="run an instrumented campaign and dump metrics, spans and "
             "the run journal")
    telemetry.add_argument("--network",
                           choices=("limewire", "openft", "both"),
                           default="limewire")
    telemetry.add_argument("--days", type=float, default=1.0,
                           help="virtual days to measure")
    telemetry.add_argument("--seed", type=int, default=2)
    telemetry.add_argument("--out", type=Path,
                           default=Path("telemetry_output"),
                           help="directory for <network>_metrics.prom, "
                                "<network>_spans.jsonl and "
                                "<network>_journal.jsonl")
    telemetry.add_argument("--journal-interval", type=float, default=None,
                           help="virtual seconds between journal snapshots "
                                "(default: horizon/100 clamped to "
                                "[1s, 3600s]; pass 3600 for the fixed "
                                "hourly cadence of earlier runs)")
    telemetry.add_argument("--sample-every", type=int, default=64,
                           help="sample one in N event callbacks for "
                                "wall-time histograms")
    telemetry.add_argument("--serve-port", type=int, default=None,
                           help="also expose the campaign(s) live over "
                                "HTTP while they run (0 = ephemeral port)")

    serve = subparsers.add_parser(
        "serve",
        help="run an instrumented campaign with the live observability "
             "plane: HTML dashboard, /metrics, journal tail, trace and "
             "hotspot endpoints")
    serve.add_argument("--network", choices=("limewire", "openft"),
                       default="limewire")
    serve.add_argument("--days", type=float, default=1.0,
                       help="virtual days to measure")
    serve.add_argument("--seed", type=int, default=2)
    serve.add_argument("--scale", type=float, default=1.0,
                       help="population scale factor")
    serve.add_argument("--port", type=int, default=8000,
                       help="HTTP port (0 = ephemeral)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--out", type=Path, default=Path("serve_output"),
                       help="directory for the journal and final outputs")
    serve.add_argument("--journal-interval", type=float, default=None,
                       help="virtual seconds between journal snapshots "
                            "(default: horizon/100 clamped to [1s, 3600s])")
    serve.add_argument("--sample-every", type=int, default=64,
                       help="sample one in N event callbacks for "
                            "wall-time histograms")
    serve.add_argument("--linger", type=float, default=0.0,
                       help="keep serving this many wall seconds after "
                            "the campaign finishes (browse the final "
                            "state; ctrl-C to stop early)")
    serve.add_argument("--verify", action="store_true",
                       help="prove the server is off the hot path: scrape "
                            "/healthz and /metrics from a background "
                            "thread mid-run, then re-run server-off and "
                            "assert the event digest and store sha256 "
                            "are identical")

    hotspots = subparsers.add_parser(
        "hotspots",
        help="per-label kernel hotspot report from the sampled callback "
             "wall-time histograms (run a campaign, or read a saved "
             "registry snapshot)")
    hotspots.add_argument("--network", choices=("limewire", "openft"),
                          default="limewire")
    hotspots.add_argument("--days", type=float, default=0.1,
                          help="virtual days to simulate")
    hotspots.add_argument("--seed", type=int, default=2)
    hotspots.add_argument("--scale", type=float, default=0.35,
                          help="population scale factor")
    hotspots.add_argument("--sample-every", type=int, default=64,
                          help="sample one in N event callbacks")
    hotspots.add_argument("--top", type=int, default=15,
                          help="hotspot rows to print")
    hotspots.add_argument("--json", type=Path, default=None,
                          help="also write the machine-readable report "
                               "here")
    hotspots.add_argument("--snapshot", type=Path, default=None,
                          help="build the report from a saved registry "
                               "snapshot JSON (e.g. a served "
                               "/snapshot.json body) instead of running "
                               "a campaign")

    lint = subparsers.add_parser(
        "lint",
        help="run detlint: determinism rules (DET001-DET008), the "
             "layer-DAG check (LAY001/LAY002), the twin-drift check "
             "(TWN001) and the concurrency lint (CONC001-CONC003) "
             "over src/")
    lint.add_argument("paths", type=Path, nargs="*",
                      help="files/directories to lint (default: the "
                           "configured package under src/)")
    lint.add_argument("--root", type=Path, default=None,
                      help="repo root holding pyproject.toml "
                           "(default: nearest ancestor of cwd)")
    lint.add_argument("--strict", action="store_true",
                      help="also fail on unused baseline entries")
    lint.add_argument("--sarif", type=Path, default=None, metavar="PATH",
                      help="additionally write the findings as a SARIF "
                           "2.1.0 log to PATH")
    lint.add_argument("--changed-only", action="store_true",
                      help="lint only files changed vs HEAD (plus "
                           "untracked); cross-file twin checks and "
                           "unused-baseline strictness are skipped on "
                           "the subset walk")
    lint.add_argument("--no-cache", action="store_true",
                      help="bypass the .detlint-cache/ result cache "
                           "(the cache never changes output, only "
                           "speed)")

    selfcheck = subparsers.add_parser(
        "selfcheck",
        help="prove determinism at runtime: same-seed campaigns must "
             "produce identical event-stream digests under the armed "
             "entropy sanitizer")
    selfcheck.add_argument("--network", choices=("limewire", "openft"),
                           default="limewire")
    selfcheck.add_argument("--seeds", type=int, default=2,
                           help="number of seeds to twin-run")
    selfcheck.add_argument("--base-seed", type=int, default=1)
    selfcheck.add_argument("--days", type=float, default=0.1,
                           help="virtual days per campaign (small: the "
                                "check runs 2 campaigns per seed)")
    selfcheck.add_argument("--scale", type=float, default=0.35,
                           help="population scale factor for the check "
                                "worlds")
    selfcheck.add_argument("--no-sanitize", action="store_true",
                           help="compare digests without arming the "
                                "entropy sanitizer")
    selfcheck.add_argument("--equivalence", action="store_true",
                           help="additionally re-run every seed on the "
                                "reference (slow) data plane and demand "
                                "identical event digests, store sha256 "
                                "and headline metrics")
    selfcheck.add_argument("--shard-equivalence", action="store_true",
                           help="additionally prove the sharded kernel's "
                                "contract for every seed: shards=1 (plain "
                                "and forced through the window loop) is "
                                "bit-identical to the single-process "
                                "kernel, and N-shard stores are invariant "
                                "in N")
    selfcheck.add_argument("--lock-order", action="store_true",
                           help="instead of the digest check, record "
                                "every lock acquisition while a "
                                "telemetry server is scraped during a "
                                "tiny campaign and fail on lock-order "
                                "cycles")

    profile = subparsers.add_parser(
        "profile",
        help="run one campaign under cProfile and print the top "
             "cumulative hotspots")
    profile.add_argument("network", choices=("limewire", "openft"))
    profile.add_argument("--days", type=float, default=0.1,
                         help="virtual days to simulate")
    profile.add_argument("--seed", type=int, default=2)
    profile.add_argument("--scale", type=float, default=0.35,
                         help="population scale factor")
    profile.add_argument("--top", type=int, default=25,
                         help="hotspot rows to print")
    profile.add_argument("--out", type=Path, default=None,
                         help="also dump the raw pstats data here "
                              "(loadable with pstats.Stats)")

    filter_eval = subparsers.add_parser(
        "filter-eval",
        help="compare existing vs size-based filtering on a saved store")
    filter_eval.add_argument("store", type=Path)
    filter_eval.add_argument("--top-n", type=int, default=3,
                             help="strains feeding the size dictionary")
    filter_eval.add_argument("--coverage", type=float, default=0.95,
                             help="per-strain size coverage target")

    export = subparsers.add_parser(
        "export", help="write every table/figure of a saved store as CSV")
    export.add_argument("store", type=Path)
    export.add_argument("--out", type=Path, default=Path("csv_output"))
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    config = CampaignConfig(seed=args.seed, duration_days=args.days)
    args.out.mkdir(parents=True, exist_ok=True)
    campaigns = []
    if args.network in ("limewire", "both"):
        campaigns.append(("limewire", run_limewire_campaign))
    if args.network in ("openft", "both"):
        campaigns.append(("openft", run_openft_campaign))
    for name, runner in campaigns:
        print(f"running {name} campaign "
              f"({args.days:g} virtual days, seed {args.seed})...")
        result = runner(config)
        path = args.out / f"{name}.jsonl"
        count = result.store.save(path)
        print(f"  {count} responses -> {path}")
    return 0


def _cmd_replicate(args: argparse.Namespace) -> int:
    from .core.experiments import run_replications
    from .core.parallel import resolve_workers

    if args.seeds < 1:
        print("error: --seeds must be >= 1", file=sys.stderr)
        return 2
    if args.serve_port is not None and args.telemetry_dir is None:
        print("error: --serve-port requires --telemetry-dir",
              file=sys.stderr)
        return 2
    if args.hang_seeds and not args.supervise:
        print("error: --hang-seeds requires --supervise (an unsupervised "
              "pool would hang forever)", file=sys.stderr)
        return 2
    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    seeds = tuple(range(args.base_seed, args.base_seed + args.seeds))
    workers = resolve_workers(args.workers, len(seeds))
    config = CampaignConfig(duration_days=args.days, shards=args.shards)
    supervision = None
    if args.supervise:
        from .resilience import SupervisionPolicy
        supervision = SupervisionPolicy(
            deadline_s=args.deadline,
            stall_timeout_s=args.stall_timeout,
            heartbeat_s=min(1.0, args.stall_timeout / 2.0))
    if args.hang_seeds:
        from .faults import FaultPlan, WorkerHang
        # attempts=2: the retry hangs too, forcing the quarantine path
        config = replace(config, fault_plan=FaultPlan(
            worker_hang=WorkerHang(seeds=tuple(args.hang_seeds),
                                   attempts=2)))
    print(f"replicating {args.network} over seeds {list(seeds)} "
          f"({args.days:g} virtual days each, {workers} worker"
          f"{'s' if workers != 1 else ''}"
          f"{', supervised' if supervision else ''}"
          + (f", {args.shards} kernel shards" if args.shards > 1 else "")
          + ")...")
    kills = []
    report = run_replications(args.network, seeds, config,
                              workers=workers,
                              telemetry_dir=args.telemetry_dir,
                              sanitize=args.sanitize,
                              checkpoint=args.checkpoint,
                              journal_interval_s=args.journal_interval,
                              serve_port=args.serve_port,
                              on_serve=lambda url: print(
                                  f"observability endpoint: {url}"),
                              supervision=supervision,
                              on_kill=kills.append,
                              shard_executor=args.shard_executor)
    for kill in kills:
        seed, attempt = kill.item
        print(f"supervisor: killed seed {seed} attempt {attempt} "
              f"(kill #{kill.kills}: {kill.reason}; "
              f"{'requeued' if kill.requeued else 'gave up'})")
    print(report.render())
    if report.telemetry_path is not None:
        print(f"\nmerged telemetry ({len(report.registry)} metrics) "
              f"-> {report.telemetry_path}")
    return 1 if report.degraded else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .core.chaos import run_fault_envelope

    if args.seeds < 1:
        print("error: --seeds must be >= 1", file=sys.stderr)
        return 2
    if args.quick:
        severities = ("off", "moderate")
        seeds = (args.base_seed,)
        duration_days, scale = 0.1, 0.35
    else:
        severities = (tuple(args.severities) if args.severities
                      else SEVERITIES)
        seeds = tuple(range(args.base_seed, args.base_seed + args.seeds))
        duration_days, scale = args.days, args.scale
    networks = (("limewire", "openft") if args.network == "both"
                else (args.network,))
    print(f"chaos sweep: {list(networks)} x {list(severities)}, "
          f"seeds {list(seeds)}, {duration_days:g} virtual days, "
          f"scale {scale:g}...")
    report = run_fault_envelope(networks=networks, severities=severities,
                                seeds=seeds, duration_days=duration_days,
                                scale=scale, workers=args.workers,
                                sanitize=args.sanitize)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from .telemetry import CampaignTelemetry

    config = CampaignConfig(seed=args.seed, duration_days=args.days)
    campaigns = []
    if args.network in ("limewire", "both"):
        campaigns.append(("limewire", run_limewire_campaign))
    if args.network in ("openft", "both"):
        campaigns.append(("openft", run_openft_campaign))
    bundles = {
        name: CampaignTelemetry.for_directory(
            args.out, name, journal_interval_s=args.journal_interval,
            sample_every=args.sample_every)
        for name, _runner in campaigns}
    server = None
    if args.serve_port is not None:
        from .telemetry.httpd import ObservatoryHub, TelemetryServer
        hub = ObservatoryHub(title=f"telemetry ({args.network})")
        hub.set_status(seed=args.seed, days=args.days)
        for name, telemetry in bundles.items():
            hub.add_campaign(name, telemetry)
        server = TelemetryServer(hub, port=args.serve_port).start()
        print(f"observability endpoint: {server.url}")
    try:
        for name, runner in campaigns:
            telemetry = bundles[name]
            print(f"running instrumented {name} campaign "
                  f"({args.days:g} virtual days, seed {args.seed})...")
            print(f"  journal: tail -f {telemetry.journal.path}")
            result = runner(config, telemetry=telemetry)
            written = telemetry.write_outputs(args.out, name)
            registry, tracer = telemetry.registry, telemetry.tracer
            events = registry.get("sim_events_total")
            print(f"  {len(result.store)} responses, "
                  f"{int(events.value) if events else 0} kernel events, "
                  f"{result.engine.cache_hit_rate:.1%} scan cache hit rate")
            print(f"  {len(registry.metric_names())} metrics, "
                  f"{len(tracer)} spans "
                  f"({len(tracer.spans('query'))} query chains)")
            for kind, path in sorted(written.items()):
                print(f"  {kind}: {path}")
    finally:
        if server is not None:
            server.stop()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading
    import urllib.request

    from .core.measure.campaign import default_profile
    from .telemetry import CampaignTelemetry
    from .telemetry.httpd import ObservatoryHub, TelemetryServer

    runner = (run_limewire_campaign if args.network == "limewire"
              else run_openft_campaign)
    population = default_profile(args.network, args.scale)
    config = CampaignConfig(seed=args.seed, duration_days=args.days)
    telemetry = CampaignTelemetry.for_directory(
        args.out, args.network, journal_interval_s=args.journal_interval,
        sample_every=args.sample_every)
    digest = None
    if args.verify:
        # deferred on purpose: devtools sits above core in the layer
        # DAG and only opt-in verification reaches up into it
        from .devtools.selfcheck import EventDigest
        digest = EventDigest()
        telemetry.kernel.on_event = digest.on_event

    hub = ObservatoryHub(title=f"{args.network} campaign")
    hub.set_status(network=args.network, seed=args.seed, days=args.days,
                   scale=args.scale)
    hub.add_campaign(args.network, telemetry)
    server = TelemetryServer(hub, host=args.host, port=args.port).start()
    print(f"serving {server.url} (dashboard; /metrics, /healthz, "
          f"/snapshot.json, /journal, /trace.json, /hotspots.json)")

    scraped = {"healthz": 0, "metrics": 0}
    stop_scraping = threading.Event()

    def scrape_loop() -> None:
        # the --verify scraper: hammer the endpoints while the campaign
        # runs so the digest comparison below covers concurrent reads
        while not stop_scraping.is_set():
            for route in ("healthz", "metrics"):
                try:
                    with urllib.request.urlopen(server.url + route,
                                                timeout=5) as response:
                        if response.status == 200:
                            scraped[route] += 1
                except OSError:
                    pass
            stop_scraping.wait(0.2)

    scraper = None
    if args.verify:
        scraper = threading.Thread(target=scrape_loop, daemon=True)
        scraper.start()
    try:
        print(f"running {args.network} campaign ({args.days:g} virtual "
              f"days, seed {args.seed}, scale {args.scale:g})...")
        result = runner(config, profile=population, telemetry=telemetry)
        written = telemetry.write_outputs(args.out, args.network)
        print(f"  {len(result.store)} responses collected")
        for kind, path in sorted(written.items()):
            print(f"  {kind}: {path}")
        if args.linger > 0:
            print(f"serving final state for {args.linger:g}s more "
                  f"at {server.url} ...")
            try:
                threading.Event().wait(args.linger)
            except KeyboardInterrupt:
                pass
    finally:
        stop_scraping.set()
        if scraper is not None:
            scraper.join(timeout=5)
        server.stop()

    if not args.verify:
        return 0
    print(f"verify: scraped /healthz x{scraped['healthz']}, "
          f"/metrics x{scraped['metrics']} during the run")
    if not scraped["healthz"] or not scraped["metrics"]:
        print("error: verify run finished before both endpoints were "
              "scraped; use a longer --days", file=sys.stderr)
        return 1
    from .devtools.selfcheck import EventDigest
    baseline_digest = EventDigest()
    baseline_telemetry = CampaignTelemetry.for_directory(
        args.out, f"{args.network}_serveroff",
        journal_interval_s=args.journal_interval,
        sample_every=args.sample_every)
    baseline_telemetry.kernel.on_event = baseline_digest.on_event
    print("verify: re-running the same campaign with the server off...")
    baseline = runner(config, profile=population,
                      telemetry=baseline_telemetry)
    digest_ok = digest.hexdigest() == baseline_digest.hexdigest()
    store_ok = (result.store.content_digest()
                == baseline.store.content_digest())
    print(f"  event digest: {'identical' if digest_ok else 'DIVERGED'}")
    print(f"  store sha256: {'identical' if store_ok else 'DIVERGED'}")
    return 0 if digest_ok and store_ok else 1


def _cmd_hotspots(args: argparse.Namespace) -> int:
    from .telemetry.profiler import HotspotReport

    if args.snapshot is not None:
        import json as _json
        if not args.snapshot.exists():
            print(f"error: snapshot {args.snapshot} does not exist",
                  file=sys.stderr)
            return 2
        report = HotspotReport.from_snapshot(
            _json.loads(args.snapshot.read_text(encoding="utf-8")))
    else:
        from .core.measure.campaign import default_profile
        from .telemetry import CampaignTelemetry
        runner = (run_limewire_campaign if args.network == "limewire"
                  else run_openft_campaign)
        population = default_profile(args.network, args.scale)
        config = CampaignConfig(seed=args.seed, duration_days=args.days)
        telemetry = CampaignTelemetry(sample_every=args.sample_every)
        print(f"profiling {args.network} campaign ({args.days:g} virtual "
              f"days, seed {args.seed}, scale {args.scale:g}, 1-in-"
              f"{args.sample_every} callback sampling)...")
        runner(config, profile=population, telemetry=telemetry)
        report = HotspotReport.from_registry(telemetry.registry)
    print(report.render(top=args.top))
    if args.json is not None:
        report.to_json(args.json)
        print(f"\nmachine-readable report -> {args.json}")
    return 0


def _find_repo_root(start: Optional[Path] = None) -> Path:
    """Nearest ancestor (of ``start`` or cwd) holding a pyproject.toml."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return current


def _changed_python_files(root: Path) -> Optional[List[Path]]:
    """Files changed vs HEAD plus untracked ones, or None outside git."""
    import subprocess

    commands = (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    names: List[str] = []
    for command in commands:
        try:
            out = subprocess.run(command, cwd=root, capture_output=True,
                                 text=True, check=True).stdout
        except (OSError, subprocess.CalledProcessError):
            return None
        names.extend(line.strip() for line in out.splitlines()
                     if line.strip())
    return sorted({root / name for name in names
                   if name.endswith(".py") and (root / name).exists()})


def _cmd_lint(args: argparse.Namespace) -> int:
    from .devtools.detlint import (BaselineError, lint_repo, load_config,
                                   render_sarif)

    root = args.root if args.root is not None else _find_repo_root()
    paths = [Path(p) for p in args.paths] or None
    if args.changed_only:
        changed = _changed_python_files(root)
        if changed is None:
            print("error: --changed-only needs a git checkout",
                  file=sys.stderr)
            return 2
        # only files the full walk would cover (src/<package>/): tests
        # and tooling scripts are out of scope for detlint
        config = load_config(root)
        package_root = root / config.src / config.package
        changed = [path for path in changed
                   if package_root in path.parents]
        if not changed:
            print("detlint: no python files changed vs HEAD, "
                  "nothing to lint")
            return 0
        paths = changed
    try:
        result = lint_repo(root, paths=paths,
                           use_cache=not args.no_cache,
                           partial=args.changed_only)
    except BaselineError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.sarif is not None:
        from .resilience import atomic_write_text
        atomic_write_text(args.sarif, render_sarif(result.findings))
        print(f"sarif log written to {args.sarif}")
    print(result.render(strict=args.strict))
    return result.exit_code(strict=args.strict)


def _cmd_doctor(args: argparse.Namespace) -> int:
    """Exit 0 = all healthy, 1 = damage found (or repaired), 2 = usage."""
    from .resilience import run_doctor

    report = run_doctor(args.paths, repair=args.repair)
    print(report.render())
    if not report.artifacts:
        return 2
    # detection-only runs signal damage via the exit code; a repair run
    # exits 0 when everything it found could be fixed
    if not report.damaged:
        return 0
    return 0 if args.repair and report.ok else 1


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    from .devtools.selfcheck import run_equivalence_check, run_selfcheck

    if args.seeds < 1:
        print("error: --seeds must be >= 1", file=sys.stderr)
        return 2
    if args.lock_order:
        from .devtools.selfcheck import run_lock_order_check

        report = run_lock_order_check(network=args.network,
                                      seed=args.base_seed,
                                      days=min(args.days, 0.05),
                                      scale=args.scale)
        print(report.render())
        return 0 if report.ok else 1
    seeds = tuple(range(args.base_seed, args.base_seed + args.seeds))
    print(f"selfcheck: {args.network}, seeds {list(seeds)}, "
          f"{args.days:g} virtual days per run, sanitizer "
          f"{'off' if args.no_sanitize else 'armed'}...")
    report = run_selfcheck(network=args.network, seeds=seeds,
                           days=args.days, scale=args.scale,
                           sanitize=not args.no_sanitize)
    print(report.render())
    ok = report.ok
    if args.equivalence:
        print("\nfast-path vs reference-path equivalence:")
        for seed in seeds:
            check = run_equivalence_check(
                network=args.network, seed=seed, days=args.days,
                scale=args.scale, sanitize=not args.no_sanitize)
            print(check.render())
            ok = ok and check.ok
    if args.shard_equivalence:
        from .devtools.selfcheck import run_shard_equivalence_check
        print("\nsharded kernel vs plain kernel equivalence:")
        for seed in seeds:
            shard_check = run_shard_equivalence_check(
                network=args.network, seed=seed,
                days=min(args.days, 0.05), scale=args.scale,
                sanitize=not args.no_sanitize)
            print(shard_check.render())
            ok = ok and shard_check.ok
    return 0 if ok else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats

    from .core.measure.campaign import default_profile

    if args.network == "limewire":
        runner = run_limewire_campaign
    else:
        runner = run_openft_campaign
    population = default_profile(args.network, args.scale)
    config = CampaignConfig(seed=args.seed, duration_days=args.days)
    print(f"profiling {args.network} campaign ({args.days:g} virtual "
          f"days, seed {args.seed}, scale {args.scale:g})...")
    profiler = cProfile.Profile()
    result = profiler.runcall(runner, config, profile=population)
    print(f"  {len(result.store)} responses collected\n")
    stats = pstats.Stats(profiler)
    rows = []
    for func, (_cc, ncalls, tottime, cumtime, _callers) in \
            stats.stats.items():  # type: ignore[attr-defined]
        rows.append((cumtime, tottime, ncalls,
                     pstats.func_std_string(func)))
    # primary key: cumulative time, descending.  Ties (and there are
    # many at 0.000) break on the qualified function name so the
    # listing is stable run to run.
    rows.sort(key=lambda row: (-row[0], row[3]))
    total = sum(row[1] for row in rows)
    print(f"{'cumtime':>10} {'tottime':>10} {'ncalls':>10}  function "
          f"(total {total:.3f}s, top {args.top} by cumulative time)")
    for cumtime, tottime, ncalls, name in rows[:args.top]:
        print(f"{cumtime:>10.4f} {tottime:>10.4f} {ncalls:>10d}  {name}")
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        stats.dump_stats(str(args.out))
        print(f"\nraw pstats dump -> {args.out}")
    return 0


def _render(store: MeasurementStore, table: str, days: float) -> str:
    if table == "t1":
        return reports.render_t1_summary([store], days)
    if table == "t2":
        return reports.render_t2_prevalence([store])
    if table == "t3":
        return reports.render_t3_top_malware(store)
    if table == "t4":
        rows = top_malware(store)
        top_strain = rows[0].name if rows else None
        return reports.render_t4_sources(store, top_strain=top_strain)
    if table == "t5":
        filters = [
            ExistingLimewireFilter.stale_blocklist(limewire_strains()),
            SizeBasedFilter.learn(store),
        ]
        return reports.render_t5_filters(evaluate_filters(filters, store))
    if table == "t6":
        return reports.render_t6_size_dictionary(store)
    if table == "f1":
        return reports.render_f1_rank_cdf(store)
    if table == "f2":
        return reports.render_f2_size_distribution(store)
    if table == "f3":
        return reports.render_f3_timeseries(store)
    if table == "f4":
        rows = top_malware(store)
        top_strain = rows[0].name if rows else None
        return reports.render_f4_host_cdf(store, top_strain)
    if table == "x1":
        return reports.render_x1_sample_census(store)
    if table == "x2":
        return reports.render_x2_availability(store)
    if table == "x3":
        return reports.render_x3_vendors(store)
    if table == "x4":
        return reports.render_x4_deployment(store)
    raise ValueError(f"unknown table {table!r}")


def _cmd_analyze(args: argparse.Namespace) -> int:
    if not args.store.exists():
        print(f"error: store {args.store} does not exist", file=sys.stderr)
        return 2
    store = MeasurementStore.load(args.store)
    tables = _TABLES if args.table == "all" else (args.table,)
    for index, table in enumerate(tables):
        if index:
            print()
        try:
            print(_render(store, table, args.days))
        except ValueError as error:
            print(f"({table} unavailable: {error})")
    return 0


def _cmd_filter_eval(args: argparse.Namespace) -> int:
    if not args.store.exists():
        print(f"error: store {args.store} does not exist", file=sys.stderr)
        return 2
    store = MeasurementStore.load(args.store)
    try:
        size_filter = SizeBasedFilter.learn(store, top_n=args.top_n,
                                            coverage=args.coverage)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    filters = [
        ExistingLimewireFilter.stale_blocklist(limewire_strains()),
        size_filter,
    ]
    print(reports.render_t5_filters(evaluate_filters(filters, store)))
    print(f"\nsize dictionary ({len(size_filter)} entries): "
          f"{sorted(size_filter.blocked_sizes)}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    if not args.store.exists():
        print(f"error: store {args.store} does not exist", file=sys.stderr)
        return 2
    from .core.export import export_all

    store = MeasurementStore.load(args.store)
    written = export_all(store, args.out)
    for experiment_id, path in sorted(written.items()):
        print(f"{experiment_id}: {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {"run": _cmd_run, "analyze": _cmd_analyze,
                "replicate": _cmd_replicate, "chaos": _cmd_chaos,
                "filter-eval": _cmd_filter_eval, "export": _cmd_export,
                "telemetry": _cmd_telemetry, "profile": _cmd_profile,
                "serve": _cmd_serve, "hotspots": _cmd_hotspots,
                "lint": _cmd_lint, "selfcheck": _cmd_selfcheck,
                "doctor": _cmd_doctor}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
