"""Crash-safe artifact IO: atomic writes and CRC32-framed journals.

Two write disciplines cover every artifact the pipeline produces:

* **Whole-file artifacts** (``BENCH_<rev>.json``, trace exports, SARIF
  logs, Prometheus textfiles) go through :func:`atomic_write_text` /
  :func:`atomic_write_bytes`: the bytes land in a same-directory temp
  file, are fsynced, and only then ``os.replace``d over the target.
  An interrupt at any byte offset leaves either the old file or the
  new one -- never a half-written hybrid.
* **Append-only journals** (replication checkpoints) use CRC32
  *frames*: each line is ``{"crc": "<8 hex>", "record": <payload>}``
  where the checksum covers the canonical serialization of the
  payload.  :func:`scan_frames` recovers such a file after a crash:
  a torn final line (the classic SIGKILL-mid-append) is truncated
  away, a corrupt interior record (bit rot, concurrent writer) is
  quarantined, and every committed record before and after survives.

Fault injection hooks are duck-typed (``apply_write`` /
``on_fsync``) so this module never imports the faults layer; the
chaotic-IO shim lives in :class:`repro.faults.injectors.HostIOFaults`.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

__all__ = ["FrameError", "FrameScan", "frame_line", "parse_frame",
           "scan_frames", "recover_frames", "atomic_write_bytes",
           "atomic_write_text", "DurableAppender"]


class FrameError(ValueError):
    """A line that is not a valid CRC32 frame."""


class _NullIO:
    """The no-faults IO hook: writes pass through untouched."""

    def apply_write(self, path: Path,
                    data: bytes) -> Tuple[bytes, Optional[BaseException]]:
        return data, None

    def on_fsync(self, path: Path) -> None:
        return None


_NULL_IO = _NullIO()


def _canonical(record: object) -> str:
    """The serialization the checksum covers (stable across processes)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def frame_line(record: object) -> str:
    """One journal line (no trailing newline) carrying ``record``.

    The CRC32 is computed over the canonical JSON of the payload, so a
    reader can verify integrity by re-serializing what it parsed.
    """
    body = _canonical(record)
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return _canonical({"crc": f"{crc:08x}", "record": record})


def parse_frame(line: str) -> object:
    """Decode and verify one frame line; raises :class:`FrameError`.

    Bare JSON objects (journals written before framing existed) pass
    through unverified -- there is no checksum to check, and refusing
    them would make every pre-existing checkpoint unreadable.
    """
    try:
        obj = json.loads(line)
    except ValueError as error:
        raise FrameError(f"not JSON: {error}") from None
    if not isinstance(obj, dict):
        raise FrameError(f"frame is not an object: {obj!r}")
    if set(obj) != {"crc", "record"}:
        return obj  # legacy unframed record
    body = _canonical(obj["record"])
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    if f"{crc:08x}" != obj["crc"]:
        raise FrameError(
            f"checksum mismatch: stored {obj['crc']}, computed {crc:08x}")
    return obj["record"]


@dataclass
class FrameScan:
    """What :func:`scan_frames` recovered from one journal file."""

    path: Path
    #: verified (or legacy-unframed) records, file order
    records: List[object] = field(default_factory=list)
    #: 1-based line numbers of corrupt interior records
    corrupt_lines: List[int] = field(default_factory=list)
    #: raw text of the corrupt lines (for quarantine files)
    corrupt_raw: List[str] = field(default_factory=list)
    #: bytes of torn final line that a repair would truncate
    torn_tail_bytes: int = 0
    #: byte offset the file is valid up to (truncation point)
    clean_end: int = 0
    #: records that carried no checksum (pre-framing journals)
    legacy_records: int = 0

    @property
    def healthy(self) -> bool:
        """True when a resume could consume the file as-is, losslessly."""
        return not self.corrupt_lines and self.torn_tail_bytes == 0


def scan_frames(path: Path) -> FrameScan:
    """Read every recoverable record of a framed JSONL file.

    Never raises on damage: a final line that does not parse is a torn
    tail (reported with its byte count), an interior line that does
    not parse or fails its checksum is a corrupt record (reported by
    line number), and everything verifiable is returned in order.  A
    missing file scans as empty and healthy.
    """
    scan = FrameScan(path=Path(path))
    try:
        data = Path(path).read_bytes()
    except OSError:
        return scan
    offset = 0
    # (line_start, raw_line) for every newline-terminated line, plus a
    # trailing fragment (no newline) which can only be a torn tail or
    # a complete final record whose newline the crash ate
    pieces: List[Tuple[int, bytes, bool]] = []
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            pieces.append((offset, data[offset:], False))
            break
        pieces.append((offset, data[offset:newline], True))
        offset = newline + 1
    scan.clean_end = 0
    for index, (start, raw, terminated) in enumerate(pieces):
        line = raw.decode("utf-8", errors="replace").strip()
        if not line:
            scan.clean_end = start + len(raw) + (1 if terminated else 0)
            continue
        last = index == len(pieces) - 1
        try:
            record = parse_frame(line)
        except FrameError:
            if last and not terminated:
                # torn tail: the writer died mid-line; everything
                # before this byte is intact.  A *terminated* bad line
                # cannot be a tear (its newline was written last) --
                # that is corruption, below.
                scan.torn_tail_bytes = len(data) - start
            else:
                scan.corrupt_lines.append(index + 1)
                scan.corrupt_raw.append(line)
            continue
        if _is_legacy(line):
            scan.legacy_records += 1
        scan.records.append(record)
        scan.clean_end = start + len(raw) + (1 if terminated else 0)
    return scan


def _is_legacy(line: str) -> bool:
    try:
        obj = json.loads(line)
    except ValueError:
        return False
    return isinstance(obj, dict) and set(obj) != {"crc", "record"}


def recover_frames(path: Path, repair: bool = False,
                   quarantine: Optional[Path] = None) -> FrameScan:
    """Scan ``path`` and, with ``repair``, make it healthy on disk.

    Repair truncates the torn tail in place and rewrites the file
    (atomically) without corrupt records, moving their raw lines to
    ``quarantine`` (default ``<path>.quarantine``) so no bytes are
    silently destroyed.  The returned scan describes the file as it
    was *before* the repair.
    """
    path = Path(path)
    scan = scan_frames(path)
    if not repair or scan.healthy or not path.exists():
        return scan
    if scan.corrupt_lines:
        target = Path(quarantine) if quarantine is not None else (
            path.with_name(path.name + ".quarantine"))
        with target.open("a", encoding="utf-8") as handle:
            for line in scan.corrupt_raw:
                handle.write(line + "\n")
        # rebuild from verified records: legacy rows are re-framed, so
        # one repair upgrades the whole file to checksummed frames
        text = "".join(frame_line(record) + "\n"
                       for record in scan.records)
        atomic_write_text(path, text)
    elif scan.torn_tail_bytes:
        with path.open("r+b") as handle:
            handle.truncate(scan.clean_end)
            handle.flush()
            os.fsync(handle.fileno())
    return scan


def atomic_write_bytes(path: Path, data: bytes, io=None,
                       fsync: bool = True) -> Path:
    """Write ``data`` to ``path`` so an interrupt never leaves a torn file.

    The bytes go to a same-directory temp file first (rename across
    filesystems is not atomic), are flushed and fsynced, and then
    ``os.replace`` the target in one step.  On any failure the temp
    file is removed and the previous target content survives intact.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    hook = io if io is not None else _NULL_IO
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        payload, error = hook.apply_write(path, data)
        with tmp.open("wb") as handle:
            handle.write(payload)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        hook.on_fsync(path)
        if error is not None:
            raise error
        os.replace(tmp, path)
    finally:
        try:
            tmp.unlink()
        except OSError:
            pass
    return path


def atomic_write_text(path: Path, text: str, encoding: str = "utf-8",
                      io=None, fsync: bool = True) -> Path:
    """Text counterpart of :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode(encoding), io=io,
                              fsync=fsync)


class DurableAppender:
    """Append-only JSONL writer with per-record durability.

    Every appended record is flushed and fsynced before the call
    returns, so a committed record survives a SIGKILL issued the very
    next instant; a kill *during* the append leaves at most one torn
    final line, which :func:`scan_frames` truncates on recovery.
    ``framed=True`` wraps records in CRC32 frames (checkpoints);
    ``framed=False`` keeps the raw row format (run journals, whose
    readers expect row fields at the top level).

    The ``io`` hook is the chaotic-IO injection point: it may truncate
    the bytes actually written (torn write) or raise after a partial
    write (disk full), and gets a callback around fsync (slow fsync).
    """

    def __init__(self, path: Path, framed: bool = True, io=None,
                 fsync: bool = True) -> None:
        self.path = Path(path)
        self.framed = framed
        self.fsync = fsync
        self._io = io if io is not None else _NULL_IO
        self._handle = None
        #: appends that failed (injected or real IO errors)
        self.errors = 0

    def _open(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # binary append: an injected torn write must shorten the
            # file by exact bytes, not by re-encoded characters
            self._handle = self.path.open("ab")
            # a crash can eat just the final newline of a complete
            # record; appending straight after would weld two records
            # into one corrupt line, so guard with a newline (blank
            # lines are skipped by every reader)
            try:
                if self.path.stat().st_size > 0:
                    with self.path.open("rb") as peek:
                        peek.seek(-1, os.SEEK_END)
                        if peek.read(1) != b"\n":
                            self._handle.write(b"\n")
                            self._handle.flush()
            except OSError:
                pass
        return self._handle

    def append(self, record: object) -> None:
        """Durably append one record; IO errors propagate after counting."""
        line = (frame_line(record) if self.framed
                else _canonical(record)) + "\n"
        handle = self._open()
        payload, error = self._io.apply_write(self.path,
                                              line.encode("utf-8"))
        try:
            handle.write(payload)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
            self._io.on_fsync(self.path)
            if error is not None:
                raise error
        except Exception:
            self.errors += 1
            raise

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "DurableAppender":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
