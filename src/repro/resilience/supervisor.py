"""The supervised worker pool: hang-proof process fan-out.

:func:`supervised_map` is the hardened sibling of
:func:`repro.core.parallel.parallel_map`.  The plain pool trusts its
workers; this one assumes they can wedge.  Every task runs in its own
OS process which **heartbeats over its result pipe** while computing;
the parent multiplexes all pipes with
:func:`multiprocessing.connection.wait` and enforces two watchdogs:

* **stall**: no heartbeat for ``stall_timeout_s`` -- the worker is
  wedged (or was SIGSTOPped, or the host faulted it);
* **deadline**: the attempt has run longer than ``deadline_s`` of wall
  clock, heartbeats or not.

A tripped watchdog SIGKILLs the worker and **requeues** the task with
exponential backoff; after ``requeues`` kills the task degrades to a
caller-supplied failure outcome instead of blocking the run -- the
escalation path ``run_replications`` routes into its existing
retry-then-quarantine machinery.  Results come back **in input
order**, so a supervised fan-out merges bit-identically to a plain or
serial one.

Host-fault *interventions* (hang/stall injections declared by a
:class:`~repro.faults.plan.FaultPlan`) are applied inside the worker
shim before the user function runs, which is what lets the test suite
prove the watchdogs work without ever wedging itself: the supervisor
is the only component that can cancel an injected hang.

When worker processes cannot be started at all (sandboxes without
``fork``), the pool degrades to a plain in-process loop: supervision
and interventions are skipped -- correctness never depends on the
pool, exactly as with ``parallel_map``.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

__all__ = ["HostIntervention", "SupervisionPolicy", "SupervisedKill",
           "supervised_map"]


@dataclass(frozen=True)
class HostIntervention:
    """One injected host fault applied inside the worker shim."""

    #: "hang" sleeps then exits without a result (the supervisor must
    #: kill it); "stall" sleeps then runs the task normally
    kind: str
    seconds: float

    def __post_init__(self) -> None:
        if self.kind not in ("hang", "stall"):
            raise ValueError(f"unknown intervention kind {self.kind!r}")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")


@dataclass(frozen=True)
class SupervisionPolicy:
    """Watchdog thresholds and retry discipline for one supervised run."""

    #: wall-clock budget per attempt; overruns are killed
    deadline_s: float = 300.0
    #: max silence between heartbeats before the stall watchdog kills
    stall_timeout_s: float = 60.0
    #: worker heartbeat cadence (must undercut the stall timeout)
    heartbeat_s: float = 1.0
    #: kill-and-requeue attempts per task before degrading to failure
    requeues: int = 1
    #: exponential backoff between requeues: base * 2^(kills-1), capped
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 30.0
    #: grace given to ``join`` after a SIGKILL
    kill_grace_s: float = 5.0

    def __post_init__(self) -> None:
        if self.deadline_s <= 0 or self.stall_timeout_s <= 0:
            raise ValueError("deadline_s and stall_timeout_s must be "
                             "positive")
        if not 0 < self.heartbeat_s <= self.stall_timeout_s / 2:
            raise ValueError(
                f"heartbeat_s ({self.heartbeat_s!r}) must be positive and "
                f"at most half the stall timeout "
                f"({self.stall_timeout_s!r}): a single delayed beat must "
                f"not read as a stall")
        if self.requeues < 0:
            raise ValueError("requeues must be >= 0")


@dataclass(frozen=True)
class SupervisedKill:
    """One watchdog kill, for reports and telemetry."""

    item: object
    kills: int
    reason: str
    requeued: bool


class _Task:
    """Mutable per-item supervision state (parent side only)."""

    __slots__ = ("index", "item", "kills", "ready_at")

    def __init__(self, index: int, item: object) -> None:
        self.index = index
        self.item = item
        self.kills = 0
        self.ready_at = 0.0


class _Running:
    """One live worker process and its pipe."""

    __slots__ = ("task", "process", "conn", "started", "last_beat",
                 "done", "result", "error")

    def __init__(self, task: _Task, process, conn, now: float) -> None:
        self.task = task
        self.process = process
        self.conn = conn
        self.started = now
        self.last_beat = now
        self.done = False
        self.result = None
        self.error: Optional[str] = None


def _heartbeat_loop(conn, stop, interval_s: float) -> None:
    """Worker-side beat thread: ping the result pipe until stopped."""
    while not stop.wait(interval_s):
        try:
            conn.send(("hb",))
        except (OSError, ValueError):  # parent gone or pipe torn down
            return


def _worker_main(conn, fn, item, intervention: Optional[HostIntervention],
                 heartbeat_s: float) -> None:
    """Run one task in a child process, heartbeating over ``conn``.

    The beat thread is joined before the result is sent: two threads
    must never interleave writes on one pipe.  An injected hang sleeps
    without ever beating and exits resultless -- from the parent's
    viewpoint indistinguishable from a genuinely wedged worker, which
    is the point.
    """
    import threading
    if intervention is not None:
        time.sleep(intervention.seconds)
        if intervention.kind == "hang":
            return  # no result, no heartbeat: the watchdogs' problem
    stop = threading.Event()
    beater = threading.Thread(target=_heartbeat_loop,
                              args=(conn, stop, heartbeat_s), daemon=True)
    beater.start()
    try:
        result = fn(item)
    except BaseException:
        stop.set()
        beater.join()
        _send_quiet(conn, ("err", traceback.format_exc()))
        return
    stop.set()
    beater.join()
    _send_quiet(conn, ("done", result))


def _send_quiet(conn, message) -> None:
    try:
        conn.send(message)
    except (OSError, ValueError):  # parent died first; nothing to tell
        pass


def supervised_map(fn: Callable, items: Sequence,
                   workers: int = 1,
                   policy: Optional[SupervisionPolicy] = None,
                   intervention: Optional[Callable] = None,
                   failure: Optional[Callable] = None,
                   on_result: Optional[Callable] = None,
                   on_kill: Optional[Callable] = None,
                   ) -> List:
    """Map ``fn`` over ``items`` under watchdog supervision.

    ``fn`` and items must be picklable (workers are real processes).
    ``intervention(item)`` may return a :class:`HostIntervention` to
    apply inside the worker (fault injection).  ``failure(item,
    reason)`` builds the degraded result for a task whose every
    attempt was killed; without it the pool raises instead.
    ``on_result(item, result)`` fires as results land (completion
    order -- consumers that need determinism must key on the item, as
    the checkpoint journal does).  ``on_kill(kill)`` observes every
    :class:`SupervisedKill`.  Returns results in input order.

    Worker exceptions propagate as ``RuntimeError`` carrying the child
    traceback, after every other worker is killed -- matching
    ``parallel_map``'s fail-fast contract.
    """
    policy = policy or SupervisionPolicy()
    items = list(items)
    if not items:
        return []
    try:
        import multiprocessing
        import multiprocessing.connection
        ctx = multiprocessing.get_context()
    except (ImportError, NotImplementedError, OSError):
        return _serial(fn, items, on_result)

    unset = object()
    results: List[object] = [unset] * len(items)
    pending: List[_Task] = [_Task(i, item) for i, item in enumerate(items)]
    running: dict = {}

    def finalize(run: _Running) -> None:
        run.conn.close()
        run.process.join(policy.kill_grace_s)

    def kill(run: _Running, reason: str) -> None:
        task = run.task
        task.kills += 1
        try:
            run.process.kill()
        except (OSError, AttributeError):
            pass
        finalize(run)
        del running[task.index]
        requeued = task.kills <= policy.requeues
        if on_kill is not None:
            on_kill(SupervisedKill(item=task.item, kills=task.kills,
                                   reason=reason, requeued=requeued))
        if requeued:
            backoff = min(policy.backoff_cap_s,
                          policy.backoff_base_s * (2 ** (task.kills - 1)))
            task.ready_at = time.monotonic() + backoff
            pending.append(task)
        else:
            if failure is None:
                _abort(running, finalize)
                raise RuntimeError(
                    f"supervised worker for {task.item!r} was killed "
                    f"{task.kills} time(s) ({reason}) with no failure "
                    f"handler installed")
            result = failure(task.item, reason)
            results[task.index] = result
            if on_result is not None:
                on_result(task.item, result)

    try:
        while pending or running:
            now = time.monotonic()
            # launch ready tasks into free slots (input order)
            launchable = [task for task in pending if task.ready_at <= now]
            while launchable and len(running) < max(1, workers):
                task = launchable.pop(0)
                pending.remove(task)
                act = intervention(task.item) if intervention else None
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, fn, task.item, act,
                          policy.heartbeat_s),
                    daemon=True)
                try:
                    process.start()
                except (OSError, ValueError, RuntimeError):
                    # host cannot fork: degrade to unsupervised inline
                    # execution for this task (hangs cannot be injected
                    # or caught down here)
                    parent_conn.close()
                    child_conn.close()
                    result = fn(task.item)
                    results[task.index] = result
                    if on_result is not None:
                        on_result(task.item, result)
                    continue
                child_conn.close()
                running[task.index] = _Running(task, process, parent_conn,
                                               time.monotonic())

            if not running:
                # everything pending is backing off; sleep to the
                # earliest ready time
                if pending:
                    wake = min(task.ready_at for task in pending)
                    time.sleep(max(0.0, min(wake - time.monotonic(),
                                            policy.backoff_cap_s)))
                continue

            # multiplex every live result pipe
            tick = max(0.01, policy.heartbeat_s / 2.0)
            ready = multiprocessing.connection.wait(
                [run.conn for run in running.values()], timeout=tick)
            by_conn = {run.conn: run for run in running.values()}
            for conn in ready:
                run = by_conn.get(conn)
                if run is None:
                    continue
                _drain_messages(run)

            now = time.monotonic()
            for index in list(running):
                run = running[index]
                if run.done:
                    results[run.task.index] = run.result
                    if on_result is not None:
                        on_result(run.task.item, run.result)
                    finalize(run)
                    del running[index]
                elif run.error is not None:
                    _abort({i: r for i, r in running.items() if i != index},
                           finalize)
                    finalize(run)
                    raise RuntimeError(
                        f"supervised worker for {run.task.item!r} "
                        f"raised:\n{run.error}")
                elif run.process.exitcode is not None:
                    kill(run, f"worker died "
                              f"(exitcode {run.process.exitcode})")
                elif now - run.last_beat > policy.stall_timeout_s:
                    kill(run, f"no heartbeat for "
                              f"{policy.stall_timeout_s:g}s (stall)")
                elif now - run.started > policy.deadline_s:
                    kill(run, f"deadline {policy.deadline_s:g}s exceeded")
    except BaseException:
        _abort(running, finalize)
        raise

    assert all(result is not unset for result in results)
    return results


def _drain_messages(run: _Running) -> None:
    """Consume every queued message on one worker's pipe."""
    while True:
        try:
            if not run.conn.poll():
                return
            message = run.conn.recv()
        except (EOFError, OSError):
            return  # pipe closed; the exitcode check picks it up
        run.last_beat = time.monotonic()
        if message[0] == "done":
            run.done = True
            run.result = message[1]
            return
        if message[0] == "err":
            run.error = message[1]
            return
        # "hb": the beat itself already refreshed last_beat


def _abort(running: dict, finalize) -> None:
    """Kill every remaining worker (fail-fast cleanup path)."""
    for run in list(running.values()):
        try:
            run.process.kill()
        except (OSError, AttributeError):
            pass
        finalize(run)
    running.clear()


def _serial(fn, items, on_result) -> List:
    results = []
    for item in items:
        result = fn(item)
        if on_result is not None:
            on_result(item, result)
        results.append(result)
    return results
