"""Resilient execution substrate: durable artifacts, supervised workers.

The paper's month-long crawls survived flaky hosts and partial data;
this package gives the *reproduction pipeline itself* the same
property.  Three stdlib-only layers, importing nothing above them:

* :mod:`~repro.resilience.store` -- crash-safe artifact IO.  Atomic
  whole-file writes (tmp + ``os.replace``), CRC32-checksummed JSONL
  frames for append-only journals, and a recovery scanner that
  truncates torn tails and quarantines corrupt interior records
  instead of raising.  A SIGKILL at any byte offset of a write loses
  at most the record being written, never a committed one.
* :mod:`~repro.resilience.supervisor` -- a supervised worker pool.
  Each task runs in its own OS process that heartbeats over its
  result pipe; the parent kills workers that stop beating (stall
  watchdog) or overrun their wall-clock deadline, requeues them with
  exponential backoff, and degrades to a reportable failure outcome
  once retries are exhausted -- a permanently hung worker can never
  block the run forever.
* :mod:`~repro.resilience.doctor` -- the offline repair tool behind
  ``repro-study doctor``: verifies on-disk artifacts, reports what a
  resume would recover, and (with ``repair=True``) truncates torn
  tails and quarantines corrupt records.

Host faults (:class:`~repro.faults.plan.WorkerHang`, ``WorkerStall``,
``TornWrite``, ``DiskFull``, ``SlowFsync``) are *declared* in
:mod:`repro.faults` and enforced here through duck-typed hooks, so
this package stays at the bottom of the layer DAG.
"""

from .doctor import ArtifactReport, DoctorReport, run_doctor
from .store import (FrameScan, atomic_write_bytes, atomic_write_text,
                    frame_line, parse_frame, scan_frames, DurableAppender,
                    recover_frames)
from .supervisor import (HostIntervention, SupervisionPolicy, SupervisedKill,
                         supervised_map)

__all__ = [
    "atomic_write_bytes", "atomic_write_text", "frame_line", "parse_frame",
    "scan_frames", "recover_frames", "FrameScan", "DurableAppender",
    "SupervisionPolicy", "HostIntervention", "SupervisedKill",
    "supervised_map",
    "ArtifactReport", "DoctorReport", "run_doctor",
]
