"""``repro-study doctor``: verify and repair on-disk artifacts.

The doctor answers the question an operator has after a crash, an OOM
kill or a full disk: *what survived, and what would a resume see?*
It walks checkpoint journals, run journals and whole-file JSON
artifacts, classifies each by content (not by name), and reports
committed records, torn tails, corrupt lines and stale atomic-write
temp files.  With ``repair=True`` it makes the damage safe: torn
tails are truncated, corrupt records are moved to a ``.quarantine``
side file (never silently destroyed), and abandoned temp files are
removed.  Healthy artifacts are never touched.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from .store import FrameScan, recover_frames

__all__ = ["ArtifactReport", "DoctorReport", "run_doctor"]

#: file suffixes the directory walk considers artifacts
_JSONL_SUFFIX = ".jsonl"
_JSON_SUFFIX = ".json"


@dataclass
class ArtifactReport:
    """Findings for one on-disk artifact."""

    path: Path
    #: "checkpoint" | "journal" | "json" | "stale-tmp"
    kind: str
    healthy: bool
    #: records a resume would recover (jsonl kinds)
    records: int = 0
    #: committed replication seeds (checkpoints only)
    seeds: List[int] = field(default_factory=list)
    fingerprint: Optional[str] = None
    torn_tail_bytes: int = 0
    corrupt_records: int = 0
    legacy_records: int = 0
    repaired: bool = False
    note: str = ""

    def render(self) -> str:
        state = "ok" if self.healthy else (
            "repaired" if self.repaired else "DAMAGED")
        parts = [f"{self.path} [{self.kind}] {state}"]
        if self.kind in ("checkpoint", "journal"):
            parts.append(f"{self.records} record"
                         f"{'s' if self.records != 1 else ''}")
        if self.seeds:
            parts.append(f"seeds {self.seeds} recoverable")
        if self.torn_tail_bytes:
            action = "truncated" if self.repaired else "would truncate"
            parts.append(f"torn tail {self.torn_tail_bytes}B ({action})")
        if self.corrupt_records:
            action = "quarantined" if self.repaired else "would quarantine"
            parts.append(f"{self.corrupt_records} corrupt ({action})")
        if self.legacy_records:
            parts.append(f"{self.legacy_records} unchecksummed legacy")
        if self.note:
            parts.append(self.note)
        return "  " + ": ".join((parts[0], ", ".join(parts[1:]))
                                if len(parts) > 1 else (parts[0],))


@dataclass
class DoctorReport:
    """All artifacts examined in one doctor run."""

    artifacts: List[ArtifactReport] = field(default_factory=list)
    repair: bool = False

    @property
    def ok(self) -> bool:
        """True when nothing needs (or needed) repair."""
        return all(artifact.healthy or artifact.repaired
                   for artifact in self.artifacts)

    @property
    def damaged(self) -> List[ArtifactReport]:
        return [artifact for artifact in self.artifacts
                if not artifact.healthy]

    def render(self) -> str:
        if not self.artifacts:
            return "doctor: no artifacts found"
        lines = [f"doctor: examined {len(self.artifacts)} artifact"
                 f"{'s' if len(self.artifacts) != 1 else ''}"
                 f"{' (repair mode)' if self.repair else ''}"]
        lines.extend(artifact.render() for artifact in self.artifacts)
        broken = self.damaged
        if not broken:
            lines.append("all artifacts healthy; a resume loses nothing")
        elif self.repair:
            fixed = sum(1 for artifact in broken if artifact.repaired)
            summary = f"{fixed}/{len(broken)} damaged artifact" \
                      f"{'s' if len(broken) != 1 else ''} repaired"
            if fixed < len(broken):
                summary += " (the rest must be regenerated)"
            else:
                summary += "; resume is now safe"
            lines.append(summary)
        else:
            lines.append(f"{len(broken)} artifact"
                         f"{'s' if len(broken) != 1 else ''} damaged; "
                         f"rerun with --repair to fix")
        return "\n".join(lines)


def run_doctor(paths: Sequence[Path], repair: bool = False) -> DoctorReport:
    """Examine (and with ``repair``, fix) every artifact under ``paths``.

    Files are classified by content; directories are walked one level
    of glob deep for ``*.jsonl`` / ``*.json`` artifacts plus stale
    ``*.tmp.<pid>`` files abandoned by an interrupted atomic write.
    """
    report = DoctorReport(repair=repair)
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for child in sorted(path.rglob("*")):
                if child.is_file() and _classify_name(child):
                    report.artifacts.append(_examine(child, repair))
        elif path.exists():
            report.artifacts.append(_examine(path, repair))
        else:
            report.artifacts.append(ArtifactReport(
                path=path, kind="missing", healthy=False,
                note="no such file"))
    return report


def _classify_name(path: Path) -> Optional[str]:
    name = path.name
    if ".tmp." in name:
        return "stale-tmp"
    if name.endswith(_JSONL_SUFFIX):
        return "jsonl"
    if name.endswith(_JSON_SUFFIX):
        return "json"
    return None


def _examine(path: Path, repair: bool) -> ArtifactReport:
    kind = _classify_name(path)
    if kind == "stale-tmp":
        if repair:
            try:
                path.unlink()
            except OSError:
                pass
        return ArtifactReport(
            path=path, kind="stale-tmp", healthy=False, repaired=repair,
            note="abandoned atomic-write temp file"
                 + ("" if repair else " (repair deletes it)"))
    if kind == "json":
        return _examine_json(path)
    return _examine_jsonl(path, repair)


def _examine_json(path: Path) -> ArtifactReport:
    try:
        json.loads(path.read_text("utf-8"))
    except (OSError, ValueError) as error:
        return ArtifactReport(
            path=path, kind="json", healthy=False,
            note=f"unparseable ({error}); regenerate it -- atomic "
                 f"writers make this impossible for new artifacts")
    return ArtifactReport(path=path, kind="json", healthy=True)


def _examine_jsonl(path: Path, repair: bool) -> ArtifactReport:
    scan = recover_frames(path, repair=repair)
    checkpoint = _checkpoint_header(scan)
    artifact = ArtifactReport(
        path=path,
        kind="checkpoint" if checkpoint is not None else "journal",
        healthy=scan.healthy,
        records=len(scan.records),
        torn_tail_bytes=scan.torn_tail_bytes,
        corrupt_records=len(scan.corrupt_lines),
        legacy_records=scan.legacy_records,
        repaired=repair and not scan.healthy)
    if checkpoint is not None:
        artifact.fingerprint = checkpoint
        artifact.seeds = sorted(
            int(record["seed"]) for record in scan.records
            if isinstance(record, dict) and record.get("kind") == "seed")
        artifact.records = len(artifact.seeds)
        artifact.note = (f"resume recovers {len(artifact.seeds)} "
                         f"completed seed"
                         f"{'s' if len(artifact.seeds) != 1 else ''}")
    return artifact


def _checkpoint_header(scan: FrameScan) -> Optional[str]:
    if not scan.records:
        return None
    first = scan.records[0]
    if isinstance(first, dict) and first.get("kind") == "header":
        return str(first.get("fingerprint", ""))
    return None
