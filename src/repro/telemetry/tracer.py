"""Causal flight recorder: span chains as Chrome trace-event JSON.

The span layer (:mod:`repro.telemetry.spans`) already records every
query -> response -> download -> scan chain with explicit parents; this
module renders those chains into the Chrome trace-event format, so a
campaign's causality loads directly into ``chrome://tracing`` or
Perfetto (``ui.perfetto.dev``, *Open trace file*) and any infection can
be followed back to the query that caused it.

Layout: one process per campaign (``pid``), one named track per span
kind (``tid``: query / response / download / scan).  Every span becomes
a complete-duration event (``ph: "X"``) whose timestamps are **virtual
microseconds** -- virtual time is deterministic, so two runs of the
same seed serialize to byte-identical JSON (wall-clock fields are
deliberately excluded).  Parent -> child edges become flow events
(``ph: "s"`` / ``"f"``) keyed by the child's span id, drawing the
causal arrows between tracks.

Sampling keeps the file bounded without ever losing an infection:
every chain whose scan came back dirty (or whose download carried a
malware attribute) is always exported, and clean chains are kept
1-in-``sample_every`` by root span id -- a deterministic rule, no RNG.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Set

from .spans import Span, SpanTracer

__all__ = ["CATEGORY_TIDS", "build_trace", "write_trace",
           "infected_roots", "chain_roots"]

#: Track ids per span kind; unknown kinds land on track 0.
CATEGORY_TIDS: Dict[str, int] = {
    "query": 1, "response": 2, "download": 3, "scan": 4}

#: One virtual second in trace-event time units (microseconds).
_US = 1e6


def chain_roots(tracer: SpanTracer) -> Dict[int, int]:
    """Map every span id to the id of its chain's root span.

    Spans are recorded in start order, so a parent always precedes its
    children and one forward pass resolves every chain; a dangling
    ``parent_id`` (parent dropped at capacity) makes the span its own
    root rather than losing it.
    """
    roots: Dict[int, int] = {}
    for span in tracer.spans():
        if span.parent_id is not None and span.parent_id in roots:
            roots[span.span_id] = roots[span.parent_id]
        else:
            roots[span.span_id] = span.span_id
    return roots


def _is_infected(span: Span) -> bool:
    """Did this span record malware (dirty scan / malicious download)?"""
    attributes = span.attributes
    if span.name == "scan" and attributes.get("clean") is False:
        return True
    return bool(attributes.get("malware"))


def infected_roots(tracer: SpanTracer,
                   roots: Optional[Dict[int, int]] = None) -> Set[int]:
    """Root span ids of every chain that recorded an infection."""
    roots = roots if roots is not None else chain_roots(tracer)
    return {roots[span.span_id] for span in tracer.spans()
            if _is_infected(span)}


def _sampled_roots(tracer: SpanTracer, sample_every: int,
                   roots: Dict[int, int]) -> Set[int]:
    """Roots to export: all infected chains + 1-in-N of the rest."""
    if sample_every < 1:
        raise ValueError(
            f"sample_every must be >= 1, got {sample_every!r}")
    keep = infected_roots(tracer, roots)
    phase = 1 % sample_every  # span ids start at 1
    for root in sorted(set(roots.values())):
        if root % sample_every == phase:
            keep.add(root)
    return keep


def _ts(virtual_seconds: float) -> float:
    """Virtual seconds -> trace microseconds (plain scaling, no clock)."""
    return virtual_seconds * _US


def build_trace(tracer: SpanTracer, sample_every: int = 1,
                pid: int = 1, process_name: str = "campaign") -> dict:
    """Render the tracer's chains as a Chrome trace-event JSON object.

    Returns the full top-level dict (``{"traceEvents": [...], ...}``);
    callers serialize it themselves or go through :func:`write_trace`.
    The event list is deterministic: metadata first, then spans in
    start order, each followed by the flow edge from its parent.
    """
    roots = chain_roots(tracer)
    keep = _sampled_roots(tracer, sample_every, roots)
    events: List[dict] = [
        {"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
         "args": {"name": process_name}},
    ]
    for kind in sorted(CATEGORY_TIDS, key=CATEGORY_TIDS.get):
        events.append({"ph": "M", "pid": pid, "tid": CATEGORY_TIDS[kind],
                       "name": "thread_name", "args": {"name": kind}})
    exported = 0
    for span in tracer.spans():
        if roots[span.span_id] not in keep:
            continue
        exported += 1
        tid = CATEGORY_TIDS.get(span.name, 0)
        end = (span.end_virtual if span.end_virtual is not None
               else span.start_virtual)
        args = {"span_id": span.span_id, "parent_id": span.parent_id}
        args.update(sorted(span.attributes.items()))
        events.append({
            "ph": "X", "pid": pid, "tid": tid,
            "name": span.name, "cat": span.name,
            "ts": _ts(span.start_virtual),
            # zero-duration spans render invisibly; floor at 1 us
            "dur": max(_ts(end - span.start_virtual), 1.0),
            "args": args,
        })
        parent = (tracer.get(span.parent_id)
                  if span.parent_id is not None else None)
        if parent is not None:
            # flow edge parent -> child, id = child span id (unique and
            # deterministic); parents always start no later than their
            # children in virtual time, so s precedes f
            flow = {"cat": "causal", "name": "causal",
                    "pid": pid, "id": span.span_id}
            events.append({**flow, "ph": "s",
                           "tid": CATEGORY_TIDS.get(parent.name, 0),
                           "ts": _ts(parent.start_virtual)})
            events.append({**flow, "ph": "f", "bp": "e", "tid": tid,
                           "ts": _ts(span.start_virtual)})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "virtual (simulated seconds as microseconds)",
            "spans_recorded": len(tracer),
            "spans_exported": exported,
            "spans_dropped_at_capacity": tracer.dropped,
            "chains_total": len(set(roots.values())),
            "chains_exported": len(keep),
            "chains_infected": len(infected_roots(tracer, roots)),
            "sample_every": sample_every,
        },
    }


def write_trace(tracer: SpanTracer, path: Path, sample_every: int = 1,
                pid: int = 1, process_name: str = "campaign") -> dict:
    """Serialize :func:`build_trace` to ``path``; returns the summary.

    ``sort_keys`` plus the deterministic event order make the file
    byte-identical across runs of the same seed.
    """
    trace = build_trace(tracer, sample_every=sample_every, pid=pid,
                        process_name=process_name)
    # atomic: an interrupted export leaves the previous trace intact
    # instead of a torn JSON file no viewer can load
    from ..resilience import atomic_write_text
    atomic_write_text(Path(path),
                      json.dumps(trace, sort_keys=True, indent=None,
                                 separators=(",", ":")) + "\n")
    return trace["otherData"]
