"""The run journal: periodic JSONL progress snapshots for a live run.

The paper's authors could watch their instrumented clients collect
responses for a month; a :class:`RunJournal` gives a campaign the same
property.  Installed on a simulator it appends one JSON line per
virtual ``interval_s`` -- virtual time, wall time, events processed,
events/sec since the previous snapshot, plus whatever ``probes`` the
campaign wires in (responses collected, downloads in flight, scan
cache hit rate, top malware so far) -- flushed and fsynced after every
write (a :class:`~repro.resilience.store.DurableAppender`) so ``tail
-f`` on the file shows live progress, a SIGKILL costs at most the
snapshot being written, and the finished file is a machine-readable
record of how the run unfolded.  Rows stay bare JSON objects (not
CRC32 frames): the dashboard's journal tailer reads fields at the top
level, and a torn final line is already tolerated on every read path.

Probe callables must never kill a campaign: a raising probe records
``None`` for its field and bumps the journal's error counter instead.

The snapshot cadence defaults to *auto*: ``interval_s=None`` resolves
at :meth:`RunJournal.install` time to horizon/100 clamped to [1s,
3600s], so a 0.1-virtual-day run still journals ~100 lines instead of
two.  Pass ``interval_s=3600.0`` explicitly to reproduce the fixed
hourly cadence of pre-auto runs (journal snapshots are scheduler
events, so the cadence is part of a run's event digest).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Dict, Optional

from ..resilience import DurableAppender
from .registry import MetricRegistry

__all__ = ["RunJournal"]

Probe = Callable[[], object]


class RunJournal:
    """Periodic JSONL snapshots of a running simulation."""

    #: clamp bounds for the auto-derived snapshot interval (seconds)
    AUTO_MIN_S = 1.0
    AUTO_MAX_S = 3600.0
    #: horizon divisor for the auto interval: ~100 lines per run
    AUTO_DIVISOR = 100.0

    def __init__(self, path: Path, interval_s: Optional[float] = None,
                 probes: Optional[Dict[str, Probe]] = None,
                 registry: Optional[MetricRegistry] = None) -> None:
        if interval_s is not None and interval_s <= 0:
            raise ValueError(
                f"interval_s must be positive, got {interval_s!r}")
        self.path = Path(path)
        #: None = auto (resolved against the horizon at install time)
        self.interval_s = interval_s
        self.probes: Dict[str, Probe] = dict(probes or {})
        self.snapshots_written = 0
        self.probe_errors = 0
        self._appender: Optional[DurableAppender] = None
        self._started_wall: Optional[float] = None
        self._last_wall: Optional[float] = None
        self._last_events = 0
        self._snapshot_counter = None
        if registry is not None:
            self._snapshot_counter = registry.counter(
                "journal_snapshots_total",
                "Journal snapshot lines written for this run.")

    def add_probe(self, name: str, probe: Probe) -> None:
        """Add one named field computed at every snapshot."""
        self.probes[name] = probe

    def resolve_interval(self, horizon_s: Optional[float] = None) -> float:
        """The effective snapshot cadence in virtual seconds.

        An explicit ``interval_s`` wins unchanged; in auto mode the
        cadence is ``horizon_s / AUTO_DIVISOR`` clamped to
        ``[AUTO_MIN_S, AUTO_MAX_S]`` (hourly when no horizon is known).
        """
        if self.interval_s is not None:
            return self.interval_s
        if horizon_s is None or horizon_s <= 0:
            return self.AUTO_MAX_S
        return min(self.AUTO_MAX_S,
                   max(self.AUTO_MIN_S, horizon_s / self.AUTO_DIVISOR))

    def install(self, sim, until: Optional[float] = None) -> None:
        """Schedule periodic snapshots on ``sim`` (label ``journal``).

        ``until`` bounds the schedule the same way ``Simulator.every``
        does; campaigns pass their drain horizon so the journal never
        keeps an otherwise-finished queue alive.  In auto mode the
        cadence resolves here against ``until - sim.now`` and is pinned
        on ``interval_s`` so later readers see the value actually
        scheduled.
        """
        self._open()
        horizon = until - sim.now if until is not None else None
        self.interval_s = self.resolve_interval(horizon)
        sim.every(self.interval_s, lambda: self.snapshot(sim),
                  label="journal", until=until)

    def _open(self) -> None:
        if self._appender is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # a fresh journal per run (the appender itself only ever
            # appends, so a re-run must clear the previous run's rows)
            try:
                self.path.unlink()
            except OSError:
                pass
            self._appender = DurableAppender(self.path, framed=False)
            self._started_wall = time.perf_counter()
            self._last_wall = self._started_wall

    def _events_processed(self, sim) -> int:
        # mid-run, sim.events_processed lags (it accumulates when
        # run_until returns); the kernel telemetry's live dict does not
        telemetry = getattr(sim, "telemetry", None)
        if telemetry is not None:
            return telemetry.events_seen
        return sim.events_processed

    def snapshot(self, sim, final: bool = False) -> dict:
        """Write one snapshot line and return the row."""
        self._open()
        now_wall = time.perf_counter()
        events = self._events_processed(sim)
        wall_delta = now_wall - (self._last_wall or now_wall)
        event_delta = events - self._last_events
        row: Dict[str, object] = {
            "virtual_time": sim.now,
            "wall_time_s": round(now_wall - (self._started_wall
                                             or now_wall), 6),
            "events_processed": events,
            "events_per_sec": (event_delta / wall_delta
                               if wall_delta > 0 else 0.0),
            "queue_depth": len(sim.queue),
        }
        if final:
            row["final"] = True
        for name, probe in self.probes.items():
            try:
                row[name] = probe()
            except Exception:  # a broken probe must not kill the run
                row[name] = None
                self.probe_errors += 1
        assert self._appender is not None
        self._appender.append(row)
        self.snapshots_written += 1
        if self._snapshot_counter is not None:
            self._snapshot_counter.inc()
        self._last_wall = now_wall
        self._last_events = events
        return row

    def close(self, sim=None) -> None:
        """Write a final snapshot (when ``sim`` given) and close the file."""
        if sim is not None:
            self.snapshot(sim, final=True)
        if self._appender is not None:
            self._appender.close()
            self._appender = None
