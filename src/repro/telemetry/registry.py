"""Typed metric instruments and the registry that owns them.

Three instrument kinds, deliberately mirroring the Prometheus data
model so the export is a straight rendering:

* :class:`Counter` -- monotonically increasing totals;
* :class:`Gauge` -- point-in-time values (queue depth, virtual time);
* :class:`Histogram` -- observations bucketed at fixed boundaries
  (callback wall time, download delays).

Every instrument may declare label names; ``labels(*values)`` returns a
cached child so the hot path is one dict lookup plus a float add --
cheap enough to leave enabled everywhere (``benchmarks/baseline.py``
measures the overhead).  A :class:`MetricRegistry` get-or-creates
instruments by name (re-registration with a different kind or label set
is an error, and the first registration must carry help text so every
exported family renders ``# HELP`` + ``# TYPE``), renders the
Prometheus text format, and round-trips
through plain-dict snapshots so per-worker registries from a process
pool can be merged deterministically into a parent (counters and
histograms sum; gauges keep the max).

A process-global default registry is available through
:func:`get_registry` / :func:`set_registry` for code that wants metrics
without threading a registry around; campaign runs use their own
registry per run so replications never share instruments.
"""

from __future__ import annotations

import re
import warnings
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry",
           "DEFAULT_BUCKETS", "OVERFLOW_LABEL", "get_registry",
           "set_registry"]

#: Label value that absorbs samples past an instrument's cardinality cap.
OVERFLOW_LABEL = "_overflow_"

#: Default histogram boundaries (seconds): microseconds through 1s,
#: tuned for event-callback and scan wall times.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1,
    0.5, 1.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    """Escape per the Prometheus text exposition format."""
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_value(value: float) -> str:
    """Render ints without a trailing ``.0`` (matches promtool output)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Instrument:
    """Shared name/help/label plumbing; subclasses define the value."""

    kind = "untyped"

    #: per-instrument cap on distinct label-value children; set by the
    #: owning :class:`MetricRegistry`, None means unbounded.  A metric
    #: whose label values track population identifiers would otherwise
    #: grow without limit (the failure mode the constant delivery label
    #: in :mod:`repro.simnet.transport` exists to prevent).
    max_cardinality: Optional[int] = None

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self._children: Dict[Tuple[str, ...], "_Instrument"] = {}

    def labels(self, *values: str) -> "_Instrument":
        """The cached child for one label-value combination.

        Once an instrument holds :attr:`max_cardinality` distinct
        children, further *new* combinations collapse into a single
        ``_overflow_`` child (existing combinations keep resolving to
        their own child), and a RuntimeWarning fires once per
        instrument -- the totals stay right while the label explosion
        is both bounded and loud.
        """
        if not self.label_names:
            raise ValueError(f"{self.name} declares no labels")
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name} wants {len(self.label_names)} label "
                f"value(s), got {len(values)}")
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            limit = self.max_cardinality
            if limit is not None and len(self._children) >= limit:
                key = (OVERFLOW_LABEL,) * len(self.label_names)
                child = self._children.get(key)
                if child is None:
                    warnings.warn(
                        f"metric {self.name} exceeded its label "
                        f"cardinality cap ({limit}); new label "
                        f"combinations are folded into "
                        f"{OVERFLOW_LABEL!r}", RuntimeWarning,
                        stacklevel=2)
                    child = self._make_child()
                    self._children[key] = child
                return child
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self) -> "_Instrument":
        raise NotImplementedError

    def _check_unlabelled(self) -> None:
        if self.label_names:
            raise ValueError(
                f"{self.name} is labelled; use .labels(...) first")

    def samples(self) -> Iterator[Tuple[Tuple[str, ...], "_Instrument"]]:
        """(label values, leaf instrument) pairs, children sorted."""
        if self.label_names:
            for key in sorted(self._children):
                yield key, self._children[key]
        else:
            yield (), self


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, label_names)
        self._value = 0.0

    def _make_child(self) -> "Counter":
        return Counter(self.name, self.help)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self._check_unlabelled()
        self._value += amount

    @property
    def value(self) -> float:
        """Current total (sum of children for labelled counters)."""
        if self.label_names:
            return sum(child._value for child in self._children.values())
        return self._value


class Gauge(_Instrument):
    """A point-in-time value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, label_names)
        self._value = 0.0

    def _make_child(self) -> "Gauge":
        return Gauge(self.name, self.help)

    def set(self, value: float) -> None:
        """Replace the current value."""
        self._check_unlabelled()
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the current value by ``amount``."""
        self._check_unlabelled()
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the current value by ``-amount``."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current value (labelled gauges have per-child values only)."""
        if self.label_names:
            raise ValueError(f"{self.name} is labelled; read a child")
        return self._value


class Histogram(_Instrument):
    """Observations counted into fixed, ascending bucket boundaries.

    Boundaries are upper-inclusive (Prometheus ``le`` semantics): an
    observation exactly on a boundary lands in that boundary's bucket.
    An implicit ``+Inf`` bucket catches everything beyond the last
    boundary.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"{name}: buckets must be non-empty, ascending, unique")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, self.help, buckets=self.buckets)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._check_unlabelled()
        self._counts[bisect_left(self.buckets, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        """Number of observations."""
        if self.label_names:
            return sum(child._count for child in self._children.values())
        return self._count

    @property
    def sum(self) -> float:
        """Sum of observed values."""
        if self.label_names:
            return sum(child._sum for child in self._children.values())
        return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, +Inf last."""
        self._check_unlabelled()
        return list(self._counts)


class MetricRegistry:
    """Named instruments with get-or-create semantics and export.

    ``max_label_cardinality`` caps how many distinct label-value
    children each labelled instrument may grow (see
    :meth:`_Instrument.labels`); pass None to disable the guard.
    """

    def __init__(self,
                 max_label_cardinality: Optional[int] = 1000) -> None:
        if max_label_cardinality is not None and max_label_cardinality < 1:
            raise ValueError(
                f"max_label_cardinality must be positive or None, "
                f"got {max_label_cardinality!r}")
        self.max_label_cardinality = max_label_cardinality
        self._metrics: Dict[str, _Instrument] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[_Instrument]:
        return iter(self._metrics.values())

    def get(self, name: str) -> Optional[_Instrument]:
        """The instrument registered under ``name``, if any."""
        return self._metrics.get(name)

    def metric_names(self) -> List[str]:
        """All registered names, in registration order."""
        return list(self._metrics)

    def _get_or_create(self, cls, name: str, help: str,
                       label_names: Sequence[str], **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if (type(existing) is not cls
                    or existing.label_names != tuple(label_names)):
                raise ValueError(
                    f"{name} already registered as {existing.kind} with "
                    f"labels {existing.label_names}")
            return existing
        if not help:
            # every registered family must render a # HELP line, so the
            # /metrics body always parses under the Prometheus text
            # format; looking up an existing instrument needs no help
            raise ValueError(
                f"{name}: help text is required when registering a new "
                f"instrument")
        instrument = cls(name, help, label_names, **kwargs)
        instrument.max_cardinality = self.max_label_cardinality
        self._metrics[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        """Get-or-create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        """Get-or-create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """Get-or-create a :class:`Histogram` with fixed ``buckets``."""
        histogram = self._get_or_create(Histogram, name, help, labels,
                                        buckets=buckets)
        if histogram.buckets != tuple(float(b) for b in buckets):
            raise ValueError(f"{name} already registered with different "
                             f"buckets {histogram.buckets}")
        return histogram

    # -- export -------------------------------------------------------------
    def render_prometheus(self) -> str:
        """The Prometheus text exposition format, metrics sorted by name."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            # every family emits both comment lines unconditionally:
            # registration rejects empty help, so the body is always
            # parseable under the Prometheus text-format rules
            lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for label_values, leaf in metric.samples():
                pairs = ", ".join(
                    f'{label}="{_escape_label_value(value)}"'
                    for label, value in zip(metric.label_names,
                                            label_values))
                suffix = "{" + pairs + "}" if pairs else ""
                if isinstance(leaf, Histogram):
                    lines.extend(self._render_histogram(
                        name, metric.label_names, label_values, leaf))
                else:
                    lines.append(
                        f"{name}{suffix} {_format_value(leaf.value)}")
        return "\n".join(lines) + "\n" if lines else ""

    @staticmethod
    def _render_histogram(name: str, label_names: Tuple[str, ...],
                          label_values: Tuple[str, ...],
                          histogram: Histogram) -> List[str]:
        pairs = [f'{label}="{_escape_label_value(value)}"'
                 for label, value in zip(label_names, label_values)]

        def with_le(bound: str) -> str:
            return "{" + ", ".join(pairs + [f'le="{bound}"']) + "}"

        suffix = "{" + ", ".join(pairs) + "}" if pairs else ""
        lines = []
        cumulative = 0
        for bound, count in zip(histogram.buckets,
                                histogram.bucket_counts()):
            cumulative += count
            lines.append(f"{name}_bucket{with_le(_format_value(bound))} "
                         f"{cumulative}")
        lines.append(f"{name}_bucket{with_le('+Inf')} {histogram._count}")
        lines.append(f"{name}_sum{suffix} "
                     f"{_format_value(histogram._sum)}")
        lines.append(f"{name}_count{suffix} {histogram._count}")
        return lines

    # -- snapshots and merging ---------------------------------------------
    def snapshot(self) -> dict:
        """A plain-dict (picklable, JSON-able) copy of every value."""
        metrics = []
        for name, metric in self._metrics.items():
            entry: dict = {"name": name, "kind": metric.kind,
                           "help": metric.help,
                           "labels": list(metric.label_names)}
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            samples = []
            for label_values, leaf in metric.samples():
                if isinstance(leaf, Histogram):
                    value: object = {"counts": list(leaf._counts),
                                     "sum": leaf._sum,
                                     "count": leaf._count}
                else:
                    value = leaf._value
                samples.append([list(label_values), value])
            entry["samples"] = samples
            metrics.append(entry)
        return {"metrics": metrics}

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold one :meth:`snapshot` into this registry.

        Counters and histograms add; gauges keep the maximum (there is
        no meaningful sum of point-in-time values across workers).
        Merging the same snapshots in the same order always produces
        the same registry, which is what makes parallel replication
        telemetry deterministic.
        """
        for entry in snapshot["metrics"]:
            kind, name = entry["kind"], entry["name"]
            labels = entry["labels"]
            if kind == "counter":
                metric: _Instrument = self.counter(name, entry["help"],
                                                   labels)
            elif kind == "gauge":
                metric = self.gauge(name, entry["help"], labels)
            elif kind == "histogram":
                metric = self.histogram(name, entry["help"], labels,
                                        buckets=entry["buckets"])
            else:
                raise ValueError(f"unknown instrument kind {kind!r}")
            for label_values, value in entry["samples"]:
                leaf = metric.labels(*label_values) if labels else metric
                if kind == "counter":
                    leaf._value += value
                elif kind == "gauge":
                    leaf._value = max(leaf._value, value)
                else:
                    assert isinstance(leaf, Histogram)
                    if len(value["counts"]) != len(leaf._counts):
                        raise ValueError(
                            f"{name}: bucket count mismatch in snapshot")
                    for index, count in enumerate(value["counts"]):
                        leaf._counts[index] += count
                    leaf._sum += value["sum"]
                    leaf._count += value["count"]


_default_registry = MetricRegistry()


def get_registry() -> MetricRegistry:
    """The process-global default registry."""
    return _default_registry


def set_registry(registry: MetricRegistry) -> MetricRegistry:
    """Swap the process-global default; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
