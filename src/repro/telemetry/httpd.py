"""Live observability plane: a read-only HTTP server over telemetry.

The paper's authors could *watch* their instrumented clients collect
responses; :class:`TelemetryServer` gives a running campaign the same
property over plain HTTP, stdlib only:

========================  ==============================================
``/``                     zero-dependency auto-refreshing HTML dashboard
``/metrics``              Prometheus text format (scrapeable)
``/healthz``              liveness JSON
``/snapshot.json``        merged registry snapshot + latest journal rows
``/dashboard.json``       the dashboard's pre-digested state
``/journal``              safe tail of the JSONL run journal(s)
``/trace.json``           Chrome trace-event export of the span chains
``/hotspots.json``        per-label kernel hotspot report
========================  ==============================================

Determinism contract -- the server must be invisible to the run:

* it never schedules simulator events, never mutates a campaign
  registry (every render merges *snapshots* into a throwaway registry),
  and never writes anything;
* it reads no wall clock, so ``detlint --strict`` needs no new
  baseline entry for this module;
* a campaign's event digest and store sha256 are bit-identical with
  the server on or off (asserted by ``repro-study serve --verify``,
  the integration tests and the ``bench_observability`` leg).

Handlers race the simulation thread only through the GIL: a registry
snapshot taken mid-mutation can raise ``RuntimeError`` (dict changed
size during iteration), which the hub absorbs by retrying; after
:data:`_SNAPSHOT_RETRIES` misses the source is skipped for that
request rather than crashing the scrape.

An :class:`ObservatoryHub` is the aggregation point the server renders
from.  It serves one live :class:`~repro.telemetry.runtime.
CampaignTelemetry` bundle just as happily as a replication fan-out:
``run_replications`` records each finished worker's registry snapshot
under its seed, and every render merges live bundles first, then
recorded snapshots in ascending seed order -- the same deterministic
merge order the offline ``<network>_merged_metrics.prom`` uses.
"""

from __future__ import annotations

import html
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .registry import MetricRegistry

__all__ = ["ObservatoryHub", "TelemetryServer", "tail_journal"]

#: snapshot attempts per live registry before a request skips it
_SNAPSHOT_RETRIES = 8

#: default bytes read from the end of a journal file per tail
_TAIL_MAX_BYTES = 256 * 1024


def tail_journal(path: Path, limit: int = 50,
                 max_bytes: int = _TAIL_MAX_BYTES) -> List[dict]:
    """The last ``limit`` well-formed rows of a JSONL journal.

    Tolerates a writer mid-line: only the final ``max_bytes`` are read,
    a first line that may have been cut by the seek is dropped, and any
    line that does not parse as a JSON object (most likely the last,
    still being written) is skipped.  A missing file is an empty tail,
    not an error -- replication journals appear as workers start.
    """
    try:
        with Path(path).open("rb") as handle:
            handle.seek(0, 2)
            size = handle.tell()
            start = max(0, size - max_bytes)
            handle.seek(start)
            data = handle.read()
    except OSError:
        return []
    lines = data.decode("utf-8", errors="replace").split("\n")
    if start > 0:
        lines = lines[1:]  # the seek may have landed mid-record
    rows: List[dict] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except ValueError:
            continue  # partial write in progress
        if isinstance(row, dict):
            rows.append(row)
    return rows[-limit:] if limit > 0 else rows


class ObservatoryHub:
    """Thread-safe, read-only aggregation point the server renders from.

    Sources are registered once (cheap, lock-guarded) and *read* on
    every request; nothing here holds simulator state.  Keys passed to
    :meth:`record_snapshot` must be mutually sortable (replication
    seeds are ints) -- renders merge recorded snapshots in ascending
    key order so the output is deterministic.
    """

    def __init__(self, title: str = "repro-study") -> None:
        self.title = title
        self._lock = threading.Lock()
        #: (name, CampaignTelemetry) live bundles, registration order
        self._campaigns: List[Tuple[str, object]] = []
        #: key -> registry snapshot (finished replication workers)
        self._snapshots: Dict[object, dict] = {}
        #: (name, path) JSONL journals to tail
        self._journals: List[Tuple[str, Path]] = []
        #: static facts shown on the dashboard (network, seed, ...)
        self._status: Dict[str, object] = {}

    # -- registration -------------------------------------------------------
    def add_campaign(self, name: str, telemetry) -> None:
        """Serve a live :class:`CampaignTelemetry` bundle."""
        with self._lock:
            self._campaigns.append((name, telemetry))
            journal = getattr(telemetry, "journal", None)
            if journal is not None:
                self._journals.append((name, Path(journal.path)))

    def add_journal(self, name: str, path: Path) -> None:
        """Tail a journal file that no live bundle owns (replications)."""
        with self._lock:
            self._journals.append((name, Path(path)))

    def record_snapshot(self, key, snapshot: dict) -> None:
        """Record (or replace) one worker's registry snapshot."""
        with self._lock:
            self._snapshots[key] = snapshot

    def set_status(self, **fields) -> None:
        """Merge static facts into the dashboard status block."""
        with self._lock:
            self._status.update(fields)

    # -- reads --------------------------------------------------------------
    def _sources(self):
        with self._lock:
            return (list(self._campaigns),
                    sorted(self._snapshots.items()),
                    list(self._journals),
                    dict(self._status))

    @staticmethod
    def _live_snapshot(registry) -> Optional[dict]:
        """Snapshot a registry the simulation thread may be mutating."""
        for _ in range(_SNAPSHOT_RETRIES):
            try:
                return registry.snapshot()
            except RuntimeError:
                continue  # dict grew mid-iteration; take it again
        return None

    def merged_registry(self) -> MetricRegistry:
        """A throwaway registry holding every source, merged fresh.

        Live bundles are snapshotted at request time; recorded worker
        snapshots merge after them in ascending key order.  The merge
        never touches a source registry, which is what keeps the
        server strictly read-only.
        """
        campaigns, recorded, _journals, _status = self._sources()
        merged = MetricRegistry(max_label_cardinality=None)
        for _name, telemetry in campaigns:
            snapshot = self._live_snapshot(telemetry.registry)
            if snapshot is not None:
                merged.merge_snapshot(snapshot)
        for _key, snapshot in recorded:
            if snapshot:
                merged.merge_snapshot(snapshot)
        return merged

    def render_prometheus(self) -> str:
        """The merged ``/metrics`` body."""
        return self.merged_registry().render_prometheus()

    def journal_rows(self, limit: int = 50) -> Dict[str, List[dict]]:
        """Tail every registered journal; name -> rows (oldest first)."""
        _campaigns, _recorded, journals, _status = self._sources()
        return {name: tail_journal(path, limit=limit)
                for name, path in journals}

    def health(self) -> dict:
        """The cheap ``/healthz`` body (no registry merge)."""
        campaigns, recorded, journals, _status = self._sources()
        return {"status": "ok", "title": self.title,
                "campaigns": len(campaigns),
                "worker_snapshots": len(recorded),
                "journals": len(journals)}

    def snapshot(self) -> dict:
        """The ``/snapshot.json`` body: registry + latest journal rows."""
        _campaigns, _recorded, _journals, status = self._sources()
        latest = {name: rows[-1] for name, rows
                  in self.journal_rows(limit=1).items() if rows}
        return {"title": self.title, "status": status,
                "registry": self.merged_registry().snapshot(),
                "journals": latest}

    def dashboard_state(self) -> dict:
        """Pre-digested numbers for the HTML dashboard."""
        registry = self.merged_registry()
        _campaigns, _recorded, _journals, status = self._sources()

        def value(name: str) -> float:
            metric = registry.get(name)
            if metric is None:
                return 0.0
            try:
                return float(metric.value)
            except ValueError:  # labelled gauge: no scalar to show
                return 0.0

        latest = {name: rows[-1] for name, rows
                  in self.journal_rows(limit=1).items() if rows}
        events_per_sec = sum(
            float(row.get("events_per_sec") or 0.0)
            for row in latest.values())
        top: Dict[str, int] = {}
        for row in latest.values():
            for entry in row.get("top_malware") or ():
                if isinstance(entry, dict) and "name" in entry:
                    top[str(entry["name"])] = (
                        top.get(str(entry["name"]), 0)
                        + int(entry.get("responses") or 0))
        top_malware = [{"name": name, "responses": count}
                       for name, count in sorted(
                           top.items(),
                           key=lambda item: (-item[1], item[0]))[:5]]
        return {
            "title": self.title,
            "status": status,
            "virtual_time": value("sim_virtual_time_seconds"),
            "events_total": value("sim_events_total"),
            "events_per_sec": events_per_sec,
            "queue_depth": value("sim_queue_depth"),
            "queue_near_depth": value("sim_queue_near_depth"),
            "queue_wheel_depth": value("sim_queue_wheel_depth"),
            "downloads_in_flight": value("downloader_in_flight"),
            "infections": value("downloader_malicious_total"),
            "responses_collected": value("collector_responses_total"),
            "queries_issued": value("collector_queries_total"),
            "top_malware": top_malware,
            "journals": latest,
        }

    def trace(self, sample_every: int = 1) -> dict:
        """Chrome trace-event export across every live campaign."""
        from .tracer import build_trace
        campaigns, _recorded, _journals, _status = self._sources()
        events: List[dict] = []
        for index, (name, telemetry) in enumerate(campaigns):
            tracer = getattr(telemetry, "tracer", None)
            if tracer is None:
                continue
            part = build_trace(tracer, sample_every=sample_every,
                               pid=index + 1, process_name=name)
            events.extend(part["traceEvents"])
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": {"campaigns": len(campaigns)}}

    def hotspots(self) -> dict:
        """The ``/hotspots.json`` body."""
        from .profiler import HotspotReport
        return HotspotReport.from_registry(self.merged_registry()).to_dict()


_DASHBOARD_TEMPLATE = """<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>__TITLE__</title>
<noscript><meta http-equiv="refresh" content="2"></noscript>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 46rem; color: #222; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.5rem; }
table { border-collapse: collapse; width: 100%; }
td, th { padding: .25rem .6rem; border-bottom: 1px solid #ddd;
         text-align: left; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
small { color: #777; }
</style>
</head>
<body>
<h1>__TITLE__ <small>live campaign observatory</small></h1>
<table>
<tr><th>virtual time</th><td class="num" id="virtual_time">__VIRTUAL__</td></tr>
<tr><th>kernel events</th><td class="num" id="events_total">__EVENTS__</td></tr>
<tr><th>events / s (wall)</th><td class="num" id="events_per_sec">__EPS__</td></tr>
<tr><th>queue depth (near + wheel)</th><td class="num" id="queue">__QUEUE__</td></tr>
<tr><th>responses collected</th><td class="num" id="responses">__RESPONSES__</td></tr>
<tr><th>downloads in flight</th><td class="num" id="in_flight">__INFLIGHT__</td></tr>
<tr><th>infections (dirty scans)</th><td class="num" id="infections">__INFECTIONS__</td></tr>
</table>
<h2>top malware so far</h2>
<ol id="top_malware">__TOP__</ol>
<p><small>endpoints: <a href="metrics">/metrics</a> &middot;
<a href="snapshot.json">/snapshot.json</a> &middot;
<a href="journal">/journal</a> &middot;
<a href="trace.json">/trace.json</a> &middot;
<a href="hotspots.json">/hotspots.json</a> &middot;
<a href="healthz">/healthz</a> &mdash; refreshes every 2s</small></p>
<script>
function fmt(x, digits) {
  return Number(x).toLocaleString(undefined,
    {maximumFractionDigits: digits === undefined ? 0 : digits});
}
async function tick() {
  try {
    const response = await fetch('dashboard.json', {cache: 'no-store'});
    if (!response.ok) return;
    const d = await response.json();
    document.getElementById('virtual_time').textContent =
      fmt(d.virtual_time, 1) + ' s';
    document.getElementById('events_total').textContent =
      fmt(d.events_total);
    document.getElementById('events_per_sec').textContent =
      fmt(d.events_per_sec);
    document.getElementById('queue').textContent =
      fmt(d.queue_depth) + '  (' + fmt(d.queue_near_depth) + ' + '
      + fmt(d.queue_wheel_depth) + ')';
    document.getElementById('responses').textContent =
      fmt(d.responses_collected);
    document.getElementById('in_flight').textContent =
      fmt(d.downloads_in_flight);
    document.getElementById('infections').textContent =
      fmt(d.infections);
    const list = document.getElementById('top_malware');
    list.textContent = '';
    for (const row of d.top_malware) {
      const item = document.createElement('li');
      item.textContent = row.name + ' — ' + fmt(row.responses)
        + ' responses';
      list.appendChild(item);
    }
  } catch (e) { /* server mid-restart: try again next tick */ }
}
setInterval(tick, 2000);
tick();
</script>
</body>
</html>
"""


def _render_dashboard(state: dict) -> str:
    """Server-side fill of the template (works without JavaScript)."""
    top = "".join(
        f"<li>{html.escape(str(row['name']))} &mdash; "
        f"{row['responses']:,} responses</li>"
        for row in state["top_malware"]) or "<li><small>none yet</small></li>"
    queue = (f"{state['queue_depth']:,.0f}  "
             f"({state['queue_near_depth']:,.0f} + "
             f"{state['queue_wheel_depth']:,.0f})")
    page = _DASHBOARD_TEMPLATE
    for marker, text in (
            ("__TITLE__", html.escape(state["title"])),
            ("__VIRTUAL__", f"{state['virtual_time']:,.1f} s"),
            ("__EVENTS__", f"{state['events_total']:,.0f}"),
            ("__EPS__", f"{state['events_per_sec']:,.0f}"),
            ("__QUEUE__", queue),
            ("__RESPONSES__", f"{state['responses_collected']:,.0f}"),
            ("__INFLIGHT__", f"{state['downloads_in_flight']:,.0f}"),
            ("__INFECTIONS__", f"{state['infections']:,.0f}"),
            ("__TOP__", top)):
        page = page.replace(marker, text)
    return page


class _ObservatoryHandler(BaseHTTPRequestHandler):
    """Routes GET requests to hub reads; everything else is a 405."""

    server_version = "repro-observatory/1"
    protocol_version = "HTTP/1.1"

    @property
    def hub(self) -> ObservatoryHub:
        return self.server.hub  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # scrapes must not spam the campaign's stdout

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def _json(self, payload: dict, status: int = 200) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._send(status, body, "application/json; charset=utf-8")

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        query = parse_qs(parsed.query)
        try:
            if route == "/":
                body = _render_dashboard(self.hub.dashboard_state())
                self._send(200, body.encode("utf-8"),
                           "text/html; charset=utf-8")
            elif route == "/metrics":
                self._send(200,
                           self.hub.render_prometheus().encode("utf-8"),
                           "text/plain; version=0.0.4; charset=utf-8")
            elif route == "/healthz":
                self._json(self.hub.health())
            elif route == "/snapshot.json":
                self._json(self.hub.snapshot())
            elif route == "/dashboard.json":
                self._json(self.hub.dashboard_state())
            elif route == "/journal":
                limit = self._int_param(query, "n", 50)
                self._json({"journals": self.hub.journal_rows(limit=limit)})
            elif route == "/trace.json":
                sample = max(1, self._int_param(query, "sample", 1))
                self._json(self.hub.trace(sample_every=sample))
            elif route == "/hotspots.json":
                self._json(self.hub.hotspots())
            else:
                self._send(404, b"not found\n", "text/plain; charset=utf-8")
        except Exception as error:  # a scrape must never kill the server
            self._json({"status": "unavailable",
                        "error": f"{type(error).__name__}: {error}"},
                       status=503)

    @staticmethod
    def _int_param(query: dict, name: str, default: int) -> int:
        try:
            return int(query.get(name, [default])[0])
        except (TypeError, ValueError):
            return default


class TelemetryServer:
    """A daemon-threaded :class:`ThreadingHTTPServer` over one hub.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port` / :attr:`url` after :meth:`start`).  The server is a
    context manager; :meth:`stop` is idempotent and joins the accept
    thread so tests can assert clean shutdown.
    """

    def __init__(self, hub: ObservatoryHub, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.hub = hub
        self.host = host
        self._requested_port = port
        # start()/stop() and the running/port/url reads race: callers
        # hand ``self`` to scrape threads (cli's serve loop reads
        # ``server.url`` while the mainline may be tearing down), so
        # the server-handle fields go through one lock.
        self._state_lock = threading.Lock()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "TelemetryServer":
        """Bind and serve in a background daemon thread; returns self."""
        with self._state_lock:
            if self._httpd is not None:
                return self
            httpd = ThreadingHTTPServer((self.host, self._requested_port),
                                        _ObservatoryHandler)
            httpd.daemon_threads = True
            httpd.hub = self.hub  # type: ignore[attr-defined]
            thread = threading.Thread(
                target=httpd.serve_forever, name="telemetry-httpd",
                daemon=True)
            self._httpd = httpd
            self._thread = thread
        thread.start()
        return self

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        with self._state_lock:
            return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (the requested one before :meth:`start`)."""
        with self._state_lock:
            if self._httpd is not None:
                return self._httpd.server_address[1]
            return self._requested_port

    @property
    def url(self) -> str:
        """Base URL, trailing slash included."""
        return f"http://{self.host}:{self.port}/"

    def stop(self) -> None:
        """Shut down, close the socket and join the accept thread."""
        with self._state_lock:
            httpd, thread = self._httpd, self._thread
            self._httpd = self._thread = None
        if httpd is None:
            return
        # shutdown() blocks until serve_forever() returns -- never hold
        # the state lock across it or a concurrent port read deadlocks
        httpd.shutdown()
        if thread is not None:
            thread.join(timeout=5.0)
        httpd.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
