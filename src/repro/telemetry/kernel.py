"""Kernel instrumentation: what the event loop does with its time.

:class:`KernelTelemetry` is the object a :class:`~repro.simnet.kernel.
Simulator` accepts via its ``telemetry=`` argument.  The contract is
deliberately minimal so the simulator never imports this package:

* the simulator bumps ``label_counts[event.label]`` for **every**
  event -- a plain dict get/set, the cheapest possible hot path;
* every ``sample_every``-th event it wraps the callback in a
  ``perf_counter()`` pair and calls :meth:`observe_callback`, so
  per-label wall-time histograms cost almost nothing on average;
* at the end of each ``run_until`` it calls :meth:`flush`, which folds
  the raw dict into the registry's labelled counter and refreshes the
  queue-depth / heap-compaction / virtual-time gauges.

``label_counts`` holds cumulative totals; ``flush`` pushes deltas, so
flushing twice never double-counts.
"""

from __future__ import annotations

from typing import Dict, Optional

from .registry import MetricRegistry, get_registry

__all__ = ["KernelTelemetry"]

#: Histogram boundaries for sampled callback wall time (seconds).
CALLBACK_BUCKETS = (1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 1e-2, 0.1)


class KernelTelemetry:
    """Counters, sampled timings and gauges for one simulator."""

    def __init__(self, registry: Optional[MetricRegistry] = None,
                 sample_every: int = 64) -> None:
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every!r}")
        self.registry = registry if registry is not None else get_registry()
        self.sample_every = sample_every
        #: cumulative events per schedule label, written by the simulator
        self.label_counts: Dict[str, int] = {}
        #: simulator-owned sampling phase (events since the last sample)
        self.since_sample = 0
        self._flushed: Dict[str, int] = {}
        self._events = self.registry.counter(
            "sim_events_total",
            "Events processed by the kernel, per schedule label.",
            labels=("label",))
        self._callback_seconds = self.registry.histogram(
            "sim_callback_wall_seconds",
            "Sampled wall-clock time spent inside event callbacks.",
            labels=("label",), buckets=CALLBACK_BUCKETS)
        self._queue_depth = self.registry.gauge(
            "sim_queue_depth", "Live events waiting in the queue.")
        self._queue_dead = self.registry.gauge(
            "sim_queue_dead_events",
            "Cancelled events still occupying the scheduler.")
        self._compactions = self.registry.gauge(
            "sim_queue_compactions",
            "Bulk tombstone purges (heap rebuilds / whole-cell drops) "
            "since the queue was created.")
        self._cancelled = self.registry.gauge(
            "sim_queue_cancelled_total",
            "Events ever cancelled through the queue (monotonic; "
            "identical across scheduler twins).")
        # per-tier depth split of sim_queue_depth; both scheduler twins
        # expose the split (the heap reports everything as near) and
        # near + wheel == depth holds whichever twin a run used
        self._near_depth = self.registry.gauge(
            "sim_queue_near_depth",
            "Live events in the scheduler's near tier (the tiered "
            "queue's calendar window; all live events on the heap).")
        self._wheel_depth = self.registry.gauge(
            "sim_queue_wheel_depth",
            "Live events in far tiers (tiered queue's wheel levels "
            "and overflow; always 0 on the heap).")
        self._virtual_time = self.registry.gauge(
            "sim_virtual_time_seconds", "Current virtual clock reading.")
        self.registry.gauge(
            "sim_callback_sample_interval",
            "Denominator N of the 1-in-N callback wall-time sampling "
            "(hotspot reports scale sampled means by it).",
        ).set(sample_every)

    @property
    def events_seen(self) -> int:
        """Total events counted so far (live, mid-run accurate)."""
        return sum(self.label_counts.values())

    def observe_callback(self, label: str, seconds: float) -> None:
        """Record one sampled callback duration."""
        self._callback_seconds.labels(label).observe(seconds)

    def flush(self, sim) -> None:
        """Fold raw counts into the registry and refresh the gauges."""
        flushed = self._flushed
        for label, total in self.label_counts.items():
            delta = total - flushed.get(label, 0)
            if delta:
                self._events.labels(label).inc(delta)
                flushed[label] = total
        queue = sim.queue
        self._queue_depth.set(len(queue))
        self._queue_dead.set(queue.dead_events)
        self._compactions.set(queue.compactions)
        self._cancelled.set(getattr(queue, "cancelled_total", 0))
        # both scheduler twins expose the tier split directly; the heap
        # counts every live event as near so the near + wheel == depth
        # invariant holds on the reference twin too
        self._near_depth.set(queue.near_depth)
        self._wheel_depth.set(queue.wheel_depth)
        self._virtual_time.set(sim.now)
