"""Kernel hotspot report from the sampled callback wall-time histograms.

The kernel hook (:mod:`repro.telemetry.kernel`) times one in
``sample_every`` event callbacks with a ``perf_counter()`` pair and
buckets the readings into ``sim_callback_wall_seconds{label}``; the
simulator separately counts *every* event per label in
``sim_events_total{label}``.  A :class:`HotspotReport` combines the
two: the sampled mean per label, scaled by that label's full event
count, estimates where the campaign's wall time actually went -- a
per-label profile that costs ~1/64th of a real profiler and is always
on.

The report is a pure function of a :class:`MetricRegistry` (or a
registry snapshot, e.g. a served ``/snapshot.json`` body), so it works
on live runs, merged replication registries and saved files alike.
Surfaced as ``repro-study hotspots`` and the observability plane's
``/hotspots.json`` endpoint.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Tuple

from .registry import Histogram, MetricRegistry

__all__ = ["Hotspot", "HotspotReport"]

#: metric names the report is built from
CALLBACK_HISTOGRAM = "sim_callback_wall_seconds"
EVENTS_COUNTER = "sim_events_total"
SAMPLE_INTERVAL_GAUGE = "sim_callback_sample_interval"


@dataclass(frozen=True)
class Hotspot:
    """One schedule label's sampled wall-time profile."""

    label: str
    #: callbacks actually timed (1-in-N sampled)
    sampled: int
    #: wall seconds across the sampled callbacks
    sampled_total_s: float
    #: mean wall seconds per sampled callback
    mean_s: float
    #: bucket-interpolated percentiles of the sampled distribution
    p50_s: float
    p95_s: float
    #: every event the kernel ran under this label (not just sampled)
    events: int
    #: ``mean_s * events``: estimated total wall time attributed
    estimated_total_s: float
    #: share of the summed estimate across all labels
    share: float

    def to_dict(self) -> dict:
        """JSON-able row for the machine-readable dump."""
        return {
            "label": self.label, "sampled": self.sampled,
            "sampled_total_s": self.sampled_total_s,
            "mean_s": self.mean_s, "p50_s": self.p50_s,
            "p95_s": self.p95_s, "events": self.events,
            "estimated_total_s": self.estimated_total_s,
            "share": self.share,
        }


def _percentile(bounds: Tuple[float, ...], counts: List[int],
                count: int, q: float) -> float:
    """Quantile ``q`` from per-bucket counts (+Inf bucket last).

    Linear interpolation inside the winning bucket; the +Inf bucket
    reports the last finite boundary (there is nothing to interpolate
    toward).
    """
    if count <= 0:
        return 0.0
    target = q * count
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        previous = cumulative
        cumulative += bucket_count
        if cumulative >= target:
            if index >= len(bounds):  # +Inf bucket
                return bounds[-1]
            low = bounds[index - 1] if index > 0 else 0.0
            high = bounds[index]
            if bucket_count == 0:
                return high
            return low + (high - low) * (target - previous) / bucket_count
    return bounds[-1]


@dataclass(frozen=True)
class HotspotReport:
    """Per-label hotspots, heaviest estimated wall time first."""

    hotspots: Tuple[Hotspot, ...]
    sample_every: int
    #: sum of the per-label estimates (the denominator of ``share``)
    estimated_total_s: float

    @classmethod
    def from_registry(cls, registry: MetricRegistry) -> "HotspotReport":
        """Build the report from a registry holding the kernel metrics."""
        histogram = registry.get(CALLBACK_HISTOGRAM)
        events_counter = registry.get(EVENTS_COUNTER)
        interval_gauge = registry.get(SAMPLE_INTERVAL_GAUGE)
        sample_every = (int(interval_gauge.value)
                        if interval_gauge is not None
                        and interval_gauge.value >= 1 else 64)
        events_by_label: Dict[str, int] = {}
        if events_counter is not None and events_counter.label_names:
            for label_values, leaf in events_counter.samples():
                events_by_label[label_values[0]] = int(leaf._value)
        rows: List[Hotspot] = []
        if histogram is not None and histogram.label_names:
            for label_values, leaf in histogram.samples():
                assert isinstance(leaf, Histogram)
                label = label_values[0]
                sampled = leaf._count
                if not sampled:
                    continue
                total_s = leaf._sum
                mean_s = total_s / sampled
                counts = list(leaf._counts)
                events = events_by_label.get(label, 0)
                rows.append(Hotspot(
                    label=label, sampled=sampled,
                    sampled_total_s=total_s, mean_s=mean_s,
                    p50_s=_percentile(leaf.buckets, counts, sampled, 0.50),
                    p95_s=_percentile(leaf.buckets, counts, sampled, 0.95),
                    events=events,
                    estimated_total_s=mean_s * events,
                    share=0.0))
        total = sum(row.estimated_total_s for row in rows)
        rows = [replace(row, share=(row.estimated_total_s / total
                                    if total else 0.0))
                for row in rows]
        rows.sort(key=lambda row: (-row.estimated_total_s, row.label))
        return cls(hotspots=tuple(rows), sample_every=sample_every,
                   estimated_total_s=total)

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "HotspotReport":
        """Build from a registry snapshot dict (or a ``/snapshot.json``
        body, whose registry lives under the ``"registry"`` key)."""
        if "registry" in snapshot and "metrics" not in snapshot:
            snapshot = snapshot["registry"]
        registry = MetricRegistry(max_label_cardinality=None)
        registry.merge_snapshot(snapshot)
        return cls.from_registry(registry)

    def top(self, n: int) -> Tuple[Hotspot, ...]:
        """The ``n`` heaviest labels."""
        return self.hotspots[:n]

    def render(self, top: int = 15) -> str:
        """Fixed-width top-N table."""
        lines = [
            f"kernel hotspots (1-in-{self.sample_every} sampled callback "
            f"wall time, estimated total "
            f"{self.estimated_total_s:.3f}s)",
            f"{'label':<22s} {'events':>10s} {'sampled':>8s} "
            f"{'mean us':>9s} {'p50 us':>8s} {'p95 us':>8s} "
            f"{'est s':>8s} {'share':>6s}",
        ]
        for row in self.top(top):
            lines.append(
                f"{row.label:<22s} {row.events:>10d} {row.sampled:>8d} "
                f"{row.mean_s * 1e6:>9.1f} {row.p50_s * 1e6:>8.1f} "
                f"{row.p95_s * 1e6:>8.1f} {row.estimated_total_s:>8.3f} "
                f"{row.share:>6.1%}")
        if len(self.hotspots) > top:
            lines.append(f"... {len(self.hotspots) - top} more label(s)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Machine-readable dump (the ``/hotspots.json`` body)."""
        return {
            "sample_every": self.sample_every,
            "estimated_total_s": self.estimated_total_s,
            "hotspots": [row.to_dict() for row in self.hotspots],
        }

    def to_json(self, path) -> None:
        """Write :meth:`to_dict` as pretty JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2,
                                   sort_keys=True) + "\n",
                        encoding="utf-8")
