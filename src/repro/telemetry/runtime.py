"""The per-run telemetry bundle campaigns thread through their layers.

One :class:`CampaignTelemetry` owns everything observable about one
campaign run: a private :class:`MetricRegistry` (never shared between
replications, so per-seed numbers stay per-seed), a :class:`SpanTracer`
for query->response->download->scan chains, the kernel hook, and an
optional :class:`RunJournal`.  ``for_directory`` builds the
conventional on-disk layout::

    <dir>/<name>_journal.jsonl   written live during the run
    <dir>/<name>_metrics.prom    written by write_outputs()
    <dir>/<name>_spans.jsonl     written by write_outputs()
    <dir>/<name>_trace.json      written by write_outputs()

The bundle is cheap to construct and safe to ignore: every campaign
entry point takes ``telemetry=None`` and skips all of this when unset.
:meth:`CampaignTelemetry.serve` additionally exposes the bundle live
over HTTP (read-only; see :mod:`~repro.telemetry.httpd`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from .journal import RunJournal
from .kernel import KernelTelemetry
from .registry import MetricRegistry
from .spans import SpanTracer

__all__ = ["CampaignTelemetry"]


@dataclass
class CampaignTelemetry:
    """Registry + tracer + kernel hook + optional journal for one run."""

    registry: MetricRegistry = field(default_factory=MetricRegistry)
    tracer: SpanTracer = field(default_factory=SpanTracer)
    journal: Optional[RunJournal] = None
    #: sample one in N event callbacks for wall-time histograms
    sample_every: int = 64
    #: keep 1-in-N clean span chains in the trace export (infected
    #: chains are always kept; see repro.telemetry.tracer)
    trace_sample_every: int = 1
    kernel: KernelTelemetry = field(init=False)

    def __post_init__(self) -> None:
        self.kernel = KernelTelemetry(self.registry,
                                      sample_every=self.sample_every)

    @classmethod
    def for_directory(cls, directory: Path, name: str,
                      journal_interval_s: Optional[float] = None,
                      sample_every: int = 64,
                      trace_sample_every: int = 1) -> "CampaignTelemetry":
        """A bundle whose journal lives at ``<directory>/<name>_journal.jsonl``.

        ``journal_interval_s=None`` (the default) derives the snapshot
        cadence from the run horizon at install time; pass an explicit
        float to pin it (see :class:`RunJournal`).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        registry = MetricRegistry()
        journal = RunJournal(directory / f"{name}_journal.jsonl",
                             interval_s=journal_interval_s,
                             registry=registry)
        return cls(registry=registry, journal=journal,
                   sample_every=sample_every,
                   trace_sample_every=trace_sample_every)

    def write_outputs(self, directory: Path, name: str) -> Dict[str, Path]:
        """Dump metrics + spans + trace under ``directory``; returns the paths."""
        from .tracer import write_trace
        from ..resilience import atomic_write_text
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        metrics_path = directory / f"{name}_metrics.prom"
        atomic_write_text(metrics_path, self.registry.render_prometheus())
        spans_path = directory / f"{name}_spans.jsonl"
        self.tracer.to_jsonl(spans_path)
        trace_path = directory / f"{name}_trace.json"
        write_trace(self.tracer, trace_path,
                    sample_every=self.trace_sample_every,
                    process_name=name)
        written = {"metrics": metrics_path, "spans": spans_path,
                   "trace": trace_path}
        if self.journal is not None:
            written["journal"] = self.journal.path
        return written

    def serve(self, host: str = "127.0.0.1", port: int = 0,
              name: str = "campaign"):
        """Expose this bundle live over HTTP; returns the started server.

        The server is read-only and off the hot path (see
        :mod:`~repro.telemetry.httpd`); callers own ``stop()``.
        """
        from .httpd import ObservatoryHub, TelemetryServer
        hub = ObservatoryHub(title=name)
        hub.add_campaign(name, self)
        return TelemetryServer(hub, host=host, port=port).start()
