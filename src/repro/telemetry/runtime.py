"""The per-run telemetry bundle campaigns thread through their layers.

One :class:`CampaignTelemetry` owns everything observable about one
campaign run: a private :class:`MetricRegistry` (never shared between
replications, so per-seed numbers stay per-seed), a :class:`SpanTracer`
for query->response->download->scan chains, the kernel hook, and an
optional :class:`RunJournal`.  ``for_directory`` builds the
conventional on-disk layout::

    <dir>/<name>_journal.jsonl   written live during the run
    <dir>/<name>_metrics.prom    written by write_outputs()
    <dir>/<name>_spans.jsonl     written by write_outputs()

The bundle is cheap to construct and safe to ignore: every campaign
entry point takes ``telemetry=None`` and skips all of this when unset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from .journal import RunJournal
from .kernel import KernelTelemetry
from .registry import MetricRegistry
from .spans import SpanTracer

__all__ = ["CampaignTelemetry"]


@dataclass
class CampaignTelemetry:
    """Registry + tracer + kernel hook + optional journal for one run."""

    registry: MetricRegistry = field(default_factory=MetricRegistry)
    tracer: SpanTracer = field(default_factory=SpanTracer)
    journal: Optional[RunJournal] = None
    #: sample one in N event callbacks for wall-time histograms
    sample_every: int = 64
    kernel: KernelTelemetry = field(init=False)

    def __post_init__(self) -> None:
        self.kernel = KernelTelemetry(self.registry,
                                      sample_every=self.sample_every)

    @classmethod
    def for_directory(cls, directory: Path, name: str,
                      journal_interval_s: float = 3600.0,
                      sample_every: int = 64) -> "CampaignTelemetry":
        """A bundle whose journal lives at ``<directory>/<name>_journal.jsonl``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        registry = MetricRegistry()
        journal = RunJournal(directory / f"{name}_journal.jsonl",
                             interval_s=journal_interval_s,
                             registry=registry)
        return cls(registry=registry, journal=journal,
                   sample_every=sample_every)

    def write_outputs(self, directory: Path, name: str) -> Dict[str, Path]:
        """Dump metrics + spans under ``directory``; returns the paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        metrics_path = directory / f"{name}_metrics.prom"
        metrics_path.write_text(self.registry.render_prometheus(),
                                encoding="utf-8")
        spans_path = directory / f"{name}_spans.jsonl"
        self.tracer.to_jsonl(spans_path)
        written = {"metrics": metrics_path, "spans": spans_path}
        if self.journal is not None:
            written["journal"] = self.journal.path
        return written
