"""Lightweight span tracing for simulated call chains.

A span is a named interval with a start and end in *virtual* time plus
the wall-clock instants those edges were recorded, optional attributes,
and an optional parent -- enough to reconstruct the causal chain of a
measurement campaign: a ``query`` span fathers one ``response`` span
per decoded hit, which fathers the ``download`` span covering every
attempt, which fathers the ``scan``.  Unlike a thread-based tracer
there is no implicit "current span": chains here live across event
callbacks separated by hours of virtual time, so parents are passed
explicitly.

The tracer is bounded: past ``capacity`` spans, new starts are counted
as dropped rather than recorded, so month-long campaigns cannot grow
memory without bound.
"""

from __future__ import annotations

import itertools
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["Span", "SpanTracer"]


@dataclass(slots=True)
class Span:
    """One traced interval; ``end_*`` stay ``None`` while open."""

    span_id: int
    name: str
    parent_id: Optional[int]
    start_virtual: float
    start_wall: float
    end_virtual: Optional[float] = None
    end_wall: Optional[float] = None
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        """True once :meth:`SpanTracer.end` has run."""
        return self.end_virtual is not None

    @property
    def virtual_duration(self) -> float:
        """Seconds of virtual time covered (0.0 while open)."""
        if self.end_virtual is None:
            return 0.0
        return self.end_virtual - self.start_virtual

    @property
    def wall_duration(self) -> float:
        """Wall-clock seconds between the recorded edges (0.0 while open)."""
        if self.end_wall is None:
            return 0.0
        return self.end_wall - self.start_wall

    def to_dict(self) -> dict:
        """JSON-able representation (one journal/export line)."""
        return {
            "span_id": self.span_id,
            "name": self.name,
            "parent_id": self.parent_id,
            "start_virtual": self.start_virtual,
            "end_virtual": self.end_virtual,
            "virtual_duration": self.virtual_duration,
            "wall_duration": self.wall_duration,
            "attributes": self.attributes,
        }


class SpanTracer:
    """Records spans with explicit parentage, bounded by ``capacity``."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self.dropped = 0
        self._spans: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        self._ids = itertools.count(1)

    def __len__(self) -> int:
        return len(self._spans)

    def start(self, name: str, virtual_time: float,
              parent: Union[Span, int, None] = None,
              **attributes: object) -> Optional[Span]:
        """Open a span; returns ``None`` when capacity is exhausted.

        Callers pass the result straight back to :meth:`end`, which
        accepts ``None``, so dropped spans need no special-casing.
        """
        if len(self._spans) >= self.capacity:
            self.dropped += 1
            return None
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        span = Span(span_id=next(self._ids), name=name,
                    parent_id=parent_id, start_virtual=virtual_time,
                    start_wall=time.perf_counter(), attributes=attributes)
        self._spans.append(span)
        self._by_id[span.span_id] = span
        return span

    def end(self, span: Optional[Span], virtual_time: float,
            **attributes: object) -> None:
        """Close ``span`` (no-op for ``None``), merging ``attributes``."""
        if span is None or span.finished:
            return
        span.end_virtual = virtual_time
        span.end_wall = time.perf_counter()
        if attributes:
            span.attributes.update(attributes)

    def close_open(self, virtual_time: float) -> int:
        """End every still-open span (campaign teardown); returns count."""
        closed = 0
        for span in self._spans:
            if not span.finished:
                self.end(span, virtual_time, closed_at_teardown=True)
                closed += 1
        return closed

    # -- queries ------------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[Span]:
        """All spans in start order, optionally filtered by name."""
        if name is None:
            return list(self._spans)
        return [span for span in self._spans if span.name == name]

    def get(self, span_id: int) -> Optional[Span]:
        """Lookup by id."""
        return self._by_id.get(span_id)

    def chain(self, span: Union[Span, int]) -> List[Span]:
        """``span`` and its ancestors, root first.

        This answers "where did this malicious download come from": the
        chain of a ``scan`` span walks back through ``download`` and
        ``response`` to the originating ``query``.
        """
        current: Optional[Span] = (span if isinstance(span, Span)
                                   else self._by_id.get(span))
        links: List[Span] = []
        seen = set()
        while current is not None and current.span_id not in seen:
            links.append(current)
            seen.add(current.span_id)
            current = (self._by_id.get(current.parent_id)
                       if current.parent_id is not None else None)
        return list(reversed(links))

    def chain_virtual_duration(self, span: Union[Span, int]) -> float:
        """Virtual seconds from the chain's root start to its leaf end."""
        links = self.chain(span)
        if not links:
            return 0.0
        leaf = links[-1]
        leaf_end = (leaf.end_virtual if leaf.end_virtual is not None
                    else leaf.start_virtual)
        return leaf_end - links[0].start_virtual

    # -- export -------------------------------------------------------------
    def to_jsonl(self, path: Path) -> int:
        """Write one JSON object per span; returns the span count.

        Atomic (tmp + ``os.replace``): span exports happen once at the
        end of a run, so whole-file replacement is the right crash
        discipline -- a reader never sees half an export.
        """
        from ..resilience import atomic_write_text
        text = "".join(json.dumps(span.to_dict(), sort_keys=True) + "\n"
                       for span in self._spans)
        atomic_write_text(Path(path), text)
        return len(self._spans)
