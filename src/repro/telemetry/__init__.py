"""First-class observability for campaigns, kernels and benchmarks.

The telemetry layer sits beside ``simnet`` at the bottom of the stack
(stdlib only, no repro imports except within this package) and offers
four pieces:

* :mod:`~repro.telemetry.registry` -- typed metric instruments
  (:class:`Counter`, :class:`Gauge`, :class:`Histogram`) in a
  :class:`MetricRegistry` with Prometheus text export and
  deterministic cross-process snapshot merging;
* :mod:`~repro.telemetry.spans` -- explicit-parent span tracing for
  query->response->download->scan chains across virtual time;
* :mod:`~repro.telemetry.journal` -- periodic JSONL progress
  snapshots (``tail -f`` a running campaign);
* :mod:`~repro.telemetry.kernel` / :mod:`~repro.telemetry.runtime` --
  the simulator hook and the per-run bundle campaigns thread through
  their layers.
"""

from .journal import RunJournal
from .kernel import KernelTelemetry
from .registry import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                       MetricRegistry, get_registry, set_registry)
from .runtime import CampaignTelemetry
from .spans import Span, SpanTracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricRegistry", "DEFAULT_BUCKETS",
    "get_registry", "set_registry",
    "Span", "SpanTracer",
    "RunJournal",
    "KernelTelemetry",
    "CampaignTelemetry",
]
