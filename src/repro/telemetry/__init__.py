"""First-class observability for campaigns, kernels and benchmarks.

The telemetry layer sits beside ``simnet`` at the bottom of the stack
(stdlib only, no repro imports except within this package) and offers
four pieces:

* :mod:`~repro.telemetry.registry` -- typed metric instruments
  (:class:`Counter`, :class:`Gauge`, :class:`Histogram`) in a
  :class:`MetricRegistry` with Prometheus text export and
  deterministic cross-process snapshot merging;
* :mod:`~repro.telemetry.spans` -- explicit-parent span tracing for
  query->response->download->scan chains across virtual time;
* :mod:`~repro.telemetry.journal` -- periodic JSONL progress
  snapshots (``tail -f`` a running campaign);
* :mod:`~repro.telemetry.kernel` / :mod:`~repro.telemetry.runtime` --
  the simulator hook and the per-run bundle campaigns thread through
  their layers;
* :mod:`~repro.telemetry.httpd` -- the live observability plane: a
  read-only HTTP server (``/metrics``, ``/healthz``, ``/snapshot.json``,
  ``/journal``, an HTML dashboard at ``/``) over one or many bundles;
* :mod:`~repro.telemetry.tracer` -- span chains rendered as Chrome
  trace-event JSON (Perfetto-loadable, infection -> query causality);
* :mod:`~repro.telemetry.profiler` -- per-label kernel hotspot reports
  from the sampled callback wall-time histograms.
"""

from .httpd import ObservatoryHub, TelemetryServer, tail_journal
from .journal import RunJournal
from .kernel import KernelTelemetry
from .profiler import Hotspot, HotspotReport
from .registry import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                       MetricRegistry, get_registry, set_registry)
from .runtime import CampaignTelemetry
from .spans import Span, SpanTracer
from .tracer import build_trace, chain_roots, infected_roots, write_trace

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricRegistry", "DEFAULT_BUCKETS",
    "get_registry", "set_registry",
    "Span", "SpanTracer",
    "RunJournal",
    "KernelTelemetry",
    "CampaignTelemetry",
    "ObservatoryHub", "TelemetryServer", "tail_journal",
    "Hotspot", "HotspotReport",
    "build_trace", "chain_roots", "infected_roots", "write_trace",
]
