"""HTTP/1.1 codec for P2P file transfers.

Both measured networks moved file bytes over HTTP: Gnutella servents
served ``GET /get/<index>/<filename>`` and the HUGE form
``GET /uri-res/N2R?urn:sha1:<base32>``; giFT's HTTP layer served OpenFT
shares by hash.  The reproduction's downloads run through this codec so
the measurement layer parses real request/response heads, including the
status codes that distinguish "downloadable" from not (404 gone, 503
busy) -- the distinction the paper's denominator is built on.

Bodies are not materialized: a response carries ``Content-Length`` and
content identity headers, and the sparse :class:`~repro.files.payload.Blob`
travels out-of-band as the simulated byte stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["HttpError", "HttpRequest", "HttpResponse",
           "gnutella_urn_request", "gnutella_index_request",
           "openft_request"]

_CRLF = "\r\n"


class HttpError(ValueError):
    """Raised on malformed HTTP heads."""


def _encode_head(start_line: str, headers: Dict[str, str]) -> bytes:
    lines = [start_line]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return (_CRLF.join(lines) + _CRLF + _CRLF).encode("latin-1")


def _parse_head(raw: bytes) -> Tuple[str, Dict[str, str]]:
    try:
        text = raw.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise HttpError("undecodable HTTP head") from exc
    if not text.endswith(_CRLF + _CRLF):
        raise HttpError("HTTP head not terminated by blank line")
    lines = text[:-4].split(_CRLF)
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, separator, value = line.partition(":")
        if not separator:
            raise HttpError(f"malformed header line {line!r}")
        headers[name.strip()] = value.strip()
    return lines[0], headers


@dataclass(frozen=True)
class HttpRequest:
    """A download request head."""

    method: str
    target: str
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self) -> bytes:
        return _encode_head(f"{self.method} {self.target} HTTP/1.1",
                            dict(self.headers))

    @staticmethod
    def decode(raw: bytes) -> "HttpRequest":
        start_line, headers = _parse_head(raw)
        parts = start_line.split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise HttpError(f"malformed request line {start_line!r}")
        return HttpRequest(method=parts[0], target=parts[1],
                           headers=headers)

    def header(self, name: str, default: str = "") -> str:
        """Case-insensitive header lookup."""
        for key, value in self.headers.items():
            if key.lower() == name.lower():
                return value
        return default


@dataclass(frozen=True)
class HttpResponse:
    """A download response head."""

    status: int
    reason: str
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self) -> bytes:
        return _encode_head(f"HTTP/1.1 {self.status} {self.reason}",
                            dict(self.headers))

    @staticmethod
    def decode(raw: bytes) -> "HttpResponse":
        start_line, headers = _parse_head(raw)
        parts = start_line.split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise HttpError(f"malformed status line {start_line!r}")
        try:
            status = int(parts[1])
        except ValueError as exc:
            raise HttpError(f"bad status code in {start_line!r}") from exc
        reason = parts[2] if len(parts) == 3 else ""
        return HttpResponse(status=status, reason=reason, headers=headers)

    def header(self, name: str, default: str = "") -> str:
        """Case-insensitive header lookup."""
        for key, value in self.headers.items():
            if key.lower() == name.lower():
                return value
        return default

    @property
    def ok(self) -> bool:
        """True for 2xx."""
        return 200 <= self.status < 300

    def content_length(self) -> Optional[int]:
        """Parsed Content-Length, if present and valid."""
        value = self.header("Content-Length")
        if not value:
            return None
        try:
            return int(value)
        except ValueError as exc:
            raise HttpError(f"bad Content-Length {value!r}") from exc


def gnutella_urn_request(sha1_urn: str,
                         user_agent: str = "LimeWire/4.12.3") -> HttpRequest:
    """The HUGE download-by-hash request Limewire preferred."""
    return HttpRequest(method="GET", target=f"/uri-res/N2R?{sha1_urn}",
                       headers={"User-Agent": user_agent,
                                "Connection": "Keep-Alive"})


def gnutella_index_request(file_index: int, filename: str,
                           user_agent: str = "LimeWire/4.12.3",
                           ) -> HttpRequest:
    """The classic index/name download request."""
    return HttpRequest(method="GET",
                       target=f"/get/{file_index}/{filename}",
                       headers={"User-Agent": user_agent})


def openft_request(md5: str, user_agent: str = "giFT/0.11.8",
                   ) -> HttpRequest:
    """giFT's download-by-hash request."""
    return HttpRequest(method="GET", target=f"/?md5={md5}",
                       headers={"User-Agent": user_agent})
