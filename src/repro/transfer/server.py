"""Responder-side HTTP serving for both networks.

Given a parsed :class:`HttpRequest` and the serving host's state, produce
the response head (and the blob standing in for the body).  Status codes
follow servent behaviour: 200 with content headers on success, 404 when
the content is not shared, 503 when the host's upload slots are busy.
"""

from __future__ import annotations

from typing import Optional, Tuple
from urllib.parse import unquote

from ..files.payload import Blob
from .http import HttpError, HttpRequest, HttpResponse

__all__ = ["ContentResolver", "serve_request", "not_found", "busy"]

#: Callable that maps a content identity to a blob, or None.
ContentResolver = "Callable[[str], Optional[Blob]]"


def not_found() -> HttpResponse:
    """The 404 head a servent returns for unshared content."""
    return HttpResponse(status=404, reason="Not Found",
                        headers={"Connection": "close"})


def busy(retry_after_s: int = 60) -> HttpResponse:
    """The 503 head a fully-loaded servent returns."""
    return HttpResponse(status=503, reason="Busy",
                        headers={"Retry-After": str(retry_after_s)})


def _success(blob: Blob, content_id_header: Tuple[str, str],
             server: str) -> HttpResponse:
    name, value = content_id_header
    return HttpResponse(status=200, reason="OK", headers={
        "Server": server,
        "Content-Type": "application/binary",
        "Content-Length": str(blob.size),
        name: value,
    })


def parse_target(request: HttpRequest) -> Tuple[str, str]:
    """Classify a request target.

    Returns ``(kind, key)`` where kind is ``"urn"`` (Gnutella HUGE),
    ``"index"`` (Gnutella /get), or ``"md5"`` (OpenFT).
    """
    target = request.target
    if target.startswith("/uri-res/N2R?"):
        return "urn", target[len("/uri-res/N2R?"):]
    if target.startswith("/get/"):
        remainder = target[len("/get/"):]
        index, separator, filename = remainder.partition("/")
        if not separator or not index.isdigit():
            raise HttpError(f"malformed /get target {target!r}")
        return "index", unquote(filename)
    if target.startswith("/?md5="):
        return "md5", target[len("/?md5="):]
    raise HttpError(f"unrecognized download target {target!r}")


def serve_request(request: HttpRequest, resolve, is_busy: bool = False,
                  server: str = "LimeWire/4.12.3") -> Tuple[HttpResponse,
                                                            Optional[Blob]]:
    """Produce the response for one download request.

    ``resolve`` maps the parsed content key (urn / md5 / filename) to a
    blob or None.  The caller supplies availability (``is_busy``).
    """
    if request.method != "GET":
        return HttpResponse(status=405, reason="Method Not Allowed"), None
    try:
        kind, key = parse_target(request)
    except HttpError:
        return HttpResponse(status=400, reason="Bad Request"), None
    if is_busy:
        return busy(), None
    blob = resolve(key)
    if blob is None:
        return not_found(), None
    if kind == "md5":
        header = ("X-OpenftHash", f"md5:{blob.md5_hex()}")
    else:
        header = ("X-Gnutella-Content-URN", blob.sha1_urn())
    return _success(blob, header, server), blob
