"""HTTP transfer substrate: the download path of both networks."""

from .http import (HttpError, HttpRequest, HttpResponse,
                   gnutella_index_request, gnutella_urn_request,
                   openft_request)
from .server import busy, not_found, parse_target, serve_request

__all__ = [
    "HttpError", "HttpRequest", "HttpResponse",
    "gnutella_index_request", "gnutella_urn_request", "openft_request",
    "busy", "not_found", "parse_target", "serve_request",
]
