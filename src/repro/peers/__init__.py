"""Population models: profiles and world builders for both networks."""

from .population import BuiltWorld, build_gnutella_world, build_openft_world
from .profiles import GnutellaProfile, OpenFTProfile, StrainSeeding

__all__ = [
    "BuiltWorld", "build_gnutella_world", "build_openft_world",
    "GnutellaProfile", "OpenFTProfile", "StrainSeeding",
]
