"""Population builders: turn a profile into a wired, breathing overlay.

``build_gnutella_world`` / ``build_openft_world`` create the clean and
infected host populations, wire the overlay, start churn processes, and
schedule propagation-driven late infections.  They return a
:class:`BuiltWorld` carrying the network facade plus the ground truth the
analysis layer validates against (which endpoint carries which strains).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..files.catalog import ContentCatalog
from ..files.library import SharedFile, SharedLibrary
from ..gnutella.network import GnutellaNetwork
from ..gnutella.servent import GnutellaServent
from ..gnutella.topology import (TopologyConfig, build_topology,
                                 sync_leaf_qrt)
from ..malware.infection import HostInfection
from ..malware.propagation import LogisticGrowth, PropagationSchedule
from ..malware.strain import MalwareStrain
from ..openft.constants import CLASS_SEARCH, CLASS_USER
from ..openft.network import OpenFTNetwork
from ..openft.nodes import OpenFTNode
from ..simnet.addresses import AddressAllocator
from ..simnet.churn import ALWAYS_ON, HOME_PEER, SERVER_LIKE, ChurnProcess
from ..simnet.kernel import Simulator
from ..simnet.rng import SeededStream
from ..simnet.transport import Transport
from .profiles import GnutellaProfile, OpenFTProfile, StrainSeeding

__all__ = ["BuiltWorld", "build_gnutella_world", "build_openft_world"]

_CHURN_PROFILES = (HOME_PEER, SERVER_LIKE, ALWAYS_ON)

#: 2006 Gnutella client census (approximate LimeWire-era shares); vendor
#: codes in query hits follow from these.
_USER_AGENTS = ("LimeWire/4.12.3", "BearShare/5.2.5", "Shareaza/2.2.1",
                "Gnucleus/2.0.2")
_USER_AGENT_WEIGHTS = (0.68, 0.15, 0.11, 0.06)

#: How long an OpenFT parent takes to notice a dropped child's TCP session.
_PARENT_DROP_DELAY_S = 600.0


@dataclass
class BuiltWorld:
    """Everything a campaign needs, plus ground truth for validation."""

    sim: Simulator
    transport: Transport
    network: object  # GnutellaNetwork or OpenFTNetwork
    catalog: ContentCatalog
    strains: List[MalwareStrain]
    #: endpoint -> strains it carries (grows as propagation activates hosts)
    ground_truth: Dict[str, Set[str]] = field(default_factory=dict)
    #: endpoint -> HostInfection for infected/latent hosts
    infections: Dict[str, HostInfection] = field(default_factory=dict)
    churn_processes: List[ChurnProcess] = field(default_factory=list)

    def infected_endpoints(self, strain_id: Optional[str] = None) -> List[str]:
        """Endpoints carrying ``strain_id`` (or any strain when None)."""
        return sorted(
            endpoint for endpoint, strains in self.ground_truth.items()
            if strains and (strain_id is None or strain_id in strains)
        )


def _populate_library(library: SharedLibrary, catalog: ContentCatalog,
                      stream: SeededStream, low: int, high: int) -> None:
    for _ in range(stream.randint(low, high)):
        version = catalog.sample_version(stream)
        library.add(SharedFile.make(
            name=catalog.decorate_filename(version),
            size=version.size, extension=version.extension,
            blob=version.blob))


def proportioned_flags(stream: SeededStream, count: int,
                       fraction: float) -> List[bool]:
    """Exactly ``round(count*fraction)`` Trues, in shuffled order.

    Stratified assignment instead of per-host Bernoulli draws: the
    population fractions (NAT share, churn mix) are *inputs* of the
    calibration, so sampling noise on them would only add variance the
    real study's large population did not have.
    """
    trues = round(count * fraction)
    flags = [True] * trues + [False] * (count - trues)
    stream.shuffle(flags)
    return flags


def proportioned_choices(stream: SeededStream, count: int,
                         items: Sequence, weights: Sequence[float]) -> List:
    """Stratified analogue of ``choices``: exact proportions, shuffled."""
    total = sum(weights)
    picks: List = []
    for item, weight in zip(items, weights):
        picks.extend([item] * int(count * weight / total))
    index = 0
    while len(picks) < count:  # distribute rounding remainder
        picks.append(items[index % len(items)])
        index += 1
    stream.shuffle(picks)
    return picks


def _start_churn(world: BuiltWorld, endpoint_id: str, profile,
                 stream: SeededStream, horizon_s: float,
                 on_up=None, on_down=None) -> None:
    transport = world.transport

    def up() -> None:
        transport.set_online(endpoint_id, True)
        if on_up is not None:
            on_up()

    def down() -> None:
        # hooks fire first so goodbyes (Bye descriptors) can still be
        # sent while the session is up
        if on_down is not None:
            on_down()
        transport.set_online(endpoint_id, False)

    process = ChurnProcess(world.sim, stream, profile,
                           on_up=up, on_down=down, until=horizon_s)
    process.start()
    world.churn_processes.append(process)


# ---------------------------------------------------------------------------
# Gnutella
# ---------------------------------------------------------------------------

def build_gnutella_world(sim: Simulator, profile: GnutellaProfile,
                         strains: Sequence[MalwareStrain],
                         horizon_s: float,
                         transport: Optional[Transport] = None) -> BuiltWorld:
    """Assemble the Limewire-side world described by ``profile``.

    ``transport`` lets the sharded kernel inject a
    :class:`~repro.simnet.shard.ShardedTransport`; the build itself is
    transport-agnostic (the plan is bound only after building, so all
    build-time traffic runs the plain path).
    """
    if transport is None:
        transport = Transport(sim, loss_rate=profile.loss_rate)
    allocator = AddressAllocator(sim.stream("gnutella:addr"))
    catalog = ContentCatalog(profile.catalog, sim.stream("gnutella:catalog"))
    pop_stream = sim.stream("gnutella:population")
    strain_index = {strain.strain_id: strain for strain in strains}

    ultrapeers: List[GnutellaServent] = []
    for index in range(profile.ultrapeers):
        library = SharedLibrary()
        _populate_library(library, catalog, pop_stream, *profile.library_size)
        ultrapeers.append(GnutellaServent(
            sim, transport, f"up{index}", allocator.allocate(),
            role="ultrapeer", library=library,
            dynamic_queries=profile.dynamic_queries))

    leaves: List[GnutellaServent] = []

    def make_leaf(endpoint_id: str, behind_nat: bool,
                  infection: Optional[HostInfection]) -> GnutellaServent:
        library = SharedLibrary()
        _populate_library(library, catalog, pop_stream, *profile.library_size)
        leaf = GnutellaServent(
            sim, transport, endpoint_id, allocator.allocate(behind_nat),
            role="leaf", library=library, infection=infection,
            user_agent=pop_stream.choices(
                list(_USER_AGENTS), weights=list(_USER_AGENT_WEIGHTS),
                k=1)[0])
        leaves.append(leaf)
        return leaf

    world = BuiltWorld(sim=sim, transport=transport, network=None,  # set below
                       catalog=catalog, strains=list(strains))

    clean_nat = proportioned_flags(pop_stream, profile.clean_leaves,
                                   profile.clean_nat_fraction)
    for index in range(profile.clean_leaves):
        leaf = make_leaf(f"leaf{index}", clean_nat[index], None)
        world.ground_truth[leaf.endpoint_id] = set()

    # infected + latent hosts per strain
    latent_pools: Dict[str, List[GnutellaServent]] = {}
    for strain_id, seeding in profile.seeding.items():
        strain = strain_index.get(strain_id)
        if strain is None:
            continue
        infected_nat = proportioned_flags(pop_stream, seeding.final_hosts,
                                          profile.infected_nat_fraction)
        pool: List[GnutellaServent] = []
        for index in range(seeding.final_hosts):
            infection = HostInfection()
            leaf = make_leaf(f"inf-{strain_id}-{index}",
                             infected_nat[index], infection)
            world.infections[leaf.endpoint_id] = infection
            world.ground_truth[leaf.endpoint_id] = set()
            if index < seeding.initial_hosts:
                infection.infect(strain, leaf.library, pop_stream,
                                 resident_copies=seeding.resident_copies)
                world.ground_truth[leaf.endpoint_id].add(strain_id)
            else:
                pool.append(leaf)
        latent_pools[strain_id] = pool

    build_topology(ultrapeers, leaves, sim.stream("gnutella:topology"),
                   TopologyConfig(ultrapeer_degree=profile.ultrapeer_degree,
                                  leaf_attachments=profile.leaf_attachments))

    network = GnutellaNetwork(sim, transport, ultrapeers, leaves, strains)
    world.network = network

    # churn: ultrapeers are long-lived, leaves follow the profile mix
    churn_stream = sim.stream("gnutella:churn")
    for ultrapeer in ultrapeers:
        _start_churn(world, ultrapeer.endpoint_id, SERVER_LIKE, churn_stream,
                     horizon_s)
    up_index = {up.endpoint_id: up for up in ultrapeers}
    leaf_churn = proportioned_choices(churn_stream, len(leaves),
                                      _CHURN_PROFILES,
                                      list(profile.churn_mix))

    def wire_leaf_churn(leaf: GnutellaServent, churn_profile) -> None:
        def on_up() -> None:
            # re-advertise the QRT: shields dropped it on our Bye
            for peer_id in leaf.peer_ids:
                ultrapeer = up_index.get(peer_id)
                if ultrapeer is not None:
                    sync_leaf_qrt(leaf, ultrapeer)

        _start_churn(world, leaf.endpoint_id, churn_profile, churn_stream,
                     horizon_s, on_up=on_up, on_down=leaf.send_bye)

    for leaf, churn_profile in zip(leaves, leaf_churn):
        wire_leaf_churn(leaf, churn_profile)

    # propagation: latent hosts activate along a logistic trajectory
    schedule = PropagationSchedule(sim, horizon_s)
    for strain_id, seeding in profile.seeding.items():
        strain = strain_index.get(strain_id)
        pool = latent_pools.get(strain_id, [])
        if strain is None or not pool:
            continue

        def activate(strain: MalwareStrain, index: int,
                     pool: List[GnutellaServent] = pool) -> None:
            if index >= len(pool):
                return
            leaf = pool[index]
            infection = world.infections[leaf.endpoint_id]
            seeding = profile.seeding[strain.strain_id]
            infection.infect(strain, leaf.library, pop_stream,
                             resident_copies=seeding.resident_copies)
            world.ground_truth[leaf.endpoint_id].add(strain.strain_id)
            for peer_id in leaf.peer_ids:  # re-advertise the new QRT
                ultrapeer = up_index.get(peer_id)
                if ultrapeer is not None:
                    sync_leaf_qrt(leaf, ultrapeer)

        schedule.schedule(strain, LogisticGrowth(
            initial_count=seeding.initial_hosts,
            final_count=seeding.final_hosts, horizon_s=horizon_s), activate)

    return world


# ---------------------------------------------------------------------------
# OpenFT
# ---------------------------------------------------------------------------

def build_openft_world(sim: Simulator, profile: OpenFTProfile,
                       strains: Sequence[MalwareStrain],
                       horizon_s: float,
                       transport: Optional[Transport] = None) -> BuiltWorld:
    """Assemble the OpenFT-side world described by ``profile``.

    ``transport`` works as in :func:`build_gnutella_world`.
    """
    if transport is None:
        transport = Transport(sim, loss_rate=profile.loss_rate)
    allocator = AddressAllocator(sim.stream("openft:addr"))
    catalog = ContentCatalog(profile.catalog, sim.stream("openft:catalog"))
    pop_stream = sim.stream("openft:population")
    strain_index = {strain.strain_id: strain for strain in strains}

    # capacity so the configured population actually fits under its
    # parents (real networks balanced this by promoting more search nodes)
    total_children = profile.user_nodes * profile.parents_per_user
    max_children = max(35, (total_children * 2) // profile.search_nodes)

    search_nodes: List[OpenFTNode] = []
    for index in range(profile.search_nodes):
        library = SharedLibrary()
        _populate_library(library, catalog, pop_stream, *profile.library_size)
        search_nodes.append(OpenFTNode(
            sim, transport, f"search{index}", allocator.allocate(),
            klass=CLASS_SEARCH | CLASS_USER, library=library,
            max_children=max_children))

    world = BuiltWorld(sim=sim, transport=transport, network=None,
                       catalog=catalog, strains=list(strains))

    user_nodes: List[OpenFTNode] = []

    def make_user(endpoint_id: str, behind_nat: bool,
                  infection: Optional[HostInfection]) -> OpenFTNode:
        library = SharedLibrary()
        _populate_library(library, catalog, pop_stream, *profile.library_size)
        user = OpenFTNode(sim, transport, endpoint_id,
                          allocator.allocate(behind_nat), klass=CLASS_USER,
                          library=library, infection=infection)
        user_nodes.append(user)
        return user

    clean_nat = proportioned_flags(pop_stream, profile.user_nodes,
                                   profile.clean_nat_fraction)
    for index in range(profile.user_nodes):
        user = make_user(f"user{index}", clean_nat[index], None)
        world.ground_truth[user.endpoint_id] = set()

    latent_pools: Dict[str, List[OpenFTNode]] = {}
    for strain_id, seeding in profile.seeding.items():
        strain = strain_index.get(strain_id)
        if strain is None:
            continue
        infected_nat = proportioned_flags(pop_stream, seeding.final_hosts,
                                          profile.infected_nat_fraction)
        pool: List[OpenFTNode] = []
        for index in range(seeding.final_hosts):
            infection = HostInfection()
            user = make_user(f"inf-{strain_id}-{index}",
                             (not seeding.dedicated) and infected_nat[index],
                             infection)
            world.infections[user.endpoint_id] = infection
            world.ground_truth[user.endpoint_id] = set()
            if index < seeding.initial_hosts:
                infection.infect(strain, user.library, pop_stream,
                                 resident_copies=seeding.resident_copies)
                world.ground_truth[user.endpoint_id].add(strain_id)
            else:
                pool.append(user)
        latent_pools[strain_id] = pool

    network = OpenFTNetwork(sim, transport, search_nodes, user_nodes, strains)
    world.network = network
    network.wire(sim.stream("openft:topology"),
                 parents_per_user=profile.parents_per_user)

    search_index = {node.endpoint_id: node for node in search_nodes}
    churn_stream = sim.stream("openft:churn")
    seeding_by_endpoint: Dict[str, StrainSeeding] = {}
    for strain_id, seeding in profile.seeding.items():
        for index in range(seeding.final_hosts):
            seeding_by_endpoint[f"inf-{strain_id}-{index}"] = seeding

    for node in search_nodes:
        _start_churn(world, node.endpoint_id, SERVER_LIKE, churn_stream,
                     horizon_s)

    user_churn = proportioned_choices(churn_stream, len(user_nodes),
                                      _CHURN_PROFILES,
                                      list(profile.churn_mix))
    churn_by_endpoint = {user.endpoint_id: churn
                         for user, churn in zip(user_nodes, user_churn)}

    def wire_user_churn(user: OpenFTNode) -> None:
        seeding = seeding_by_endpoint.get(user.endpoint_id)
        churn_profile = (ALWAYS_ON if seeding is not None and seeding.dedicated
                         else churn_by_endpoint[user.endpoint_id])

        def on_up() -> None:
            # re-announce shares; dropped/never-adopted parents re-adopt
            desired = network.desired_parents.get(user.endpoint_id, [])
            if getattr(transport, "shard_active", False):
                # shard mode: the adoption check below reads the
                # parent's child registry, which lives on *its* owner
                # shard -- a replica's copy is stale.  Re-handshake
                # unconditionally instead (the real protocol's
                # behaviour on reconnect): only the user's owner shard
                # actually sends, and an already-adopted child's
                # ChildRequest is answered idempotently.
                for parent_id in desired:
                    if parent_id in user.parent_ids:
                        user.parent_ids.remove(parent_id)
                    user.request_parent(parent_id)
                return
            for parent_id in desired:
                parent = search_index.get(parent_id)
                if parent is None:
                    continue
                adopted = (parent_id in user.parent_ids
                           and user.endpoint_id in parent._children)
                if adopted:
                    user.sync_shares_to(parent_id)
                else:
                    if parent_id in user.parent_ids:
                        user.parent_ids.remove(parent_id)
                    user.request_parent(parent_id)

        def on_down() -> None:
            def drop_if_still_offline() -> None:
                if user.is_online():
                    return
                if getattr(transport, "shard_active", False):
                    # shard mode: ``user.parent_ids`` is only accurate
                    # on the user's owner shard, but this timer fires
                    # replicated on every shard and each parent's drop
                    # must land on the *parent's* owner.  Sweep the
                    # build-time wish-list instead -- ``drop_child`` is
                    # idempotent, so never-adopted parents are no-ops.
                    for parent_id in network.desired_parents.get(
                            user.endpoint_id, []):
                        parent = search_index.get(parent_id)
                        if parent is not None:
                            parent.drop_child(user.endpoint_id)
                    return
                for parent_id in user.parent_ids:
                    parent = search_index.get(parent_id)
                    if parent is not None:
                        parent.drop_child(user.endpoint_id)
            sim.after(_PARENT_DROP_DELAY_S, drop_if_still_offline,
                      label="parent-drop")

        _start_churn(world, user.endpoint_id, churn_profile, churn_stream,
                     horizon_s, on_up=on_up, on_down=on_down)

    for user in user_nodes:
        wire_user_churn(user)

    schedule = PropagationSchedule(sim, horizon_s)
    for strain_id, seeding in profile.seeding.items():
        strain = strain_index.get(strain_id)
        pool = latent_pools.get(strain_id, [])
        if strain is None or not pool:
            continue

        def activate(strain: MalwareStrain, index: int,
                     pool: List[OpenFTNode] = pool) -> None:
            if index >= len(pool):
                return
            user = pool[index]
            infection = world.infections[user.endpoint_id]
            seeding = profile.seeding[strain.strain_id]
            infection.infect(strain, user.library, pop_stream,
                             resident_copies=seeding.resident_copies)
            world.ground_truth[user.endpoint_id].add(strain.strain_id)
            if user.is_online():
                user.sync_shares()

        schedule.schedule(strain, LogisticGrowth(
            initial_count=seeding.initial_hosts,
            final_count=seeding.final_hosts, horizon_s=horizon_s), activate)

    return world
