"""Population profiles for the two measured networks.

A profile fixes everything about the simulated world except the campaign:
overlay shape, clean population, per-strain infected host counts, NAT
fractions and churn mix.  The default numbers are a *scaled-down*
calibration chosen so the measured shapes land on the paper's findings
(68%/3% prevalence, 99%/75% top-3 concentration, 28% private sources,
single dominant OpenFT host); scale factors let benchmarks grow the world
without retuning ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from ..files.catalog import CatalogConfig
from ..files.types import FileType

__all__ = ["StrainSeeding", "GnutellaProfile", "OpenFTProfile"]


@dataclass(frozen=True)
class StrainSeeding:
    """How one strain is seeded into a population.

    ``initial_hosts`` carry the strain from day zero; ``final_hosts`` is
    the logistic-growth target at the campaign horizon (equal counts mean
    a static strain).  ``resident_copies`` is how many bait-named copies a
    share-infector/dropper keeps in each infected library; ``dedicated``
    marks strains served from one always-on host (the OpenFT top virus).
    """

    initial_hosts: int
    final_hosts: int
    resident_copies: int = 4
    dedicated: bool = False

    def __post_init__(self) -> None:
        if self.initial_hosts < 0 or self.final_hosts < self.initial_hosts:
            raise ValueError("need 0 <= initial_hosts <= final_hosts")
        if self.dedicated and self.initial_hosts != 1:
            raise ValueError("a dedicated strain is served by exactly one host")


@dataclass(frozen=True)
class GnutellaProfile:
    """The Limewire-side world."""

    ultrapeers: int = 24
    ultrapeer_degree: int = 6
    clean_leaves: int = 420
    leaf_attachments: int = 2
    #: when True, ultrapeers pace leaf queries with LimeWire's dynamic
    #: query controller instead of flooding (ablation; see DESIGN.md)
    dynamic_queries: bool = False
    catalog: CatalogConfig = field(default_factory=CatalogConfig)
    #: files per clean library (uniform range)
    library_size: Tuple[int, int] = (5, 40)
    #: NAT fraction of clean and infected leaves (C3 depends on the latter)
    clean_nat_fraction: float = 0.30
    infected_nat_fraction: float = 0.26
    #: churn mix of clean leaves: (home, server-like, always-on) weights
    churn_mix: Tuple[float, float, float] = (0.70, 0.25, 0.05)
    #: fraction of overlay messages lost in transit (failure injection)
    loss_rate: float = 0.0
    #: per-strain seeding, keyed by strain_id; see :mod:`repro.malware.corpus`
    seeding: Dict[str, StrainSeeding] = field(default_factory=lambda: {
        "lw-echo-a": StrainSeeding(initial_hosts=52, final_hosts=62),
        "lw-echo-b": StrainSeeding(initial_hosts=23, final_hosts=27),
        "lw-share-c": StrainSeeding(initial_hosts=30, final_hosts=34,
                                    resident_copies=10),
        "lw-drop-d": StrainSeeding(initial_hosts=3, final_hosts=3),
        "lw-share-e": StrainSeeding(initial_hosts=2, final_hosts=2),
        "lw-drop-f": StrainSeeding(initial_hosts=2, final_hosts=2),
        "lw-share-g": StrainSeeding(initial_hosts=1, final_hosts=1),
        "lw-share-h": StrainSeeding(initial_hosts=1, final_hosts=1),
        "lw-drop-i": StrainSeeding(initial_hosts=1, final_hosts=1),
        "lw-share-j": StrainSeeding(initial_hosts=1, final_hosts=1),
    })

    def scaled(self, factor: float) -> "GnutellaProfile":
        """A proportionally larger/smaller world (ratios preserved)."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor!r}")
        seeding = {
            strain_id: replace(
                seed,
                initial_hosts=(1 if seed.dedicated else
                               max(1, round(seed.initial_hosts * factor))),
                final_hosts=(1 if seed.dedicated else
                             max(1, round(seed.final_hosts * factor))),
            )
            for strain_id, seed in self.seeding.items()
        }
        return replace(
            self,
            ultrapeers=max(4, round(self.ultrapeers * factor)),
            clean_leaves=max(10, round(self.clean_leaves * factor)),
            seeding=seeding,
        )


@dataclass(frozen=True)
class OpenFTProfile:
    """The OpenFT-side world."""

    search_nodes: int = 8
    user_nodes: int = 260
    parents_per_user: int = 2
    catalog: CatalogConfig = field(default_factory=lambda: CatalogConfig(
        works=1500,
        type_mix=(
            # OpenFT skewed even more towards software/archives than
            # Gnutella's music-heavy mix (giFT userbase), which keeps the
            # clean downloadable denominator rich.
            (FileType.AUDIO, 0.34), (FileType.VIDEO, 0.14),
            (FileType.ARCHIVE, 0.22), (FileType.EXECUTABLE, 0.18),
            (FileType.IMAGE, 0.07), (FileType.DOCUMENT, 0.05),
        ),
    ))
    library_size: Tuple[int, int] = (8, 60)
    clean_nat_fraction: float = 0.22
    infected_nat_fraction: float = 0.22
    churn_mix: Tuple[float, float, float] = (0.60, 0.30, 0.10)
    #: fraction of overlay messages lost in transit (failure injection)
    loss_rate: float = 0.0
    seeding: Dict[str, StrainSeeding] = field(default_factory=lambda: {
        "ft-share-a": StrainSeeding(initial_hosts=1, final_hosts=1,
                                    resident_copies=80, dedicated=True),
        "ft-share-b": StrainSeeding(initial_hosts=2, final_hosts=3,
                                    resident_copies=4),
        "ft-drop-c": StrainSeeding(initial_hosts=2, final_hosts=3,
                                   resident_copies=3),
        "ft-share-d": StrainSeeding(initial_hosts=2, final_hosts=2,
                                    resident_copies=4),
        "ft-drop-e": StrainSeeding(initial_hosts=1, final_hosts=2,
                                   resident_copies=3),
        "ft-share-f": StrainSeeding(initial_hosts=1, final_hosts=2,
                                    resident_copies=4),
        "ft-share-g": StrainSeeding(initial_hosts=1, final_hosts=2,
                                    resident_copies=4),
        "ft-drop-h": StrainSeeding(initial_hosts=1, final_hosts=1,
                                   resident_copies=3),
        "ft-share-i": StrainSeeding(initial_hosts=1, final_hosts=2,
                                    resident_copies=4),
        "ft-share-j": StrainSeeding(initial_hosts=1, final_hosts=1,
                                    resident_copies=4),
        "ft-drop-k": StrainSeeding(initial_hosts=1, final_hosts=1,
                                   resident_copies=3),
    })

    def scaled(self, factor: float) -> "OpenFTProfile":
        """A proportionally larger/smaller world (ratios preserved)."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor!r}")
        return replace(
            self,
            search_nodes=max(2, round(self.search_nodes * factor)),
            user_nodes=max(10, round(self.user_nodes * factor)),
        )
