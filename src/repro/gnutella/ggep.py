"""GGEP: the Gnutella Generic Extension Protocol.

GGEP is the extension framing modern servents appended to Query, QueryHit
and Pong payloads (magic ``0xC3``, then a sequence of extension blocks).
Each block carries:

* a flag byte: ``last`` (bit 7), ``COBS-encoded`` (bit 6, used when the
  payload must avoid NUL bytes inside NUL-terminated areas), ``deflate``
  (bit 5, not used by this implementation), and the id length (bits 0-3);
* the ASCII extension id (1-15 bytes);
* a 1-3 byte big-endian-ish length encoding where bit 6 of each byte
  marks "more length bytes follow" and bit 7 must be clear -- we follow
  the GGEP spec's granny encoding;
* the payload bytes.

We implement the subset 2006 Limewire emitted in hits: ``VC`` (vendor
code + version), ``DU`` (daily uptime), ``GUE`` (GUESS support) and
arbitrary ids for forward compatibility.  COBS encode/decode is included
and exercised so blocks survive embedding in NUL-delimited extension
areas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["GgepError", "GgepBlock", "encode_ggep", "decode_ggep",
           "cobs_encode", "cobs_decode", "GGEP_MAGIC", "vendor_block",
           "daily_uptime_block", "parse_daily_uptime"]

GGEP_MAGIC = 0xC3

_FLAG_LAST = 0x80
_FLAG_COBS = 0x40
_FLAG_DEFLATE = 0x20
_ID_LENGTH_MASK = 0x0F


class GgepError(ValueError):
    """Raised on malformed GGEP frames."""


# ---------------------------------------------------------------------------
# COBS (consistent overhead byte stuffing), as referenced by the GGEP spec
# ---------------------------------------------------------------------------

def cobs_encode(data: bytes) -> bytes:
    """COBS-encode ``data`` so it contains no NUL bytes.

    Canonical algorithm: a code byte precedes each block and states the
    offset to the next (elided) NUL; full 254-byte runs use code 0xFF and
    imply no NUL.
    """
    output = bytearray()
    code_index = len(output)
    output.append(0)  # placeholder for the first code byte
    code = 1
    for byte in data:
        if byte:
            output.append(byte)
            code += 1
            if code == 0xFF:
                output[code_index] = code
                code_index = len(output)
                output.append(0)
                code = 1
        else:
            output[code_index] = code
            code_index = len(output)
            output.append(0)
            code = 1
    output[code_index] = code
    return bytes(output)


def cobs_decode(data: bytes) -> bytes:
    """Invert :func:`cobs_encode`."""
    if not data:
        raise GgepError("empty COBS data")
    output = bytearray()
    index = 0
    while index < len(data):
        code = data[index]
        if code == 0:
            raise GgepError("COBS code byte may not be zero")
        index += 1
        block = data[index:index + code - 1]
        if len(block) != code - 1:
            raise GgepError("truncated COBS block")
        output.extend(block)
        index += code - 1
        if code != 0xFF and index < len(data):
            output.append(0)
    return bytes(output)


# ---------------------------------------------------------------------------
# length granny-encoding per the GGEP specification
# ---------------------------------------------------------------------------

def _encode_length(length: int) -> bytes:
    if length < 0 or length > 0x3FFFF:
        raise GgepError(f"GGEP payload length {length} out of range")
    chunks = []
    remaining = length
    while True:
        chunks.append(remaining & 0x3F)
        remaining >>= 6
        if not remaining:
            break
    chunks.reverse()
    encoded = bytearray()
    for position, chunk in enumerate(chunks):
        more = position < len(chunks) - 1
        encoded.append((0x80 if not more else 0x40) | chunk)
    return bytes(encoded)


def _decode_length(data: bytes, offset: int) -> Tuple[int, int]:
    length = 0
    for _ in range(3):
        if offset >= len(data):
            raise GgepError("truncated GGEP length")
        byte = data[offset]
        offset += 1
        length = (length << 6) | (byte & 0x3F)
        if byte & 0x80:
            return length, offset
        if not byte & 0x40:
            raise GgepError("malformed GGEP length byte")
    raise GgepError("GGEP length longer than 3 bytes")


# ---------------------------------------------------------------------------
# blocks
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GgepBlock:
    """One GGEP extension."""

    extension_id: str
    payload: bytes
    cobs: bool = False

    def __post_init__(self) -> None:
        encoded_id = self.extension_id.encode("ascii", errors="strict")
        if not 1 <= len(encoded_id) <= 15:
            raise GgepError(
                f"GGEP id must be 1-15 bytes, got {self.extension_id!r}")


def encode_ggep(blocks: List[GgepBlock]) -> bytes:
    """Serialize blocks into a GGEP frame (magic + block sequence)."""
    if not blocks:
        raise GgepError("GGEP frame needs at least one block")
    output = bytearray([GGEP_MAGIC])
    for position, block in enumerate(blocks):
        last = position == len(blocks) - 1
        payload = cobs_encode(block.payload) if block.cobs else block.payload
        identifier = block.extension_id.encode("ascii")
        flags = len(identifier) & _ID_LENGTH_MASK
        if last:
            flags |= _FLAG_LAST
        if block.cobs:
            flags |= _FLAG_COBS
        output.append(flags)
        output.extend(identifier)
        output.extend(_encode_length(len(payload)))
        output.extend(payload)
    return bytes(output)


def decode_ggep(data: bytes) -> Tuple[List[GgepBlock], int]:
    """Parse a GGEP frame; returns (blocks, bytes consumed)."""
    if not data or data[0] != GGEP_MAGIC:
        raise GgepError("missing GGEP magic")
    blocks: List[GgepBlock] = []
    offset = 1
    while True:
        if offset >= len(data):
            raise GgepError("truncated GGEP frame")
        flags = data[offset]
        offset += 1
        if flags & _FLAG_DEFLATE:
            raise GgepError("deflate-compressed GGEP not supported")
        id_length = flags & _ID_LENGTH_MASK
        if id_length == 0:
            raise GgepError("GGEP id length may not be zero")
        identifier = data[offset:offset + id_length]
        if len(identifier) != id_length:
            raise GgepError("truncated GGEP id")
        offset += id_length
        payload_length, offset = _decode_length(data, offset)
        payload = data[offset:offset + payload_length]
        if len(payload) != payload_length:
            raise GgepError("truncated GGEP payload")
        offset += payload_length
        cobs = bool(flags & _FLAG_COBS)
        if cobs:
            payload = cobs_decode(payload)
        blocks.append(GgepBlock(
            extension_id=identifier.decode("ascii", errors="strict"),
            payload=payload, cobs=cobs))
        if flags & _FLAG_LAST:
            return blocks, offset


def vendor_block(vendor: bytes, version: int) -> GgepBlock:
    """The ``VC`` block Limewire attached to hits."""
    if len(vendor) != 4:
        raise GgepError("vendor code must be 4 bytes")
    return GgepBlock(extension_id="VC",
                     payload=vendor + bytes([version & 0xFF]))


def daily_uptime_block(seconds: int) -> GgepBlock:
    """The ``DU`` block advertising average daily uptime."""
    if seconds < 0:
        raise GgepError("uptime may not be negative")
    length = max(1, (seconds.bit_length() + 7) // 8)
    return GgepBlock(extension_id="DU",
                     payload=seconds.to_bytes(length, "little"))


def parse_daily_uptime(block: GgepBlock) -> int:
    """Read a ``DU`` payload back into seconds."""
    if block.extension_id != "DU":
        raise GgepError(f"not a DU block: {block.extension_id!r}")
    return int.from_bytes(block.payload, "little")
