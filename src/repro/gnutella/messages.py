"""Binary codec for Gnutella 0.6 descriptors.

Wire format per the v0.6 specification:

* descriptor header: ``GUID(16) | type(1) | TTL(1) | hops(1) | length(4 LE)``
* Pong: ``port(2 LE) | IPv4(4 NBO) | files(4 LE) | kbytes(4 LE)``
* Query: ``min_speed(2 LE) | criteria NUL | extensions NUL``
* QueryHit: ``count(1) | port(2 LE) | IPv4(4 NBO) | speed(4 LE) | results...
  | QHD | servent GUID(16)`` with each result
  ``index(4 LE) | size(4 LE) | name NUL | extensions NUL``
* Push: ``servent GUID(16) | index(4 LE) | IPv4(4 NBO) | port(2 LE)``

Every descriptor class round-trips: ``decode(x.encode()) == x``.  The
collector consumes *decoded* QueryHits, so the self-reported address
semantics (including RFC 1918 advertisements) flow through real parsing.
"""

from __future__ import annotations

import socket
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .constants import (DESCRIPTOR_BYE, DESCRIPTOR_PING, DESCRIPTOR_PONG,
                        DESCRIPTOR_PUSH, DESCRIPTOR_QUERY,
                        DESCRIPTOR_QUERY_HIT, HEADER_LENGTH,
                        MAX_PAYLOAD_LENGTH, MAX_TTL)
from .guid import GUID_LENGTH

__all__ = ["MessageError", "Header", "Ping", "Pong", "Bye", "Query",
           "HitResult", "QueryHit", "Push", "frame", "parse_frame",
           "parse_header", "patch_ttl_hops", "decode_payload",
           "FrameCache", "TTL_OFFSET", "HOPS_OFFSET"]

#: Byte offsets of the mutable header fields: GUID(16) | type(1) puts
#: TTL at 17 and hops at 18 (see :class:`Header`).
TTL_OFFSET = GUID_LENGTH + 1
HOPS_OFFSET = GUID_LENGTH + 2


class MessageError(ValueError):
    """Raised on malformed descriptors."""


def _pack_ip(address: str) -> bytes:
    try:
        return socket.inet_aton(address)
    except OSError as exc:
        raise MessageError(f"bad IPv4 address {address!r}") from exc


def _unpack_ip(raw: bytes) -> str:
    if len(raw) != 4:
        raise MessageError(f"IPv4 field must be 4 bytes, got {len(raw)}")
    return socket.inet_ntoa(raw)


@dataclass(frozen=True)
class Header:
    """The 23-byte descriptor header."""

    guid: bytes
    descriptor_type: int
    ttl: int
    hops: int
    payload_length: int

    def encode(self) -> bytes:
        if len(self.guid) != GUID_LENGTH:
            raise MessageError(f"GUID must be {GUID_LENGTH} bytes")
        return self.guid + struct.pack(
            "<BBBI", self.descriptor_type, self.ttl, self.hops,
            self.payload_length)

    @staticmethod
    def decode(raw: bytes) -> "Header":
        if len(raw) < HEADER_LENGTH:
            raise MessageError(f"short header: {len(raw)} bytes")
        guid = raw[:GUID_LENGTH]
        descriptor_type, ttl, hops, payload_length = struct.unpack(
            "<BBBI", raw[GUID_LENGTH:HEADER_LENGTH])
        if payload_length > MAX_PAYLOAD_LENGTH:
            raise MessageError(f"payload length {payload_length} too large")
        if ttl + hops > 2 * MAX_TTL:
            raise MessageError(f"ttl({ttl})+hops({hops}) out of range")
        return Header(guid, descriptor_type, ttl, hops, payload_length)


@dataclass(frozen=True)
class Ping:
    """Keep-alive / host discovery probe; empty payload."""

    def encode(self) -> bytes:
        return b""

    @staticmethod
    def decode(payload: bytes) -> "Ping":
        # Modern servents may append GGEP to pings; tolerate trailing bytes.
        return Ping()

    descriptor_type = DESCRIPTOR_PING


@dataclass(frozen=True)
class Pong:
    """Ping response advertising a servent and its shared-library size."""

    port: int
    address: str
    file_count: int
    kbytes_shared: int

    descriptor_type = DESCRIPTOR_PONG

    def encode(self) -> bytes:
        return (struct.pack("<H", self.port) + _pack_ip(self.address)
                + struct.pack("<II", self.file_count, self.kbytes_shared))

    @staticmethod
    def decode(payload: bytes) -> "Pong":
        if len(payload) < 14:
            raise MessageError(f"pong payload too short: {len(payload)}")
        port = struct.unpack("<H", payload[0:2])[0]
        address = _unpack_ip(payload[2:6])
        file_count, kbytes = struct.unpack("<II", payload[6:14])
        return Pong(port=port, address=address, file_count=file_count,
                    kbytes_shared=kbytes)


@dataclass(frozen=True)
class Bye:
    """Graceful-disconnect notice (code + human-readable reason).

    Sent with TTL 1 immediately before closing a connection, so the
    neighbour can clean up state (e.g. an ultrapeer dropping the leaf's
    QRP table) instead of waiting for a timeout.
    """

    code: int
    reason: str

    descriptor_type = DESCRIPTOR_BYE

    def encode(self) -> bytes:
        return (struct.pack("<H", self.code)
                + self.reason.encode("utf-8", errors="replace") + b"\x00")

    @staticmethod
    def decode(payload: bytes) -> "Bye":
        if len(payload) < 3:
            raise MessageError(f"bye payload too short: {len(payload)}")
        code = struct.unpack_from("<H", payload)[0]
        end = payload.find(b"\x00", 2)
        if end < 0:
            raise MessageError("bye reason not NUL-terminated")
        return Bye(code=code,
                   reason=payload[2:end].decode("utf-8", errors="replace"))


@dataclass(frozen=True)
class Query:
    """Keyword search descriptor.

    ``extensions`` carries HUGE/GGEP data between the two NULs; a plain
    ``urn:sha1:`` request asks responders to include content urns, which
    Limewire always did and our collector relies on for download dedup.
    """

    min_speed_kbps: int
    criteria: str
    extensions: str = "urn:sha1:"

    descriptor_type = DESCRIPTOR_QUERY

    def encode(self) -> bytes:
        criteria = self.criteria.encode("utf-8", errors="replace")
        extensions = self.extensions.encode("ascii", errors="replace")
        return (struct.pack("<H", self.min_speed_kbps)
                + criteria + b"\x00" + extensions + b"\x00")

    @staticmethod
    def decode(payload: bytes) -> "Query":
        if len(payload) < 3:
            raise MessageError(f"query payload too short: {len(payload)}")
        min_speed = struct.unpack("<H", payload[0:2])[0]
        body = payload[2:]
        first_nul = body.find(b"\x00")
        if first_nul < 0:
            raise MessageError("query criteria not NUL-terminated")
        criteria = body[:first_nul].decode("utf-8", errors="replace")
        rest = body[first_nul + 1:]
        second_nul = rest.find(b"\x00")
        extensions = (rest[:second_nul] if second_nul >= 0 else rest)
        return Query(min_speed_kbps=min_speed, criteria=criteria,
                     extensions=extensions.decode("ascii", errors="replace"))


@dataclass(frozen=True)
class HitResult:
    """One shared file inside a QueryHit."""

    file_index: int
    file_size: int
    filename: str
    sha1_urn: str = ""

    def encode(self) -> bytes:
        name = self.filename.encode("utf-8", errors="replace")
        extensions = self.sha1_urn.encode("ascii", errors="replace")
        return (struct.pack("<II", self.file_index,
                            min(self.file_size, 0xFFFFFFFF))
                + name + b"\x00" + extensions + b"\x00")

    @staticmethod
    def decode_from(buffer: bytes, offset: int) -> Tuple["HitResult", int]:
        if len(buffer) - offset < 10:
            raise MessageError("truncated hit result")
        file_index, file_size = struct.unpack_from("<II", buffer, offset)
        offset += 8
        name_end = buffer.find(b"\x00", offset)
        if name_end < 0:
            raise MessageError("hit filename not NUL-terminated")
        filename = buffer[offset:name_end].decode("utf-8", errors="replace")
        offset = name_end + 1
        ext_end = buffer.find(b"\x00", offset)
        if ext_end < 0:
            raise MessageError("hit extensions not NUL-terminated")
        sha1_urn = buffer[offset:ext_end].decode("ascii", errors="replace")
        return HitResult(file_index=file_index, file_size=file_size,
                         filename=filename, sha1_urn=sha1_urn), ext_end + 1


# QHD flag bits (flags byte declares, controls byte sets; a bit is
# meaningful when present in both -- we encode the common servent pattern).
_QHD_PUSH = 0x01
_QHD_BUSY = 0x04
_QHD_UPLOADED = 0x08
_QHD_SPEED_MEASURED = 0x10


@dataclass(frozen=True)
class QueryHit:
    """Response descriptor listing matching files.

    ``address``/``port`` are **self-reported** by the responder -- the crux
    of the paper's private-address finding -- and ``servent_guid`` allows
    PUSH-routed downloads to NATed responders.
    """

    port: int
    address: str
    speed_kbps: int
    results: Tuple[HitResult, ...]
    servent_guid: bytes
    vendor: bytes = b"LIME"
    push_needed: bool = False
    busy: bool = False
    #: QHD private area (modern servents put a GGEP frame here)
    private_data: bytes = b""

    descriptor_type = DESCRIPTOR_QUERY_HIT

    def encode(self) -> bytes:
        if not 0 < len(self.results) <= 255:
            raise MessageError(f"query hit needs 1..255 results, "
                               f"got {len(self.results)}")
        if len(self.servent_guid) != GUID_LENGTH:
            raise MessageError("servent GUID must be 16 bytes")
        if len(self.vendor) != 4:
            raise MessageError("vendor code must be 4 bytes")
        flags = _QHD_PUSH | _QHD_BUSY | _QHD_UPLOADED | _QHD_SPEED_MEASURED
        controls = ((_QHD_PUSH if self.push_needed else 0)
                    | (_QHD_BUSY if self.busy else 0))
        parts = [struct.pack("<BH", len(self.results), self.port),
                 _pack_ip(self.address),
                 struct.pack("<I", self.speed_kbps)]
        parts.extend(result.encode() for result in self.results)
        parts.append(self.vendor + bytes([2, flags, controls]))
        parts.append(self.private_data)
        parts.append(self.servent_guid)
        return b"".join(parts)

    @staticmethod
    def decode(payload: bytes) -> "QueryHit":
        if len(payload) < 11 + GUID_LENGTH:
            raise MessageError(f"query hit too short: {len(payload)}")
        count, port = struct.unpack_from("<BH", payload, 0)
        address = _unpack_ip(payload[3:7])
        speed = struct.unpack_from("<I", payload, 7)[0]
        offset = 11
        results: List[HitResult] = []
        for _ in range(count):
            result, offset = HitResult.decode_from(payload, offset)
            results.append(result)
        servent_guid = payload[-GUID_LENGTH:]
        trailer = payload[offset:-GUID_LENGTH]
        vendor, push_needed, busy = b"????", False, False
        private_data = b""
        if len(trailer) >= 7:
            vendor = trailer[:4]
            open_data_size = trailer[4]
            if open_data_size >= 2 and len(trailer) >= 7:
                flags, controls = trailer[5], trailer[6]
                push_needed = bool(flags & controls & _QHD_PUSH)
                busy = bool(flags & controls & _QHD_BUSY)
            private_data = trailer[5 + open_data_size:]
        return QueryHit(port=port, address=address, speed_kbps=speed,
                        results=tuple(results), servent_guid=servent_guid,
                        vendor=vendor, push_needed=push_needed, busy=busy,
                        private_data=private_data)


@dataclass(frozen=True)
class Push:
    """Firewalled-download request routed back to a NATed responder."""

    servent_guid: bytes
    file_index: int
    address: str
    port: int

    descriptor_type = DESCRIPTOR_PUSH

    def encode(self) -> bytes:
        if len(self.servent_guid) != GUID_LENGTH:
            raise MessageError("servent GUID must be 16 bytes")
        return (self.servent_guid + struct.pack("<I", self.file_index)
                + _pack_ip(self.address) + struct.pack("<H", self.port))

    @staticmethod
    def decode(payload: bytes) -> "Push":
        if len(payload) < GUID_LENGTH + 10:
            raise MessageError(f"push payload too short: {len(payload)}")
        servent_guid = payload[:GUID_LENGTH]
        file_index = struct.unpack_from("<I", payload, GUID_LENGTH)[0]
        address = _unpack_ip(payload[GUID_LENGTH + 4:GUID_LENGTH + 8])
        port = struct.unpack_from("<H", payload, GUID_LENGTH + 8)[0]
        return Push(servent_guid=servent_guid, file_index=file_index,
                    address=address, port=port)


_DECODERS = {
    DESCRIPTOR_PING: Ping.decode,
    DESCRIPTOR_PONG: Pong.decode,
    DESCRIPTOR_BYE: Bye.decode,
    DESCRIPTOR_QUERY: Query.decode,
    DESCRIPTOR_QUERY_HIT: QueryHit.decode,
    DESCRIPTOR_PUSH: Push.decode,
}


def frame(guid: bytes, message, ttl: int, hops: int = 0) -> bytes:
    """Wrap a message body in a descriptor header, producing wire bytes."""
    payload = message.encode()
    header = Header(guid=guid, descriptor_type=message.descriptor_type,
                    ttl=ttl, hops=hops, payload_length=len(payload))
    return header.encode() + payload


def parse_frame(raw: bytes) -> Tuple[Header, bytes]:
    """Split wire bytes into (header, payload), validating lengths."""
    header = Header.decode(raw)
    payload = raw[HEADER_LENGTH:]
    if len(payload) != header.payload_length:
        raise MessageError(
            f"payload length mismatch: header says {header.payload_length}, "
            f"got {len(payload)}")
    return header, payload


def parse_header(raw: bytes) -> Header:
    """Decode and validate the header without slicing the payload off.

    Applies every check :func:`parse_frame` applies -- including the
    declared-vs-actual payload length -- but leaves the payload bytes in
    place, so lazy receivers (forwarders that never look at the body)
    skip the copy.  A frame accepted here is exactly a frame
    :func:`parse_frame` would accept.
    """
    header = Header.decode(raw)
    if len(raw) - HEADER_LENGTH != header.payload_length:
        raise MessageError(
            f"payload length mismatch: header says {header.payload_length}, "
            f"got {len(raw) - HEADER_LENGTH}")
    return header


def patch_ttl_hops(raw, ttl: int, hops: int) -> bytes:
    """Re-stamp a frame's TTL and hops without re-encoding the body.

    The descriptor header is fixed-layout (GUID | type | TTL | hops |
    length) and a forwarded descriptor differs from the received one in
    exactly those two bytes, so poking them produces the same bytes
    :func:`frame` would -- the encode-once contract the fast path rests
    on (asserted in tests against a decode/re-encode reference).

    One buffer copy and two byte stores; the old three-slice splice
    built four transient objects and copied the body twice.  ``raw``
    may be ``bytes``, ``bytearray`` or a ``memoryview`` -- receive
    paths that hold views into a larger buffer can patch without
    materializing the frame first.
    """
    patched = bytearray(raw)
    patched[TTL_OFFSET] = ttl
    patched[HOPS_OFFSET] = hops
    return bytes(patched)


class FrameCache:
    """Per-servent memo of encoded frames, keyed by descriptor GUID.

    A servent that fans the same descriptor out -- originating to every
    ultrapeer, probing the mesh round after round in a dynamic query --
    used to call :func:`frame` (a full body re-encode) once per
    recipient.  The cache keeps the encoded body per GUID plus a memo
    of every ``(ttl, hops)`` variant already stamped: fanning a
    descriptor out at the same ttl/hops -- the overwhelmingly common
    case, since one forwarding decision feeds a whole neighbour loop
    -- returns the exact cached ``bytes`` object, copying nothing.  A
    new variant pays one buffer copy and two byte pokes
    (:func:`patch_ttl_hops`), never a body re-encode or a three-slice
    splice.  Reuse demands the *same message object* (checked by
    identity, which is deterministic and never hashes large payloads);
    a different message under a reused GUID simply overwrites the
    entry.

    ``hits``/``misses``/``patches`` feed the ``bench_dataplane`` leg
    and make both the encode-once and the patch-once savings
    observable in tests.
    """

    __slots__ = ("_entries", "capacity", "hits", "misses", "patches")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        #: guid -> (message object, {(ttl, hops): encoded frame bytes}).
        #: The variant map stays tiny: ttl+hops is bounded by protocol
        #: rule, so a descriptor sees a handful of stampings at most.
        self._entries: dict = {}
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        #: header stampings that built a new variant buffer (a hit
        #: that could not reuse a memoized stamping verbatim)
        self.patches = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of :meth:`frame` calls served without re-encoding."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def frame(self, guid: bytes, message, ttl: int, hops: int = 0) -> bytes:
        """Encoded wire bytes for ``message``, body encoded at most once.

        Byte-identical to ``frame(guid, message, ttl, hops)`` for any
        (guid, message) pair, cached or not.
        """
        entry = self._entries.get(guid)
        key = (ttl, hops)
        if entry is not None and entry[0] is message:
            self.hits += 1
            variants = entry[1]
            cached = variants.get(key)
            if cached is None:
                self.patches += 1
                base = next(iter(variants.values()))
                cached = variants[key] = patch_ttl_hops(base, ttl, hops)
            return cached
        self.misses += 1
        encoded = frame(guid, message, ttl=ttl, hops=hops)
        entries = self._entries
        if guid not in entries and len(entries) >= self.capacity:
            # FIFO eviction: dict preserves insertion order, so the
            # oldest GUID -- the one least likely to fan out again --
            # goes first, deterministically
            del entries[next(iter(entries))]
        entries[guid] = (message, {key: encoded})
        return encoded


def decode_payload(header: Header, payload: bytes):
    """Decode a payload according to the header's descriptor type."""
    decoder = _DECODERS.get(header.descriptor_type)
    if decoder is None:
        raise MessageError(
            f"unknown descriptor type 0x{header.descriptor_type:02x}")
    return decoder(payload)
