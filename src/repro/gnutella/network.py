"""The Gnutella overlay facade.

Bundles the simulator, transport, servents and topology into one object the
measurement layer talks to: create a crawler leaf, issue queries, and fetch
file content from a responder (the HTTP/PUSH download path, modelled as a
direct content request that succeeds only if the responder is online and
actually serves that content identity).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..files.payload import Blob
from ..malware.infection import dropper_archive_blob, strain_body_blob
from ..malware.strain import Behaviour, MalwareStrain
from ..simnet.addresses import HostAddress
from ..simnet.kernel import Simulator
from ..simnet.rng import SeededStream
from ..simnet.transport import Transport
from .guid import guid_hex
from .servent import GnutellaServent
from .topology import TopologyConfig, attach_leaf, build_topology

__all__ = ["GnutellaNetwork"]


class GnutellaNetwork:
    """A wired Gnutella overlay plus content-fetch semantics."""

    def __init__(self, sim: Simulator, transport: Transport,
                 ultrapeers: Sequence[GnutellaServent],
                 leaves: Sequence[GnutellaServent],
                 strains: Iterable[MalwareStrain] = ()) -> None:
        self.sim = sim
        self.transport = transport
        self.ultrapeers = list(ultrapeers)
        self.leaves = list(leaves)
        self.servents: Dict[str, GnutellaServent] = {
            servent.endpoint_id: servent
            for servent in [*self.ultrapeers, *self.leaves]
        }
        self._by_guid: Dict[str, str] = {
            guid_hex(servent.servent_guid): servent.endpoint_id
            for servent in self.servents.values()
        }
        self._malware_blobs = self._index_malware_blobs(strains)

    @staticmethod
    def _index_malware_blobs(strains: Iterable[MalwareStrain],
                             ) -> Dict[str, tuple]:
        index: Dict[str, tuple] = {}
        for strain in strains:
            for variant_index in range(len(strain.sizes)):
                body = strain_body_blob(strain, variant_index)
                index[body.sha1_urn()] = (strain.strain_id, body)
                if strain.behaviour is Behaviour.TROJAN_DROPPER:
                    archive = dropper_archive_blob(strain, variant_index)
                    index[archive.sha1_urn()] = (strain.strain_id, archive)
        return index

    # -- wiring --------------------------------------------------------------
    @staticmethod
    def wire(ultrapeers: Sequence[GnutellaServent],
             leaves: Sequence[GnutellaServent], stream: SeededStream,
             config: Optional[TopologyConfig] = None) -> Dict[str, List[str]]:
        """Build the overlay topology (delegates to :mod:`topology`)."""
        return build_topology(ultrapeers, leaves, stream,
                              config or TopologyConfig())

    # -- lookup ----------------------------------------------------------------
    def servent_by_guid(self, servent_guid: bytes) -> Optional[GnutellaServent]:
        """Ground-truth resolution of a QueryHit's servent GUID."""
        endpoint_id = self._by_guid.get(guid_hex(servent_guid))
        return self.servents.get(endpoint_id) if endpoint_id else None

    def online_count(self) -> int:
        """Servents whose session is currently up."""
        return sum(1 for servent in self.servents.values()
                   if servent.is_online())

    # -- crawler -----------------------------------------------------------
    def create_crawler(self, endpoint_id: str, address: HostAddress,
                       attach_to: int = 3,
                       user_agent: str = "LimeWire/4.12.3 (instrumented)",
                       ) -> GnutellaServent:
        """Create the instrumented measurement leaf and attach it."""
        crawler = GnutellaServent(
            sim=self.sim, transport=self.transport,
            endpoint_id=endpoint_id, address=address, role="leaf",
            user_agent=user_agent,
        )
        stream = self.sim.stream("crawler:attach")
        shields = stream.sample(self.ultrapeers,
                                min(attach_to, len(self.ultrapeers)))
        for ultrapeer in shields:
            attach_leaf(crawler, ultrapeer)
        self.servents[endpoint_id] = crawler
        self._by_guid[guid_hex(crawler.servent_guid)] = endpoint_id
        return crawler

    def servent_by_address(self, address: str,
                           port: int) -> Optional[GnutellaServent]:
        """Resolve an advertised (address, port) to a servent."""
        for servent in self.servents.values():
            if (servent.advertised_address == address
                    and servent.port == port):
                return servent
        return None

    def x_try_header_for(self, ultrapeer: GnutellaServent) -> str:
        """The X-Try-Ultrapeers value ``ultrapeer`` would hand out."""
        from .hostcache import CachedHost, format_x_try_ultrapeers
        neighbours = []
        for peer_id in ultrapeer.peer_ids:
            peer = self.servents.get(peer_id)
            if peer is not None and peer.role == "ultrapeer":
                neighbours.append(CachedHost(
                    address=peer.advertised_address, port=peer.port,
                    last_seen=self.sim.now, ultrapeer=True))
        return format_x_try_ultrapeers(neighbours)

    def bootstrap_crawler(self, endpoint_id: str, address: HostAddress,
                          seeds: int = 2, attach_to: int = 3,
                          user_agent: str =
                          "LimeWire/4.12.3 (instrumented)",
                          ) -> GnutellaServent:
        """Create the crawler via the real discovery flow.

        Instead of being handed ultrapeers, the crawler contacts a couple
        of seed hosts, learns more ultrapeers from their
        ``X-Try-Ultrapeers`` handshake headers (parsed through the real
        header codec), fills its host cache, and attaches to the freshest
        candidates.  Incoming Pongs keep feeding the cache afterwards.
        """
        from .handshake import HandshakeMessage, accept_response
        from .hostcache import HostCache, parse_x_try_ultrapeers

        crawler = GnutellaServent(
            sim=self.sim, transport=self.transport,
            endpoint_id=endpoint_id, address=address, role="leaf",
            user_agent=user_agent,
        )
        cache = HostCache()
        crawler.host_cache = cache
        stream = self.sim.stream("crawler:bootstrap")
        seed_ultrapeers = stream.sample(self.ultrapeers,
                                        min(seeds, len(self.ultrapeers)))
        for seed in seed_ultrapeers:
            response = accept_response(seed.user_agent, ultrapeer=True)
            augmented = HandshakeMessage(
                response.start_line,
                {**response.headers,
                 "X-Try-Ultrapeers": self.x_try_header_for(seed)})
            decoded = HandshakeMessage.decode(augmented.encode())
            for host in parse_x_try_ultrapeers(
                    decoded.header("X-Try-Ultrapeers"), self.sim.now):
                cache.add(host)

        attached = 0
        for candidate in cache.candidates(len(cache)):
            if attached >= attach_to:
                break
            ultrapeer = self.servent_by_address(candidate.address,
                                                candidate.port)
            if ultrapeer is None or ultrapeer.role != "ultrapeer":
                cache.forget(candidate.address, candidate.port)
                continue
            attach_leaf(crawler, ultrapeer)
            attached += 1
        # fall back to seeds if the advertised neighbours were too few
        for seed in seed_ultrapeers:
            if attached >= attach_to:
                break
            if seed.endpoint_id not in crawler.peer_ids:
                attach_leaf(crawler, seed)
                attached += 1

        self.servents[endpoint_id] = crawler
        self._by_guid[guid_hex(crawler.servent_guid)] = endpoint_id
        crawler.send_ping()  # keep discovering through Pongs
        return crawler

    # -- downloads ---------------------------------------------------------
    #: probability a host's upload slots are saturated at request time
    BUSY_PROBABILITY = 0.05
    #: PUSH descriptors give up after this many overlay hops
    MAX_PUSH_HOPS = 8

    def route_push(self, requester_id: str, responder_guid: bytes,
                   file_index: int = 0) -> bool:
        """Route a PUSH descriptor to a NATed responder hop by hop.

        Retraces the push routes recorded while the QueryHit travelled to
        the requester; every hop re-encodes and re-parses the Push
        descriptor, and the walk fails if any hop is offline or has
        forgotten the route -- the cases where a NATed responder is
        unreachable in practice.  Returns True when the responder
        received the PUSH (and would connect back for the HTTP exchange).
        """
        from .messages import Push, decode_payload, frame as frame_fn, \
            parse_frame
        from .guid import new_guid

        requester = self.servents.get(requester_id)
        if requester is None or not requester.is_online():
            return False
        target = self.servent_by_guid(responder_guid)
        if target is None:
            return False
        if getattr(self.transport, "shard_active", False):
            # shard mode: push routes were recorded while QueryHits
            # travelled -- state only the hops' owner shards observed,
            # so the local route chain may be a stale replica.  The
            # measurement-relevant outcome is whether the responder is
            # reachable, decided draw-free from replicated session
            # state (set_online fires on every shard).
            return target.is_online()
        push = Push(servent_guid=responder_guid, file_index=file_index,
                    address=requester.advertised_address,
                    port=requester.port)
        guid = new_guid(requester.stream)
        current = requester
        for _ in range(self.MAX_PUSH_HOPS):
            if current.servent_guid == responder_guid:
                return current.is_online()
            next_hop_id = current.push_next_hop(responder_guid)
            if next_hop_id is None:
                return False
            next_hop = self.servents.get(next_hop_id)
            if next_hop is None or not next_hop.is_online():
                return False
            # exercise the codec at every hop, as real forwarding would
            header, payload = parse_frame(
                frame_fn(guid, push, ttl=self.MAX_PUSH_HOPS, hops=0))
            decode_payload(header, payload)
            current = next_hop
        return False

    def _resolve_content(self, servent: GnutellaServent,
                         sha1_urn: str) -> Optional[Blob]:
        shared = servent.library.by_urn(sha1_urn)
        if shared is not None:
            return shared.blob
        entry = self._malware_blobs.get(sha1_urn)
        if entry is not None:
            strain_id, blob = entry
            infection = servent.infection
            if infection is not None and infection.carries(strain_id):
                return blob
        return None

    def fetch(self, responder_guid: bytes, sha1_urn: str,
              requester_id: Optional[str] = None) -> Optional[Blob]:
        """Attempt to retrieve content from a responder by identity.

        Runs the real HTTP exchange: the request/response heads are
        encoded and parsed through :mod:`repro.transfer`.  A NATed
        responder cannot accept inbound connections, so when
        ``requester_id`` is given the fetch first routes a PUSH
        descriptor to it (see :meth:`route_push`) and fails if the route
        is dead; without a requester the NATed fetch fails outright.
        Returns 503-busy occasionally and 404 when the host does not
        serve that urn; echo worms serve their own body for any name
        they advertised.
        """
        from ..transfer.http import HttpRequest, HttpResponse, \
            gnutella_urn_request
        from ..transfer.server import serve_request

        servent = self.servent_by_guid(responder_guid)
        if servent is None or not servent.is_online():
            return None  # connection refused
        if servent.behind_nat:
            if requester_id is None:
                return None  # no inbound path to a NATed host
            if not self.route_push(requester_id, responder_guid):
                return None  # PUSH route dead
        request = HttpRequest.decode(
            gnutella_urn_request(sha1_urn).encode())
        if getattr(self.transport, "shard_active", False):
            # shard mode: the servent's own stream also advances on its
            # owner shard's message handling, which the measurement
            # shard does not replay -- draw busyness from a dedicated
            # per-endpoint stream whose order is the fetch order,
            # invariant under the partition
            busy_stream = self.sim.stream(
                f"shard:fetch:{servent.endpoint_id}")
        else:
            busy_stream = servent.stream
        response_head, blob = serve_request(
            request,
            resolve=lambda urn: self._resolve_content(servent, urn),
            is_busy=busy_stream.bernoulli(self.BUSY_PROBABILITY),
            server=servent.user_agent)
        response = HttpResponse.decode(response_head.encode())
        if not response.ok or blob is None:
            return None
        assert response.content_length() == blob.size
        return blob
