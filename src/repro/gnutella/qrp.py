"""Query Routing Protocol (QRP).

Leaves summarize their shared keywords into a hash bitmap (the query route
table, QRT) and send it to their ultrapeers; an ultrapeer forwards a query
to a leaf only when *every* query keyword hashes into a set slot.  This is
the mechanism that decides which leaves see which queries -- and the one
query-echo worms subverted by advertising an all-ones table so that every
query reached them.

The hash is the canonical QRP function (multiplicative hashing with
A = 0x4F1BBCDC, taking the top ``bits`` bits), and route tables ship as
RESET + uncompressed PATCH messages framed per the QRP spec's descriptor
type 0x30.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, List, Tuple

from ..files.names import tokenize

__all__ = ["DEFAULT_TABLE_BITS", "qrp_hash", "QueryRouteTable",
           "QrpReset", "QrpPatch", "encode_qrp", "decode_qrp"]

#: 2^16 slots, Limewire's default leaf table size.
DEFAULT_TABLE_BITS = 16

_GOLDEN = 0x4F1BBCDC  # 2^32 * (sqrt(5)-1)/2, per the QRP spec
_MIN_TOKEN_LENGTH = 3  # servents ignored 1-2 letter tokens


def qrp_hash(token: str, bits: int = DEFAULT_TABLE_BITS) -> int:
    """Hash a keyword to a table slot.

    Bytes of the lowercased token are XOR-folded into a 32-bit word (each
    byte shifted by 8*(i mod 4)), then multiplicatively hashed.
    """
    if not 0 < bits <= 32:
        raise ValueError(f"bits must be in 1..32, got {bits!r}")
    folded = 0
    for index, byte in enumerate(token.lower().encode("utf-8")):
        folded ^= (byte & 0xFF) << ((index % 4) * 8)
    product = (folded * _GOLDEN) & 0xFFFFFFFF
    return product >> (32 - bits)


def _routable_tokens(text: str) -> List[str]:
    return [token for token in tokenize(text)
            if len(token) >= _MIN_TOKEN_LENGTH]


class QueryRouteTable:
    """A leaf's keyword bitmap."""

    def __init__(self, bits: int = DEFAULT_TABLE_BITS) -> None:
        self.bits = bits
        self.size = 1 << bits
        self._slots = bytearray(self.size)
        self._all_ones = False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryRouteTable):
            return NotImplemented
        return (self.bits == other.bits and self._all_ones == other._all_ones
                and self._slots == other._slots)

    @property
    def set_count(self) -> int:
        """Number of set slots (diagnostics / tests)."""
        return self.size if self._all_ones else sum(self._slots)

    def add_keyword(self, token: str) -> None:
        """Mark one keyword present."""
        self._slots[qrp_hash(token, self.bits)] = 1

    def add_name(self, name: str) -> None:
        """Mark every routable token of a file name."""
        for token in _routable_tokens(name):
            self.add_keyword(token)

    def build_from(self, names: Iterable[str]) -> None:
        """(Re)build from a library's file names."""
        self._slots = bytearray(self.size)
        self._all_ones = False
        for name in names:
            self.add_name(name)

    def mark_all(self) -> None:
        """Set every slot -- the echo-worm trick to receive all queries."""
        self._slots = bytearray(b"\x01" * self.size)
        self._all_ones = True

    def might_match(self, query: str) -> bool:
        """QRP forwarding decision for ``query``.

        True when every routable query token is present.  Queries with no
        routable token are conservatively forwarded (spec behaviour for
        urn-only queries).
        """
        if self._all_ones:
            return True
        tokens = _routable_tokens(query)
        if not tokens:
            return True
        return all(self._slots[qrp_hash(token, self.bits)] for token in tokens)

    # -- wire form ---------------------------------------------------------
    def to_messages(self, fragment_slots: int = 2048,
                    compress: bool = False) -> List:
        """Serialize as one RESET plus PATCH fragments.

        ``compress=True`` marks the patches zlib-compressed (servents
        negotiated this; mostly-empty leaf tables compress enormously).
        """
        compressor = COMPRESSOR_ZLIB if compress else COMPRESSOR_NONE
        patches: List[QrpPatch] = []
        fragments = [self._slots[start:start + fragment_slots]
                     for start in range(0, self.size, fragment_slots)]
        for index, fragment in enumerate(fragments):
            patches.append(QrpPatch(
                sequence_number=index + 1,
                sequence_count=len(fragments),
                entry_bits=8,
                data=bytes(fragment),
                compressor=compressor,
            ))
        return [QrpReset(table_length=self.size, infinity=7), *patches]

    @staticmethod
    def from_messages(messages: Iterable) -> "QueryRouteTable":
        """Rebuild a table from a RESET + PATCH stream."""
        table: QueryRouteTable = QueryRouteTable()
        cursor = 0
        for message in messages:
            if isinstance(message, QrpReset):
                bits = message.table_length.bit_length() - 1
                table = QueryRouteTable(bits=bits)
                cursor = 0
            elif isinstance(message, QrpPatch):
                end = cursor + len(message.data)
                if end > table.size:
                    raise ValueError("QRP patch overruns table")
                table._slots[cursor:end] = message.data
                cursor = end
            else:
                raise TypeError(f"not a QRP message: {message!r}")
        table._all_ones = all(table._slots)
        return table


@dataclass(frozen=True)
class QrpReset:
    """QRP RESET variant: clears the table and declares its geometry."""

    table_length: int
    infinity: int

    variant = 0x00

    def encode(self) -> bytes:
        return struct.pack("<BIB", self.variant, self.table_length,
                           self.infinity)


#: QRP patch compressor codes (per the spec)
COMPRESSOR_NONE = 0x00
COMPRESSOR_ZLIB = 0x01


@dataclass(frozen=True)
class QrpPatch:
    """QRP PATCH variant (8-bit entries; optional zlib compression).

    ``data`` always holds the *uncompressed* slot bytes; compression is
    applied at encode time and undone at decode time, so equality and
    table reconstruction are independent of the wire compressor.
    """

    sequence_number: int
    sequence_count: int
    entry_bits: int
    data: bytes
    compressor: int = COMPRESSOR_NONE

    variant = 0x01

    def encode(self) -> bytes:
        if self.compressor == COMPRESSOR_ZLIB:
            import zlib
            body = zlib.compress(self.data, level=6)
        elif self.compressor == COMPRESSOR_NONE:
            body = self.data
        else:
            raise ValueError(
                f"unsupported QRP compressor {self.compressor}")
        return struct.pack("<BBBBB", self.variant, self.sequence_number,
                           self.sequence_count, self.compressor,
                           self.entry_bits) + body


def encode_qrp(message) -> bytes:
    """Encode either QRP variant to payload bytes."""
    return message.encode()


def decode_qrp(payload: bytes):
    """Decode a QRP payload into :class:`QrpReset` or :class:`QrpPatch`."""
    if not payload:
        raise ValueError("empty QRP payload")
    variant = payload[0]
    if variant == QrpReset.variant:
        if len(payload) < 6:
            raise ValueError("short QRP reset")
        table_length, infinity = struct.unpack_from("<IB", payload, 1)
        return QrpReset(table_length=table_length, infinity=infinity)
    if variant == QrpPatch.variant:
        if len(payload) < 5:
            raise ValueError("short QRP patch")
        sequence_number, sequence_count, compressor, entry_bits = payload[1:5]
        body = payload[5:]
        if compressor == COMPRESSOR_ZLIB:
            import zlib
            try:
                body = zlib.decompress(body)
            except zlib.error as exc:
                raise ValueError("corrupt zlib QRP patch") from exc
        elif compressor != COMPRESSOR_NONE:
            raise ValueError(f"unsupported QRP compressor {compressor}")
        return QrpPatch(sequence_number=sequence_number,
                        sequence_count=sequence_count,
                        entry_bits=entry_bits, data=body,
                        compressor=compressor)
    raise ValueError(f"unknown QRP variant {variant}")
