"""Gnutella 0.6 protocol implementation over the simulated network.

Binary descriptor codec (:mod:`messages`), GUIDs (:mod:`guid`), query
routing (:mod:`qrp`), the 0.6 handshake (:mod:`handshake`), servent
behaviour (:mod:`servent`), topology construction (:mod:`topology`) and
the overlay facade (:mod:`network`).  Substitutes for the live network an
instrumented Limewire measured in 2006.
"""

from .constants import (DEFAULT_PORT, DEFAULT_TTL, MAX_RESULTS_PER_HIT,
                        MAX_TTL)
from .guid import guid_hex, is_modern_guid, new_guid
from .handshake import (HandshakeError, HandshakeMessage, accept_response,
                        connect_request, final_ack, negotiate_roles,
                        reject_response)
from .messages import (Header, HitResult, MessageError, Ping, Pong, Push,
                       Query, QueryHit, decode_payload, frame, parse_frame)
from .network import GnutellaNetwork
from .qrp import QueryRouteTable, QrpPatch, QrpReset, qrp_hash
from .servent import GnutellaServent, ServentStats
from .topology import TopologyConfig, attach_leaf, build_topology, link_peers

__all__ = [
    "DEFAULT_PORT", "DEFAULT_TTL", "MAX_RESULTS_PER_HIT", "MAX_TTL",
    "guid_hex", "is_modern_guid", "new_guid",
    "HandshakeError", "HandshakeMessage", "accept_response",
    "connect_request", "final_ack", "negotiate_roles", "reject_response",
    "Header", "HitResult", "MessageError", "Ping", "Pong", "Push", "Query",
    "QueryHit", "decode_payload", "frame", "parse_frame",
    "GnutellaNetwork",
    "QueryRouteTable", "QrpPatch", "QrpReset", "qrp_hash",
    "GnutellaServent", "ServentStats",
    "TopologyConfig", "attach_leaf", "build_topology", "link_peers",
]
