"""Host cache and bootstrap: how a servent finds ultrapeers to join.

Real servents kept a cache of known hosts fed by two sources: Pong
descriptors (each advertises an address, port and library size) and the
``X-Try-Ultrapeers`` header that busy/rejecting ultrapeers attach to
handshake responses.  A joining node works through cache entries freshest
first until enough connections stick.

The cache is bounded, freshness-ordered, and deduplicates by (address,
port); the bootstrap helper on :class:`~repro.gnutella.network.
GnutellaNetwork` drives a full discovery round through the real Ping/Pong
and handshake code paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .messages import Pong

__all__ = ["CachedHost", "HostCache", "parse_x_try_ultrapeers",
           "format_x_try_ultrapeers"]


@dataclass(frozen=True)
class CachedHost:
    """One known host."""

    address: str
    port: int
    last_seen: float
    ultrapeer: bool
    file_count: int = 0

    @property
    def key(self) -> Tuple[str, int]:
        """Dedup key."""
        return (self.address, self.port)


class HostCache:
    """Bounded, freshness-ordered cache of known hosts."""

    def __init__(self, capacity: int = 200) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self._hosts: Dict[Tuple[str, int], CachedHost] = {}

    def __len__(self) -> int:
        return len(self._hosts)

    def add(self, host: CachedHost) -> None:
        """Insert or refresh a host; evicts the stalest when full."""
        existing = self._hosts.get(host.key)
        if existing is not None and existing.last_seen > host.last_seen:
            return  # stale information about a host we know better
        self._hosts[host.key] = host
        if len(self._hosts) > self.capacity:
            stalest = min(self._hosts.values(),
                          key=lambda cached: cached.last_seen)
            del self._hosts[stalest.key]

    def add_pong(self, pong: Pong, now: float,
                 ultrapeer: bool = True) -> None:
        """Learn a host from a Pong descriptor."""
        self.add(CachedHost(address=pong.address, port=pong.port,
                            last_seen=now, ultrapeer=ultrapeer,
                            file_count=pong.file_count))

    def candidates(self, count: int,
                   ultrapeers_only: bool = True) -> List[CachedHost]:
        """The freshest ``count`` hosts to try connecting to."""
        hosts = [host for host in self._hosts.values()
                 if host.ultrapeer or not ultrapeers_only]
        hosts.sort(key=lambda cached: -cached.last_seen)
        return hosts[:count]

    def forget(self, address: str, port: int) -> None:
        """Drop a host that refused or failed."""
        self._hosts.pop((address, port), None)


def format_x_try_ultrapeers(hosts: List[CachedHost]) -> str:
    """Render the ``X-Try-Ultrapeers`` header value."""
    return ",".join(f"{host.address}:{host.port}" for host in hosts)


def parse_x_try_ultrapeers(value: str, now: float) -> List[CachedHost]:
    """Parse an ``X-Try-Ultrapeers`` header into cache entries.

    Malformed entries are skipped, as servents did -- the header came
    from arbitrary peers.
    """
    hosts: List[CachedHost] = []
    for chunk in value.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        address, separator, port_text = chunk.rpartition(":")
        if not separator or not port_text.isdigit():
            continue
        port = int(port_text)
        if not 0 < port < 65536:
            continue
        hosts.append(CachedHost(address=address, port=port,
                                last_seen=now, ultrapeer=True))
    return hosts
