"""The Gnutella 0.6 connection handshake.

Three HTTP-style header exchanges establish a connection and negotiate
roles:

1. initiator: ``GNUTELLA CONNECT/0.6`` + headers
2. acceptor:  ``GNUTELLA/0.6 200 OK`` + headers (or a rejection code)
3. initiator: ``GNUTELLA/0.6 200 OK`` + final headers

The headers that matter for the reproduction are ``X-Ultrapeer`` (role
claim), ``X-Ultrapeer-Needed`` (leaf-guidance), ``X-Query-Routing`` (QRP
support) and ``User-Agent`` (the servent census the analysis can report).
The codec is text-faithful so tests can exercise real header parsing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["HandshakeError", "HandshakeMessage", "connect_request",
           "accept_response", "reject_response", "final_ack",
           "negotiate_roles"]

_CONNECT_LINE = "GNUTELLA CONNECT/0.6"
_RESPONSE_PREFIX = "GNUTELLA/0.6"
_CRLF = "\r\n"


class HandshakeError(ValueError):
    """Raised on malformed or rejected handshakes."""


@dataclass(frozen=True)
class HandshakeMessage:
    """One leg of the handshake: a start line plus headers."""

    start_line: str
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self) -> bytes:
        lines = [self.start_line]
        lines.extend(f"{name}: {value}" for name, value in
                     sorted(self.headers.items()))
        return (_CRLF.join(lines) + _CRLF + _CRLF).encode("ascii")

    @staticmethod
    def decode(raw: bytes) -> "HandshakeMessage":
        try:
            text = raw.decode("ascii")
        except UnicodeDecodeError as exc:
            raise HandshakeError("handshake is not ASCII") from exc
        if not text.endswith(_CRLF + _CRLF):
            raise HandshakeError("handshake not terminated by blank line")
        lines = text[:-len(_CRLF + _CRLF)].split(_CRLF)
        start_line, header_lines = lines[0], lines[1:]
        headers: Dict[str, str] = {}
        for line in header_lines:
            name, separator, value = line.partition(":")
            if not separator:
                raise HandshakeError(f"malformed header line {line!r}")
            headers[name.strip()] = value.strip()
        return HandshakeMessage(start_line=start_line, headers=headers)

    @property
    def is_ok(self) -> bool:
        """True for a ``200`` response leg."""
        return self.start_line.startswith(f"{_RESPONSE_PREFIX} 200")

    def header(self, name: str, default: str = "") -> str:
        """Case-insensitive header lookup."""
        for key, value in self.headers.items():
            if key.lower() == name.lower():
                return value
        return default


def connect_request(user_agent: str, ultrapeer: bool,
                    listen_ip: str, port: int) -> HandshakeMessage:
    """Build leg 1 (initiator's offer)."""
    return HandshakeMessage(_CONNECT_LINE, {
        "User-Agent": user_agent,
        "X-Ultrapeer": "True" if ultrapeer else "False",
        "X-Query-Routing": "0.1",
        "Listen-IP": f"{listen_ip}:{port}",
    })


def accept_response(user_agent: str, ultrapeer: bool,
                    ultrapeer_needed: Optional[bool] = None) -> HandshakeMessage:
    """Build leg 2 (acceptor's 200 OK)."""
    headers = {
        "User-Agent": user_agent,
        "X-Ultrapeer": "True" if ultrapeer else "False",
        "X-Query-Routing": "0.1",
    }
    if ultrapeer_needed is not None:
        headers["X-Ultrapeer-Needed"] = "True" if ultrapeer_needed else "False"
    return HandshakeMessage(f"{_RESPONSE_PREFIX} 200 OK", headers)


def reject_response(code: int, reason: str) -> HandshakeMessage:
    """Build a rejecting leg 2 (e.g. ``503 Shielded leaf node``)."""
    return HandshakeMessage(f"{_RESPONSE_PREFIX} {code} {reason}")


def final_ack(user_agent: str) -> HandshakeMessage:
    """Build leg 3 (initiator's confirmation)."""
    return HandshakeMessage(f"{_RESPONSE_PREFIX} 200 OK",
                            {"User-Agent": user_agent})


def negotiate_roles(request: HandshakeMessage,
                    response: HandshakeMessage) -> Tuple[str, str]:
    """Derive the (initiator_role, acceptor_role) of a completed handshake.

    Roles are ``"ultrapeer"`` or ``"leaf"``.  A leaf-guided initiator
    (``X-Ultrapeer-Needed: False`` from an ultrapeer acceptor) demotes to
    leaf, matching 0.6 leaf-guidance semantics.
    """
    if not response.is_ok:
        raise HandshakeError(f"connection rejected: {response.start_line!r}")
    initiator_up = request.header("X-Ultrapeer").lower() == "true"
    acceptor_up = response.header("X-Ultrapeer").lower() == "true"
    guidance = response.header("X-Ultrapeer-Needed").lower()
    if initiator_up and acceptor_up and guidance == "false":
        initiator_up = False
    return ("ultrapeer" if initiator_up else "leaf",
            "ultrapeer" if acceptor_up else "leaf")
