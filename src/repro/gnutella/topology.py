"""Topology construction: the ultrapeer mesh and leaf attachments.

2006 Gnutella was a two-tier overlay: a connected mesh of ultrapeers, each
shielding tens of leaves.  The builder wires a ring-plus-random-chords
ultrapeer graph (connected by construction, low diameter like the real
mesh), attaches each leaf to a few ultrapeers, and runs the actual 0.6
handshake and QRP table exchange *through the codecs* for every link --
synchronously at build time, so setup does not flood the event queue.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..simnet.rng import SeededStream
from .handshake import (HandshakeMessage, accept_response, connect_request,
                        final_ack, negotiate_roles)
from .qrp import QueryRouteTable, decode_qrp, encode_qrp
from .servent import GnutellaServent

__all__ = ["TopologyConfig", "link_peers", "attach_leaf", "build_topology",
           "sync_leaf_qrt"]


class TopologyConfig:
    """Mesh shape parameters (scaled-down 2006 defaults)."""

    def __init__(self, ultrapeer_degree: int = 6,
                 leaf_attachments: int = 2) -> None:
        if ultrapeer_degree < 2:
            raise ValueError("ultrapeer mesh needs degree >= 2")
        if leaf_attachments < 1:
            raise ValueError("leaves need at least one ultrapeer")
        self.ultrapeer_degree = ultrapeer_degree
        self.leaf_attachments = leaf_attachments


def _run_handshake(initiator: GnutellaServent,
                   acceptor: GnutellaServent) -> None:
    """Execute the three handshake legs through encode/decode."""
    leg1 = HandshakeMessage.decode(connect_request(
        initiator.user_agent, ultrapeer=initiator.role == "ultrapeer",
        listen_ip=initiator.advertised_address, port=initiator.port,
    ).encode())
    leg2 = HandshakeMessage.decode(accept_response(
        acceptor.user_agent, ultrapeer=acceptor.role == "ultrapeer",
        ultrapeer_needed=None if initiator.role == "leaf" else True,
    ).encode())
    negotiate_roles(leg1, leg2)  # raises on rejection
    HandshakeMessage.decode(final_ack(initiator.user_agent).encode())


def sync_leaf_qrt(leaf: GnutellaServent, ultrapeer: GnutellaServent) -> None:
    """Ship the leaf's QRT to an ultrapeer through the QRP wire form.

    Also used at runtime when a leaf's library changes (e.g. a latent host
    becomes infected and must re-advertise an all-ones table).
    """
    wire = [encode_qrp(message) for message in
            leaf.build_route_table().to_messages()]
    received = [decode_qrp(payload) for payload in wire]
    ultrapeer.install_leaf_table(leaf.endpoint_id,
                                 QueryRouteTable.from_messages(received))


_sync_qrp = sync_leaf_qrt  # internal alias used by the builders below


def link_peers(a: GnutellaServent, b: GnutellaServent) -> None:
    """Create a bidirectional ultrapeer-ultrapeer link."""
    if a.endpoint_id == b.endpoint_id:
        raise ValueError("cannot link a servent to itself")
    if b.endpoint_id in a.peer_ids:
        return
    _run_handshake(a, b)
    a.peer_ids.append(b.endpoint_id)
    b.peer_ids.append(a.endpoint_id)


def attach_leaf(leaf: GnutellaServent, ultrapeer: GnutellaServent) -> None:
    """Attach a leaf under an ultrapeer shield, including QRP sync."""
    if ultrapeer.role != "ultrapeer":
        raise ValueError(f"{ultrapeer.endpoint_id} is not an ultrapeer")
    if ultrapeer.endpoint_id in leaf.peer_ids:
        return
    _run_handshake(leaf, ultrapeer)
    leaf.peer_ids.append(ultrapeer.endpoint_id)
    _sync_qrp(leaf, ultrapeer)


def build_topology(ultrapeers: Sequence[GnutellaServent],
                   leaves: Sequence[GnutellaServent],
                   stream: SeededStream,
                   config: TopologyConfig) -> Dict[str, List[str]]:
    """Wire the whole overlay; returns an adjacency map for inspection."""
    count = len(ultrapeers)
    if count < 2:
        raise ValueError("need at least two ultrapeers")

    # ring for guaranteed connectivity
    for index, ultrapeer in enumerate(ultrapeers):
        link_peers(ultrapeer, ultrapeers[(index + 1) % count])
    # random chords up to the target degree
    for ultrapeer in ultrapeers:
        attempts = 0
        while (len(ultrapeer.peer_ids) < config.ultrapeer_degree
               and attempts < 20 * config.ultrapeer_degree):
            attempts += 1
            other = stream.choice(ultrapeers)
            if other.endpoint_id == ultrapeer.endpoint_id:
                continue
            if len(other.peer_ids) >= config.ultrapeer_degree + 2:
                continue
            link_peers(ultrapeer, other)

    for leaf in leaves:
        shields = stream.sample(list(ultrapeers),
                                min(config.leaf_attachments, count))
        for ultrapeer in shields:
            attach_leaf(leaf, ultrapeer)

    adjacency = {up.endpoint_id: list(up.peer_ids) for up in ultrapeers}
    adjacency.update({leaf.endpoint_id: list(leaf.peer_ids)
                      for leaf in leaves})
    return adjacency
