"""Gnutella 0.6 protocol constants.

Values follow the Gnutella protocol specification v0.6 (RFC-draft by
Klingberg & Manfredi) and the de-facto conventions of 2006 servents
(Limewire 4.x): 23-byte descriptor header, descriptor type codes, default
TTLs and the dynamic-query limits ultrapeers applied.
"""

from __future__ import annotations

__all__ = [
    "HEADER_LENGTH", "DESCRIPTOR_PING", "DESCRIPTOR_PONG",
    "DESCRIPTOR_BYE", "DESCRIPTOR_PUSH",
    "DESCRIPTOR_QUERY", "DESCRIPTOR_QUERY_HIT", "DESCRIPTOR_QRP",
    "DEFAULT_TTL", "MAX_TTL", "MAX_PAYLOAD_LENGTH", "DEFAULT_PORT",
    "MAX_RESULTS_PER_HIT", "QHD_VENDOR_LIMEWIRE", "QHD_VENDOR_GIFT",
    "SPEED_MODEM_KBPS", "SPEED_CABLE_KBPS", "SPEED_T1_KBPS",
]

#: Descriptor header: GUID(16) + type(1) + TTL(1) + hops(1) + length(4).
HEADER_LENGTH = 23

DESCRIPTOR_PING = 0x00
DESCRIPTOR_PONG = 0x01
DESCRIPTOR_BYE = 0x02
DESCRIPTOR_QRP = 0x30
DESCRIPTOR_PUSH = 0x40
DESCRIPTOR_QUERY = 0x80
DESCRIPTOR_QUERY_HIT = 0x81

#: Limewire 4.x initialized queries with TTL 3-4 under dynamic querying.
DEFAULT_TTL = 4
#: Descriptors arriving with TTL+hops above this are dropped as abusive.
MAX_TTL = 7
#: Sanity cap on payload length (spec suggests dropping > 4 kB payloads
#: except query hits, which may run larger).
MAX_PAYLOAD_LENGTH = 64 * 1024

DEFAULT_PORT = 6346

#: Servents packed at most this many results into one QueryHit.
MAX_RESULTS_PER_HIT = 64

QHD_VENDOR_LIMEWIRE = b"LIME"
QHD_VENDOR_GIFT = b"GIFT"

SPEED_MODEM_KBPS = 56
SPEED_CABLE_KBPS = 1_000
SPEED_T1_KBPS = 1_544
