"""16-byte Gnutella GUIDs.

GUIDs identify descriptors (for duplicate suppression and reverse-path
routing) and servents (in the QueryHit trailer, used by PUSH).  Modern
servents set byte 8 to 0xFF and byte 15 to 0x00 to mark "new" GUIDs; we
follow that so decoding can sanity-check provenance.
"""

from __future__ import annotations

from ..simnet.rng import SeededStream

__all__ = ["GUID_LENGTH", "new_guid", "guid_hex", "is_modern_guid"]

GUID_LENGTH = 16


def new_guid(stream: SeededStream) -> bytes:
    """Draw a fresh modern-style GUID from ``stream``."""
    raw = bytearray(stream.bytes(GUID_LENGTH))
    raw[8] = 0xFF
    raw[15] = 0x00
    return bytes(raw)


def guid_hex(guid: bytes) -> str:
    """Hex rendering for logs and dict keys."""
    return guid.hex()


def is_modern_guid(guid: bytes) -> bool:
    """True when the GUID carries the modern-servent markers."""
    return len(guid) == GUID_LENGTH and guid[8] == 0xFF and guid[15] == 0x00
