"""Gnutella servent behaviour: leaves, ultrapeers and message handling.

A :class:`GnutellaServent` is one host's protocol engine.  All runtime
traffic travels as encoded descriptor frames through the simnet transport,
so every hop exercises the binary codec -- queries flood ultrapeer-to-
ultrapeer with TTL/hops accounting and GUID duplicate suppression, reach
leaves through per-leaf QRP tables, and query hits travel the recorded
reverse path back to the originator, exactly as in the 0.6 protocol.

Infection hooks: an infected servent answers queries from its (poisoned)
library like any other host; if it carries a query-echo strain it
additionally synthesizes a response named after the query, and its QRP
table is all-ones so that *every* query reaches it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..files.library import SharedFile, SharedLibrary
from ..malware.infection import HostInfection
from ..simnet import fastpath
from ..simnet.addresses import HostAddress
from ..simnet.kernel import Simulator
from ..simnet.rng import SeededStream
from ..simnet.transport import Envelope, Transport
from .constants import (DEFAULT_PORT, DEFAULT_TTL, DESCRIPTOR_BYE,
                        DESCRIPTOR_PING, DESCRIPTOR_PONG, DESCRIPTOR_PUSH,
                        DESCRIPTOR_QUERY, DESCRIPTOR_QUERY_HIT,
                        HEADER_LENGTH, MAX_RESULTS_PER_HIT,
                        QHD_VENDOR_LIMEWIRE)
from .guid import GUID_LENGTH, new_guid
from .messages import (Bye, FrameCache, Header, HitResult, MessageError,
                       Ping, Pong, Push, Query, QueryHit, decode_payload,
                       frame, parse_frame, parse_header, patch_ttl_hops)
from .qrp import QueryRouteTable

__all__ = ["ServentStats", "GnutellaServent"]

#: Forget query routes after this many seconds of virtual time; bounds the
#: reverse-path table the way real servents timed out route entries.
ROUTE_TTL_S = 600.0


@dataclass
class ServentStats:
    """Per-servent message counters (diagnostics and tests)."""

    queries_seen: int = 0
    queries_forwarded_peers: int = 0
    queries_forwarded_leaves: int = 0
    hits_generated: int = 0
    hits_forwarded: int = 0
    hits_received_local: int = 0
    dropped_duplicates: int = 0
    dropped_ttl: int = 0
    decode_errors: int = 0


class GnutellaServent:
    """One simulated Gnutella 0.6 host."""

    #: dynamic-query defaults (LimeWire 4.x controller parameters)
    DQ_RESULT_TARGET = 150
    DQ_BATCH = 2
    DQ_INTERVAL_S = 2.4
    DQ_PROBE_TTL = 2

    def __init__(self, sim: Simulator, transport: Transport,
                 endpoint_id: str, address: HostAddress,
                 role: str = "leaf",
                 user_agent: str = "LimeWire/4.12.3",
                 port: int = DEFAULT_PORT,
                 library: Optional[SharedLibrary] = None,
                 infection: Optional[HostInfection] = None,
                 stream: Optional[SeededStream] = None,
                 busy_probability: float = 0.15,
                 dynamic_queries: bool = False) -> None:
        if role not in ("leaf", "ultrapeer"):
            raise ValueError(f"unknown role {role!r}")
        self.sim = sim
        self.transport = transport
        self.endpoint_id = endpoint_id
        self.address = address
        self.role = role
        self.user_agent = user_agent
        self.port = port
        self.library = library if library is not None else SharedLibrary()
        self.infection = infection
        self.stream = stream if stream is not None else sim.stream(
            f"servent:{endpoint_id}")
        self.busy_probability = busy_probability
        #: when True this ultrapeer paces leaf queries with the dynamic
        #: query controller instead of flooding them immediately
        self.dynamic_queries = dynamic_queries
        self.servent_guid = new_guid(self.stream)
        self.stats = ServentStats()
        #: live dynamic-query controllers: guid -> state dict
        self._dynamic_states: Dict[bytes, Dict[str, object]] = {}
        #: encode-once memo for descriptors this servent fans out
        self.frame_cache = FrameCache()
        #: sampled at construction (see simnet.fastpath): True selects
        #: the decode-everything / encode-per-hop reference handlers
        self._slow = fastpath.slow_path_enabled()

        #: ultrapeer neighbours (ids) -- for leaves these are its shields
        self.peer_ids: List[str] = []
        #: for ultrapeers: attached leaves and their QRP tables
        self.leaf_tables: Dict[str, QueryRouteTable] = {}
        #: reverse routes: descriptor GUID -> (upstream endpoint, expiry)
        self._routes: Dict[bytes, Tuple[str, float]] = {}
        #: push routes: responder servent GUID (hex) -> (the neighbour a
        #: hit from that servent arrived through, expiry).  PUSH
        #: descriptors for a NATed responder retrace these hops.
        self.push_routes: Dict[str, Tuple[str, float]] = {}
        #: GUIDs of queries this servent originated
        self._origin_guids: Set[bytes] = set()
        #: local-delivery callback for hits to own queries
        self.on_local_hit: Optional[Callable[[QueryHit, Header], None]] = None
        #: optional host cache fed by incoming Pongs (crawlers use this)
        self.host_cache = None  # type: Optional[object]

        transport.attach(endpoint_id, self._on_envelope_reference
                         if self._slow else self._on_envelope)

    # -- identity ----------------------------------------------------------
    @property
    def advertised_address(self) -> str:
        """The address this servent self-reports in QueryHits."""
        return self.address.advertised

    @property
    def behind_nat(self) -> bool:
        """True when the servent cannot accept inbound connections."""
        return self.address.behind_nat

    def is_online(self) -> bool:
        """Current session state (driven by churn)."""
        return self.transport.is_online(self.endpoint_id)

    # -- QRP ---------------------------------------------------------------
    def build_route_table(self) -> QueryRouteTable:
        """The QRT this servent advertises to its ultrapeers.

        Echo-infected hosts advertise an all-ones table; honest hosts hash
        their shared names.
        """
        table = QueryRouteTable()
        if self.infection is not None and self.infection.echo_strains:
            table.mark_all()
        else:
            table.build_from(shared.name for shared in self.library)
        return table

    def install_leaf_table(self, leaf_id: str,
                           table: QueryRouteTable) -> None:
        """(Ultrapeer) record a leaf's QRT after a patch exchange."""
        if self.role != "ultrapeer":
            raise RuntimeError("only ultrapeers hold leaf tables")
        self.leaf_tables[leaf_id] = table

    # -- sending -----------------------------------------------------------
    def _send_frame(self, dst: str, guid: bytes, message, ttl: int,
                    hops: int) -> None:
        self.transport.send(self.endpoint_id, dst,
                            frame(guid, message, ttl=ttl, hops=hops))

    def originate_query(self, criteria: str,
                        min_speed_kbps: int = 0,
                        ttl: int = DEFAULT_TTL) -> bytes:
        """Issue a keyword query to all attached ultrapeers.

        Returns the descriptor GUID so the caller can correlate hits.
        The descriptor body is encoded once and fanned out; every
        neighbour receives byte-identical wire bytes, as before.
        """
        guid = new_guid(self.stream)
        self._origin_guids.add(guid)
        query = Query(min_speed_kbps=min_speed_kbps, criteria=criteria)
        encoded = self.frame_cache.frame(guid, query, ttl=ttl, hops=0)
        self.transport.send_many(self.endpoint_id, self.peer_ids, encoded)
        return guid

    def send_ping(self) -> bytes:
        """Issue a Ping to neighbours (host discovery/keepalive)."""
        guid = new_guid(self.stream)
        self._origin_guids.add(guid)
        encoded = self.frame_cache.frame(guid, Ping(), ttl=1, hops=0)
        self.transport.send_many(self.endpoint_id, self.peer_ids, encoded)
        return guid

    def send_bye(self, code: int = 200,
                 reason: str = "Session closed") -> None:
        """Announce a graceful disconnect to every neighbour.

        Must be sent while the session is still up; neighbours clean up
        their per-connection state (an ultrapeer drops this leaf's QRP
        table) on receipt.
        """
        bye = Bye(code=code, reason=reason)
        guid = new_guid(self.stream)
        encoded = self.frame_cache.frame(guid, bye, ttl=1, hops=0)
        self.transport.send_many(self.endpoint_id, self.peer_ids, encoded)

    # -- receiving -----------------------------------------------------------
    def _on_envelope(self, envelope: Envelope) -> None:
        """Fast receive path: header-only parse, body decoded on demand.

        Forwarding-heavy descriptor types never pay for a full decode:
        QueryHits relay as raw bytes with only the ttl/hops re-stamped,
        Pongs decode only when a host cache wants them, Pings and Pushes
        are validated by length alone.  Accept/reject decisions (and the
        ``decode_errors`` counter) match :meth:`_on_envelope_reference`
        for every frame our encoders can produce; the per-type length
        guards mirror the corresponding ``decode`` preconditions.
        """
        raw = envelope.payload
        try:
            header = parse_header(raw)
        except MessageError:
            self.stats.decode_errors += 1
            return
        dtype = header.descriptor_type
        if dtype == DESCRIPTOR_QUERY:
            try:
                query = Query.decode(raw[HEADER_LENGTH:])
            except MessageError:
                self.stats.decode_errors += 1
                return
            self._handle_query(envelope.src, header, query, raw)
        elif dtype == DESCRIPTOR_QUERY_HIT:
            self._handle_query_hit_raw(envelope.src, header, raw)
        elif dtype == DESCRIPTOR_PING:
            self._handle_ping(envelope.src, header)
        elif dtype == DESCRIPTOR_PONG:
            # Pong.decode fails on exactly one condition: payload < 14
            # bytes.  Check it even when nobody consumes the pong so the
            # error counter matches the reference path.
            if header.payload_length < 14:
                self.stats.decode_errors += 1
            elif self.host_cache is not None:
                self.host_cache.add_pong(Pong.decode(raw[HEADER_LENGTH:]),
                                         self.sim.now)
        elif dtype == DESCRIPTOR_BYE:
            try:
                Bye.decode(raw[HEADER_LENGTH:])
            except MessageError:
                self.stats.decode_errors += 1
                return
            self._handle_bye(envelope.src)
        elif dtype == DESCRIPTOR_PUSH:
            # Push.decode fails iff the payload is short; the message
            # itself is unused (downloads live at the measurement layer)
            if header.payload_length < GUID_LENGTH + 10:
                self.stats.decode_errors += 1
        else:
            # decode_payload rejects unknown descriptor types
            self.stats.decode_errors += 1

    def _on_envelope_reference(self, envelope: Envelope) -> None:
        """Reference receive path: decode every body eagerly.

        The pre-fast-path behaviour, kept verbatim for the equivalence
        harness (see :mod:`repro.simnet.fastpath`): parse, decode, then
        dispatch on the decoded message type.
        """
        try:
            header, payload = parse_frame(envelope.payload)
            message = decode_payload(header, payload)
        except MessageError:
            self.stats.decode_errors += 1
            return
        if isinstance(message, Query):
            self._handle_query(envelope.src, header, message)
        elif isinstance(message, QueryHit):
            self._handle_query_hit(envelope.src, header, message)
        elif isinstance(message, Ping):
            self._handle_ping(envelope.src, header)
        elif isinstance(message, Pong):
            if self.host_cache is not None:
                self.host_cache.add_pong(message, self.sim.now)
        elif isinstance(message, Bye):
            self._handle_bye(envelope.src)
        elif isinstance(message, Push):
            pass  # downloads are modelled at the measurement layer

    def _handle_bye(self, src: str) -> None:
        """A neighbour disconnected gracefully; drop its session state."""
        self.leaf_tables.pop(src, None)

    # -- ping --------------------------------------------------------------
    def _handle_ping(self, src: str, header: Header) -> None:
        pong = Pong(port=self.port, address=self.advertised_address,
                    file_count=len(self.library),
                    kbytes_shared=self.library.total_bytes() // 1024)
        self._send_frame(src, header.guid, pong, ttl=max(header.hops, 1),
                         hops=0)

    # -- query path ----------------------------------------------------------
    def _handle_query(self, src: str, header: Header, query: Query,
                      raw: Optional[bytes] = None) -> None:
        """Route one incoming query.  ``raw`` (fast path only) carries
        the received wire bytes so forwarding re-stamps ttl/hops instead
        of re-encoding the body; with ``raw=None`` (reference path)
        every hop re-frames."""
        self.stats.queries_seen += 1
        if header.guid in self._routes or header.guid in self._origin_guids:
            self.stats.dropped_duplicates += 1
            return
        self._remember_route(header.guid, src)

        self._answer_locally(src, header, query)

        if self.role != "ultrapeer":
            return
        if self.dynamic_queries and src in self.leaf_tables:
            # pace the mesh probing; leaves are still served immediately
            self._forward_to_leaves(src, header, query, raw)
            self._start_dynamic_query(src, header, query)
        else:
            self._forward_query(src, header, query, raw)

    def _remember_route(self, guid: bytes, src: str) -> None:
        now = self.sim.now
        if len(self._routes) > 4096:
            self._routes = {g: (peer, expiry)
                            for g, (peer, expiry) in self._routes.items()
                            if expiry > now}
        self._routes[guid] = (src, now + ROUTE_TTL_S)

    def _forward_query(self, src: str, header: Header, query: Query,
                       raw: Optional[bytes] = None) -> None:
        if header.ttl > 1:
            if raw is not None:
                forwarded = patch_ttl_hops(raw, header.ttl - 1,
                                           header.hops + 1)
            else:
                forwarded = frame(header.guid, query, ttl=header.ttl - 1,
                                  hops=header.hops + 1)
            targets = [peer_id for peer_id in self.peer_ids
                       if peer_id != src]
            self.transport.send_many(self.endpoint_id, targets, forwarded)
            self.stats.queries_forwarded_peers += len(targets)
        else:
            self.stats.dropped_ttl += 1
        self._forward_to_leaves(src, header, query, raw)

    def _forward_to_leaves(self, src: str, header: Header, query: Query,
                           raw: Optional[bytes] = None) -> None:
        # leaves are last-hop deliveries regardless of remaining TTL
        if raw is not None:
            leaf_frame = patch_ttl_hops(raw, 1, header.hops + 1)
        else:
            leaf_frame = frame(header.guid, query, ttl=1,
                               hops=header.hops + 1)
        for leaf_id, table in self.leaf_tables.items():
            if leaf_id == src:
                continue
            if table.might_match(query.criteria):
                self.transport.send(self.endpoint_id, leaf_id, leaf_frame)
                self.stats.queries_forwarded_leaves += 1

    # -- dynamic querying ----------------------------------------------------
    def _start_dynamic_query(self, src: str, header: Header,
                             query: Query) -> None:
        """Begin a paced probe of the mesh for a leaf's query.

        LimeWire's dynamic query controller sent the query to a couple of
        neighbours at a time with a short TTL, watched how many results
        flowed back through it, and stopped once the user had enough --
        so popular content stopped early and rare content probed wide.
        """
        remaining = [peer_id for peer_id in self.peer_ids if peer_id != src]
        self.stream.shuffle(remaining)
        state: Dict[str, object] = {
            "results": 0,
            "remaining": remaining,
            "query": query,
            "header": header,
            "rounds": 0,
        }
        self._dynamic_states[header.guid] = state
        self._dynamic_round(header.guid)

    def _dynamic_round(self, guid: bytes) -> None:
        state = self._dynamic_states.get(guid)
        if state is None:
            return
        remaining: List[str] = state["remaining"]  # type: ignore[assignment]
        if (state["results"] >= self.DQ_RESULT_TARGET or not remaining
                or not self.is_online()):
            del self._dynamic_states[guid]
            return
        header: Header = state["header"]  # type: ignore[assignment]
        query: Query = state["query"]  # type: ignore[assignment]
        if self._slow:
            probe = frame(guid, query, ttl=self.DQ_PROBE_TTL,
                          hops=header.hops + 1)
        else:
            # the same query object probes round after round, so the
            # cache encodes the body once and re-stamps ttl/hops
            probe = self.frame_cache.frame(guid, query,
                                           ttl=self.DQ_PROBE_TTL,
                                           hops=header.hops + 1)
        for _ in range(min(self.DQ_BATCH, len(remaining))):
            peer_id = remaining.pop()
            self.transport.send(self.endpoint_id, peer_id, probe)
            self.stats.queries_forwarded_peers += 1
        state["rounds"] = int(state["rounds"]) + 1
        if self._slow:
            self.sim.after(self.DQ_INTERVAL_S,
                           lambda: self._dynamic_round(guid),
                           label="dynamic-query")
        else:
            # args-carrying event: same time, same label, no closure
            self.sim.queue.push(self.sim.now + self.DQ_INTERVAL_S,
                                self._dynamic_round, "dynamic-query",
                                (guid,))

    def _answer_locally(self, src: str, header: Header,
                        query: Query) -> None:
        matches: List[SharedFile] = self.library.match(
            query.criteria, limit=MAX_RESULTS_PER_HIT)
        if self.infection is not None and self.infection.echo_strains:
            echoed = self.infection.echo_responses(query.criteria, self.stream)
            matches = [shared for _, shared in echoed] + matches
        if not matches:
            return
        results = tuple(
            HitResult(file_index=shared.file_id & 0xFFFFFFFF,
                      file_size=shared.size,
                      filename=shared.name,
                      sha1_urn=shared.sha1_urn)
            for shared in matches[:MAX_RESULTS_PER_HIT]
        )
        from .ggep import daily_uptime_block, encode_ggep, vendor_block
        vendor = (QHD_VENDOR_LIMEWIRE if "LimeWire" in self.user_agent
                  else self.user_agent[:4].upper().encode("ascii",
                                                          "replace"))
        private_data = encode_ggep([
            vendor_block(vendor, 0x44),
            daily_uptime_block(int(self.stream.uniform(600, 86_400))),
        ])
        hit = QueryHit(
            port=self.port,
            address=self.advertised_address,
            speed_kbps=self.stream.choice((56, 350, 1000, 1544)),
            results=results,
            servent_guid=self.servent_guid,
            vendor=vendor,
            push_needed=self.behind_nat,
            busy=self.stream.bernoulli(self.busy_probability),
            private_data=private_data,
        )
        self.stats.hits_generated += 1
        self._send_frame(src, header.guid, hit, ttl=max(header.hops + 1, 1),
                         hops=0)

    # -- hit path ------------------------------------------------------------
    def _remember_push_route(self, servent_guid: bytes, src: str) -> None:
        if len(self.push_routes) > 4096:
            now = self.sim.now
            self.push_routes = {
                guid: (peer, expiry)
                for guid, (peer, expiry) in self.push_routes.items()
                if expiry > now}
        from .guid import guid_hex
        self.push_routes[guid_hex(servent_guid)] = (
            src, self.sim.now + ROUTE_TTL_S)

    def push_next_hop(self, servent_guid: bytes) -> Optional[str]:
        """Where a PUSH for ``servent_guid`` should be forwarded, if known."""
        from .guid import guid_hex
        route = self.push_routes.get(guid_hex(servent_guid))
        if route is None or route[1] < self.sim.now:
            return None
        return route[0]

    def _handle_query_hit(self, src: str, header: Header,
                          hit: QueryHit) -> None:
        self._remember_push_route(hit.servent_guid, src)
        state = self._dynamic_states.get(header.guid)
        if state is not None:
            state["results"] = int(state["results"]) + len(hit.results)
        if header.guid in self._origin_guids:
            self.stats.hits_received_local += 1
            if self.on_local_hit is not None:
                self.on_local_hit(hit, header)
            return
        route = self._routes.get(header.guid)
        if route is None or route[1] < self.sim.now:
            return  # route expired or unknown; drop like real servents
        if header.ttl <= 1:
            self.stats.dropped_ttl += 1
            return
        forwarded = frame(header.guid, hit, ttl=header.ttl - 1,
                          hops=header.hops + 1)
        self.transport.send(self.endpoint_id, route[0], forwarded)
        self.stats.hits_forwarded += 1

    def _handle_query_hit_raw(self, src: str, header: Header,
                              raw: bytes) -> None:
        """Fast-path twin of :meth:`_handle_query_hit`.

        A relaying servent never needs the result list -- only the
        responder GUID (the frame's last 16 bytes), the result count
        (the payload's first byte) and the routing fields already in the
        header -- so intermediate hops forward the received bytes with
        just ttl/hops re-stamped.  Hits to our *own* queries decode
        fully before any side effect, exactly as the reference path
        does (a malformed hit must leave no state behind).
        """
        if header.guid in self._origin_guids:
            try:
                hit = QueryHit.decode(raw[HEADER_LENGTH:])
            except MessageError:
                self.stats.decode_errors += 1
                return
            self._remember_push_route(hit.servent_guid, src)
            state = self._dynamic_states.get(header.guid)
            if state is not None:
                state["results"] = int(state["results"]) + len(hit.results)
            self.stats.hits_received_local += 1
            if self.on_local_hit is not None:
                self.on_local_hit(hit, header)
            return
        if header.payload_length < 11 + GUID_LENGTH:
            # below QueryHit.decode's floor; count it like the reference
            self.stats.decode_errors += 1
            return
        self._remember_push_route(raw[-GUID_LENGTH:], src)
        state = self._dynamic_states.get(header.guid)
        if state is not None:
            # payload byte 0 is the result count
            state["results"] = int(state["results"]) + raw[HEADER_LENGTH]
        route = self._routes.get(header.guid)
        if route is None or route[1] < self.sim.now:
            return  # route expired or unknown; drop like real servents
        if header.ttl <= 1:
            self.stats.dropped_ttl += 1
            return
        self.transport.send(self.endpoint_id, route[0],
                            patch_ttl_hops(raw, header.ttl - 1,
                                           header.hops + 1))
        self.stats.hits_forwarded += 1
