"""Shared-content ecosystem: works, versions, payloads and libraries.

Substitutes for the real user population's shared folders: a Zipf-popular
catalog of works (:mod:`catalog`), sparse synthetic payloads with stable
SHA-1 identities (:mod:`payload`), realistic naming (:mod:`names`) and
per-peer searchable libraries (:mod:`library`).
"""

from .catalog import CatalogConfig, ContentCatalog, FileVersion, Work
from .library import SharedFile, SharedLibrary
from .names import NameGenerator, normalize, tokenize
from .payload import Blob, sha1_urn_for
from .types import (FileType, SIZE_MODELS, TYPE_EXTENSIONS, draw_size,
                    extension_for, is_downloadable_type, type_for_extension)
from .zipf import ZipfSampler

__all__ = [
    "CatalogConfig", "ContentCatalog", "FileVersion", "Work",
    "SharedFile", "SharedLibrary",
    "NameGenerator", "normalize", "tokenize",
    "Blob", "sha1_urn_for",
    "FileType", "SIZE_MODELS", "TYPE_EXTENSIONS", "draw_size",
    "extension_for", "is_downloadable_type", "type_for_extension",
    "ZipfSampler",
]
