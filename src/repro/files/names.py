"""Keyword vocabulary and file naming.

Gnutella and OpenFT searches are keyword searches over file names, so the
shape of names controls everything downstream: what queries hit, how query-
echo malware camouflages itself, and how plausible false positives look.

Names are built from themed word pools (music, movies, software, adult --
the query categories P2P measurement studies consistently report) and
normalized the way 2006 servents did: lowercase, separators collapsed,
tokens split on non-alphanumerics.
"""

from __future__ import annotations

import re
from typing import FrozenSet, List, Sequence, Tuple

from ..simnet.rng import SeededStream
from .types import FileType

__all__ = ["WORD_POOLS", "POPULAR_QUERIES", "tokenize", "normalize",
           "NameGenerator"]

#: Themed word pools.  Deliberately sized so collisions between unrelated
#: works are possible but uncommon, as with real shared-folder names.
WORD_POOLS = {
    "music_artist": (
        "madonna", "eminem", "metallica", "shakira", "coldplay", "nirvana",
        "beatles", "rihanna", "outkast", "greenday", "akon", "beyonce",
        "usher", "nelly", "ludacris", "shania", "korn", "staind",
    ),
    "music_title": (
        "angel", "crazy", "forever", "dance", "night", "love", "sorry",
        "fire", "dream", "summer", "heaven", "broken", "golden", "remix",
        "acoustic", "live", "unplugged", "anthem",
    ),
    "movie_title": (
        "matrix", "spiderman", "batman", "pirates", "caribbean", "titanic",
        "gladiator", "shrek", "superman", "narnia", "davinci", "code",
        "mission", "impossible", "casino", "royale", "ice", "age",
    ),
    "movie_tag": (
        "dvdrip", "cam", "screener", "xvid", "divx", "unrated", "widescreen",
        "telesync", "proper", "limited",
    ),
    "software_title": (
        "photoshop", "office", "windows", "winzip", "nero", "norton",
        "acrobat", "autocad", "dreamweaver", "flash", "quicktime", "winamp",
        "divxpro", "partition", "magic", "tuneup",
    ),
    "software_tag": (
        "keygen", "crack", "serial", "patch", "installer", "setup", "full",
        "pro", "premium", "registered", "activator", "loader",
    ),
    "adult_tag": (
        "hot", "xxx", "sexy", "teen", "amateur", "webcam", "private",
        "hidden", "paris", "pamela",
    ),
    "generic": (
        "new", "best", "top", "free", "2005", "2006", "vol1", "vol2",
        "collection", "ultimate", "deluxe", "edition",
    ),
}

#: Query strings every 2006 popularity ranking contained some variant of.
#: They live here (not in the measurement layer) because share-infecting
#: malware named its bait copies after exactly these hot search terms.
POPULAR_QUERIES = (
    "free music", "top hits 2006", "photoshop crack", "windows keygen",
    "office serial", "norton full", "dvdrip xvid", "hot webcam",
    "paris hidden", "winzip installer",
)

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def normalize(name: str) -> str:
    """Lowercase and collapse separators, as servent matchers did."""
    return re.sub(r"[\s_\-.]+", " ", name.lower()).strip()


def tokenize(name: str) -> FrozenSet[str]:
    """Set of alphanumeric tokens of a (file or query) name."""
    return frozenset(_TOKEN_PATTERN.findall(name.lower()))


class NameGenerator:
    """Draws plausible work titles and file names per content category."""

    _CATEGORY_POOLS = {
        FileType.AUDIO: ("music_artist", "music_title"),
        FileType.VIDEO: ("movie_title", "movie_title"),
        FileType.ARCHIVE: ("software_title", "software_tag"),
        FileType.EXECUTABLE: ("software_title", "software_tag"),
        FileType.IMAGE: ("adult_tag", "generic"),
        FileType.DOCUMENT: ("software_title", "generic"),
    }

    def __init__(self, stream: SeededStream) -> None:
        self._stream = stream

    def work_keywords(self, file_type: FileType) -> Tuple[str, ...]:
        """Draw the 2-3 identifying keywords of a distinct work."""
        primary_pool, secondary_pool = self._CATEGORY_POOLS[file_type]
        keywords: List[str] = [
            self._stream.choice(WORD_POOLS[primary_pool]),
            self._stream.choice(WORD_POOLS[secondary_pool]),
        ]
        if self._stream.bernoulli(0.4):
            keywords.append(self._stream.choice(WORD_POOLS["generic"]))
        return tuple(dict.fromkeys(keywords))  # dedupe, keep order

    def decorate(self, keywords: Sequence[str], extension: str) -> str:
        """Turn work keywords into one shared file's name.

        Different sharers of the same work produce different decorations
        (separator style, optional tags), which is why the same content
        appears under many names in real networks.
        """
        parts = list(keywords)
        if self._stream.bernoulli(0.35):
            parts.append(self._stream.choice(WORD_POOLS["generic"]))
        separator = self._stream.choice(["_", " ", "-", "."])
        stem = separator.join(parts)
        if self._stream.bernoulli(0.2):
            stem = stem.title()
        return f"{stem}.{extension}"

    def query_from_keywords(self, keywords: Sequence[str],
                            max_terms: int = 2) -> str:
        """Form a search string a user hunting this work would type."""
        terms = list(keywords[:max_terms])
        return " ".join(terms)
