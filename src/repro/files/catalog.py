"""The content catalog: the universe of works peers can share.

A *work* is a logical piece of content (a song, a movie, an application);
each work exists in one or more *versions* (different rips/encodings),
and every version is a concrete :class:`~repro.files.payload.Blob` with a
stable SHA-1 identity.  Peers populate their libraries by sampling works
Zipf-by-popularity and picking one version, so popular works end up widely
replicated -- the precondition for queries returning many responses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..simnet.rng import SeededStream
from .names import NameGenerator
from .payload import Blob
from .types import FileType, draw_size, extension_for
from .zipf import ZipfSampler

__all__ = ["Work", "FileVersion", "CatalogConfig", "ContentCatalog"]


@dataclass(frozen=True)
class Work:
    """A logical piece of content identified by its keywords."""

    work_id: int
    file_type: FileType
    keywords: Tuple[str, ...]


@dataclass(frozen=True)
class FileVersion:
    """One concrete encoding of a work; globally bit-identical content."""

    version_id: str
    work: Work
    extension: str
    size: int
    blob: Blob

    @property
    def sha1_urn(self) -> str:
        """Content identity of this version."""
        return self.blob.sha1_urn()


@dataclass(frozen=True)
class CatalogConfig:
    """Catalog shape knobs.

    ``type_mix`` is the probability a work belongs to each type; the default
    mix follows the audio-heavy, video-second traffic composition of 2006
    networks while keeping enough archives/executables for the paper's
    denominator to be well-populated.
    """

    works: int = 2000
    zipf_alpha: float = 0.85
    mean_versions: float = 2.2
    type_mix: Tuple[Tuple[FileType, float], ...] = (
        (FileType.AUDIO, 0.46),
        (FileType.VIDEO, 0.17),
        (FileType.ARCHIVE, 0.13),
        (FileType.EXECUTABLE, 0.12),
        (FileType.IMAGE, 0.07),
        (FileType.DOCUMENT, 0.05),
    )


class ContentCatalog:
    """Generates and indexes the universe of works and versions."""

    def __init__(self, config: CatalogConfig, stream: SeededStream) -> None:
        self.config = config
        self._stream = stream
        self._names = NameGenerator(stream)
        self.works: List[Work] = []
        self.versions_by_work: Dict[int, List[FileVersion]] = {}
        self._popularity = ZipfSampler(config.works, config.zipf_alpha)
        self._generate()

    def _type_sequence(self) -> List[FileType]:
        """Deterministic largest-remainder interleaving of the type mix.

        Every popularity-rank prefix carries (as closely as possible) the
        configured type proportions, so "the top-K works" always spans all
        categories -- real charts do, and campaign measurements would
        otherwise swing wildly with which types the RNG put on top.
        """
        types = [file_type for file_type, _ in self.config.type_mix]
        total = sum(weight for _, weight in self.config.type_mix)
        weights = [weight / total for _, weight in self.config.type_mix]
        counts = [0] * len(types)
        sequence: List[FileType] = []
        for index in range(self.config.works):
            deficits = [weight * (index + 1) - count
                        for weight, count in zip(weights, counts)]
            pick = max(range(len(types)), key=lambda i: deficits[i])
            counts[pick] += 1
            sequence.append(types[pick])
        return sequence

    def _generate(self) -> None:
        version_success = 1.0 / self.config.mean_versions
        type_sequence = self._type_sequence()
        for work_id in range(self.config.works):
            file_type = type_sequence[work_id]
            work = Work(work_id=work_id, file_type=file_type,
                        keywords=self._names.work_keywords(file_type))
            self.works.append(work)
            version_count = self._stream.geometric(version_success)
            versions = [self._make_version(work, index)
                        for index in range(version_count)]
            self.versions_by_work[work_id] = versions

    def _make_version(self, work: Work, index: int) -> FileVersion:
        extension = extension_for(work.file_type, self._stream)
        size = draw_size(work.file_type, self._stream)
        version_id = f"w{work.work_id}v{index}"
        blob = Blob(content_key=f"catalog:{version_id}",
                    extension=extension, size=size)
        return FileVersion(version_id=version_id, work=work,
                           extension=extension, size=size, blob=blob)

    # -- sampling -----------------------------------------------------------
    def sample_work(self, stream: SeededStream) -> Work:
        """Draw a work by Zipf popularity (rank 1 = most popular)."""
        rank = self._popularity.sample_one(stream)
        return self.works[rank - 1]

    def sample_version(self, stream: SeededStream) -> FileVersion:
        """Draw a work then a uniform version of it."""
        work = self.sample_work(stream)
        return stream.choice(self.versions_by_work[work.work_id])

    def popular_works(self, count: int) -> List[Work]:
        """The ``count`` most popular works (the query workload uses these)."""
        return self.works[:count]

    def decorate_filename(self, version: FileVersion) -> str:
        """A sharer-specific display name for a version."""
        return self._names.decorate(version.work.keywords, version.extension)

    @property
    def total_versions(self) -> int:
        """Number of distinct content versions in the universe."""
        return sum(len(v) for v in self.versions_by_work.values())
