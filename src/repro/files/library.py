"""Per-peer shared libraries with keyword search.

A :class:`SharedLibrary` is what a servent exposes to the network: a set of
files, each with a display name, size, and content identity.  Matching
follows the conjunctive-keyword semantics Gnutella and OpenFT used: a file
matches a query when every query token appears among the file-name tokens.
An inverted token index keeps matching O(tokens) instead of O(files).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from .names import tokenize
from .payload import Blob

__all__ = ["SharedFile", "SharedLibrary"]

_file_counter = itertools.count()


@dataclass(frozen=True)
class SharedFile:
    """One entry of a peer's shared folder."""

    file_id: int
    name: str
    size: int
    extension: str
    blob: Blob
    sha1_urn: str
    tokens: FrozenSet[str] = field(default_factory=frozenset)

    @staticmethod
    def make(name: str, size: int, extension: str, blob: Blob) -> "SharedFile":
        """Build a shared file, computing tokens and content identity."""
        return SharedFile(
            file_id=next(_file_counter),
            name=name,
            size=size,
            extension=extension,
            blob=blob,
            sha1_urn=blob.sha1_urn(),
            tokens=tokenize(name),
        )


class SharedLibrary:
    """A peer's shared folder plus its inverted keyword index."""

    def __init__(self) -> None:
        self._files: Dict[int, SharedFile] = {}
        self._token_index: Dict[str, Set[int]] = {}

    def __len__(self) -> int:
        return len(self._files)

    def __iter__(self):
        return iter(self._files.values())

    def add(self, shared: SharedFile) -> None:
        """Share a file (idempotent per file_id)."""
        if shared.file_id in self._files:
            return
        self._files[shared.file_id] = shared
        for token in shared.tokens:
            self._token_index.setdefault(token, set()).add(shared.file_id)

    def remove(self, file_id: int) -> None:
        """Stop sharing a file."""
        shared = self._files.pop(file_id, None)
        if shared is None:
            return
        for token in shared.tokens:
            bucket = self._token_index.get(token)
            if bucket is not None:
                bucket.discard(file_id)
                if not bucket:
                    del self._token_index[token]

    def files(self) -> List[SharedFile]:
        """Snapshot of all shared files (stable id order)."""
        return [self._files[file_id] for file_id in sorted(self._files)]

    def match(self, query: str, limit: Optional[int] = None) -> List[SharedFile]:
        """Files whose name contains *every* query token.

        An empty/unparseable query matches nothing, as real servents refused
        such searches.
        """
        query_tokens = tokenize(query)
        if not query_tokens:
            return []
        candidate_sets = []
        for token in query_tokens:
            bucket = self._token_index.get(token)
            if not bucket:
                return []
            candidate_sets.append(bucket)
        candidate_sets.sort(key=len)
        matched_ids = set(candidate_sets[0])
        for bucket in candidate_sets[1:]:
            matched_ids &= bucket
            if not matched_ids:
                return []
        matches = [self._files[file_id] for file_id in sorted(matched_ids)]
        return matches[:limit] if limit is not None else matches

    def all_tokens(self) -> Iterable[str]:
        """Every distinct token shared (QRP table construction uses this)."""
        return self._token_index.keys()

    def by_urn(self, sha1_urn: str) -> Optional[SharedFile]:
        """Look up a shared file by content identity (download by hash)."""
        for shared in self._files.values():
            if shared.sha1_urn == sha1_urn:
                return shared
        return None

    def by_md5(self, md5_hex: str) -> Optional[SharedFile]:
        """Look up a shared file by MD5 (OpenFT's content identity)."""
        for shared in self._files.values():
            if shared.blob.md5_hex() == md5_hex:
                return shared
        return None

    def total_bytes(self) -> int:
        """Sum of shared sizes (OpenFT share digests report this)."""
        return sum(shared.size for shared in self._files.values())
