"""File types, extensions and size models for the shared-content ecosystem.

The paper's headline metric is computed over *downloadable responses whose
files are archives or executables*; audio/video responses are the bulk of
P2P traffic but are excluded from that denominator.  We therefore model the
full type mix (so query workloads and false-positive analysis see realistic
traffic) with explicit predicates for the archive+executable subset.

Size models are log-normal per type, parameterized to land on the medians
2006 measurement studies report (MP3s of a few MB, videos of hundreds of
MB, software archives of tens of MB).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..simnet.rng import SeededStream

__all__ = ["FileType", "SizeModel", "TYPE_EXTENSIONS", "SIZE_MODELS",
           "extension_for", "type_for_extension", "is_downloadable_type",
           "draw_size"]


class FileType(enum.Enum):
    """Coarse content classes used throughout the reproduction."""

    AUDIO = "audio"
    VIDEO = "video"
    ARCHIVE = "archive"
    EXECUTABLE = "executable"
    IMAGE = "image"
    DOCUMENT = "document"

    @property
    def counted_as_downloadable(self) -> bool:
        """True for the archive/executable subset the paper's C1 uses."""
        return self in (FileType.ARCHIVE, FileType.EXECUTABLE)


#: Extensions per type with relative frequency inside the type.
TYPE_EXTENSIONS: Dict[FileType, Tuple[Tuple[str, float], ...]] = {
    FileType.AUDIO: (("mp3", 0.82), ("wma", 0.10), ("ogg", 0.05), ("wav", 0.03)),
    FileType.VIDEO: (("avi", 0.54), ("mpg", 0.22), ("wmv", 0.16), ("mov", 0.08)),
    FileType.ARCHIVE: (("zip", 0.63), ("rar", 0.30), ("tar", 0.04), ("ace", 0.03)),
    FileType.EXECUTABLE: (("exe", 0.88), ("msi", 0.07), ("scr", 0.03), ("com", 0.02)),
    FileType.IMAGE: (("jpg", 0.80), ("gif", 0.12), ("png", 0.08)),
    FileType.DOCUMENT: (("pdf", 0.55), ("doc", 0.30), ("txt", 0.15)),
}

_EXTENSION_TO_TYPE: Dict[str, FileType] = {
    extension: file_type
    for file_type, extensions in TYPE_EXTENSIONS.items()
    for extension, _ in extensions
}


@dataclass(frozen=True)
class SizeModel:
    """Log-normal size distribution with hard floor/ceiling in bytes."""

    median_bytes: float
    sigma: float
    floor_bytes: int
    ceiling_bytes: int

    def draw(self, stream: SeededStream) -> int:
        """Draw one size; clamped to [floor, ceiling]."""
        mu = math.log(self.median_bytes)
        size = int(stream.lognormvariate(mu, self.sigma))
        return max(self.floor_bytes, min(self.ceiling_bytes, size))


SIZE_MODELS: Dict[FileType, SizeModel] = {
    FileType.AUDIO: SizeModel(4.2e6, 0.45, 500_000, 30_000_000),
    FileType.VIDEO: SizeModel(180e6, 0.80, 5_000_000, 1_500_000_000),
    FileType.ARCHIVE: SizeModel(18e6, 1.10, 40_000, 900_000_000),
    FileType.EXECUTABLE: SizeModel(2.8e6, 1.30, 20_000, 300_000_000),
    FileType.IMAGE: SizeModel(300e3, 0.70, 10_000, 8_000_000),
    FileType.DOCUMENT: SizeModel(500e3, 0.90, 4_000, 40_000_000),
}


def extension_for(file_type: FileType, stream: SeededStream) -> str:
    """Draw an extension for a file of ``file_type``."""
    extensions = TYPE_EXTENSIONS[file_type]
    names = [name for name, _ in extensions]
    weights = [weight for _, weight in extensions]
    return stream.choices(names, weights=weights, k=1)[0]


def type_for_extension(extension: str) -> FileType:
    """Map an extension back to its type.

    Unknown extensions classify as DOCUMENT, mirroring how the paper's
    pipeline would bucket oddball files outside its categories of interest.
    """
    return _EXTENSION_TO_TYPE.get(extension.lower().lstrip("."), FileType.DOCUMENT)


def is_downloadable_type(extension: str) -> bool:
    """True when the extension belongs to the archive/executable subset."""
    return type_for_extension(extension).counted_as_downloadable


def draw_size(file_type: FileType, stream: SeededStream) -> int:
    """Draw a file size in bytes from the type's model."""
    return SIZE_MODELS[file_type].draw(stream)
