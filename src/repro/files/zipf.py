"""Bulk Zipf sampling over catalog ranks.

Content popularity in file-sharing networks is classically Zipf-like (with
the fetch-at-most-once flattening noted by Gummadi et al.); we use a plain
truncated Zipf for the *sharing* distribution, which is what shapes how
many replicas of each work exist and therefore how many responses a query
gets.  numpy is used so populating thousands of libraries stays fast.
"""

from __future__ import annotations

import numpy as np

from ..simnet.rng import SeededStream

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Inverse-CDF sampler for a truncated Zipf(alpha) law over n ranks."""

    def __init__(self, n: int, alpha: float) -> None:
        if n <= 0:
            raise ValueError(f"need at least one rank, got {n!r}")
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha!r}")
        self.n = n
        self.alpha = alpha
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), alpha)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def probability(self, rank: int) -> float:
        """P(rank); ranks are 1-based."""
        if not 1 <= rank <= self.n:
            raise ValueError(f"rank {rank!r} out of range 1..{self.n}")
        previous = self._cdf[rank - 2] if rank > 1 else 0.0
        return float(self._cdf[rank - 1] - previous)

    def sample(self, stream: SeededStream, k: int) -> list:
        """Draw ``k`` 1-based ranks (with replacement)."""
        if k < 0:
            raise ValueError(f"negative sample count {k!r}")
        draws = np.array([stream.random() for _ in range(k)])
        ranks = np.searchsorted(self._cdf, draws, side="left") + 1
        return [int(rank) for rank in ranks]

    def sample_one(self, stream: SeededStream) -> int:
        """Draw a single 1-based rank."""
        return self.sample(stream, 1)[0]
