"""Synthetic file payloads.

Downloading every responded file at full size would need gigabytes, so
payloads are *sparse*: a :class:`Blob` carries the declared size, a real
header (first bytes, with a magic matching the extension), any embedded
marker strings (malware bodies hide their signature bytes here), and --
for archives -- a member table of nested blobs.  The scanner operates on
exactly this structure: sniff the header, search markers, recurse into
archive members; i.e. the same pipeline the paper ran over real downloads.

SHA-1 identity is computed over a canonical serialization of the spec, so
two peers sharing the same logical content produce the same urn, which is
what lets the collector de-duplicate downloads by hash like Limewire's
HUGE/urn:sha1 support allowed.
"""

from __future__ import annotations

import base64
import hashlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["MAGIC_BYTES", "Blob", "sha1_urn_for"]

#: File-format magics by extension; unknown extensions get a neutral header.
MAGIC_BYTES = {
    "mp3": b"ID3\x03\x00",
    "wma": b"\x30\x26\xb2\x75",
    "ogg": b"OggS",
    "wav": b"RIFF",
    "avi": b"RIFF",
    "mpg": b"\x00\x00\x01\xba",
    "wmv": b"\x30\x26\xb2\x75",
    "mov": b"\x00\x00\x00\x14ftyp",
    "zip": b"PK\x03\x04",
    "rar": b"Rar!\x1a\x07\x00",
    "tar": b"ustar",
    "ace": b"**ACE**",
    "exe": b"MZ",
    "msi": b"\xd0\xcf\x11\xe0",
    "scr": b"MZ",
    "com": b"\xe9",
    "jpg": b"\xff\xd8\xff",
    "gif": b"GIF89a",
    "png": b"\x89PNG",
    "pdf": b"%PDF-1.4",
    "doc": b"\xd0\xcf\x11\xe0",
    "txt": b"",
}


@dataclass(frozen=True)
class Blob:
    """Sparse representation of one file's content.

    ``content_key`` is the logical identity of the content (same key ==
    bit-identical file everywhere); ``markers`` are byte strings embedded
    somewhere in the body, which is how synthetic malware carries its
    detectable signature.
    """

    content_key: str
    extension: str
    size: int
    markers: Tuple[bytes, ...] = ()
    members: Tuple["Blob", ...] = ()
    _urn: Optional[str] = field(default=None, compare=False, repr=False)
    _md5: Optional[str] = field(default=None, compare=False, repr=False)
    _scan_body: Optional[bytes] = field(default=None, compare=False,
                                        repr=False)

    def header(self, length: int = 64) -> bytes:
        """The first ``length`` bytes: format magic + deterministic filler."""
        magic = MAGIC_BYTES.get(self.extension.lower(), b"")
        filler_needed = max(0, length - len(magic))
        filler = hashlib.sha256(
            f"hdr:{self.content_key}".encode("utf-8")).digest()
        while len(filler) < filler_needed:
            filler += hashlib.sha256(filler).digest()
        return (magic + filler[:filler_needed])[:length]

    def canonical_bytes(self) -> bytes:
        """Canonical serialization hashed for content identity."""
        parts = [
            b"blob|", self.content_key.encode("utf-8"),
            b"|", self.extension.encode("utf-8"),
            b"|", str(self.size).encode("ascii"),
        ]
        for marker in self.markers:
            parts.extend((b"|m:", marker))
        for member in self.members:
            parts.extend((b"|member:", member.canonical_bytes()))
        return b"".join(parts)

    def sha1_urn(self) -> str:
        """``urn:sha1:<base32>`` identity, Gnutella HUGE style.

        Cached after the first call: identities are immutable and the
        scanner's verdict cache looks this up on every download.
        """
        if self._urn is None:
            digest = hashlib.sha1(self.canonical_bytes()).digest()
            urn = "urn:sha1:" + base64.b32encode(digest).decode("ascii")
            object.__setattr__(self, "_urn", urn)
        return self._urn

    def scan_body(self) -> bytes:
        """The byte string the scanner pattern-matches against.

        Markers joined with ``|`` plus the header, cached so repeat
        scans of the same blob (downloads are duplicate-heavy) don't
        rebuild it.
        """
        if self._scan_body is None:
            body = b"|".join(self.markers) + b"#" + self.header()
            object.__setattr__(self, "_scan_body", body)
        return self._scan_body

    def md5_hex(self) -> str:
        """Hex MD5 identity (OpenFT's content hash).

        Cached after the first call, like :meth:`sha1_urn`: the
        downloader verifies every fetched OpenFT blob against the
        advertised md5, so repeat downloads must not re-hash.
        """
        if self._md5 is None:
            object.__setattr__(self, "_md5",
                               hashlib.md5(self.canonical_bytes()).hexdigest())
        return self._md5

    def contains_marker(self, marker: bytes) -> bool:
        """True if this blob or any nested member embeds ``marker``."""
        if marker in self.markers:
            return True
        return any(member.contains_marker(marker) for member in self.members)

    def iter_members(self):
        """Depth-first traversal of self and nested members."""
        yield self
        for member in self.members:
            yield from member.iter_members()


def sha1_urn_for(blob: Blob) -> str:
    """Module-level convenience mirroring :meth:`Blob.sha1_urn`."""
    return blob.sha1_urn()
