"""Deterministic fault injection for the measurement pipeline.

The paper's month-long crawl ran against a hostile network: peers
churned mid-download, served truncated or corrupted bytes, stalled,
rate-limited and partitioned.  This package reproduces that hostility
*on demand and deterministically*: a :class:`FaultPlan` declares a
schedule of fault windows, and the injectors replay it from named
``SeededStream``s, so identical seeds produce identical fault timelines
(``EventDigest``-stable) and a campaign's behaviour under stress is as
reproducible as its behaviour without.

Two injection surfaces:

* :class:`FaultInjector` taps the transport delivery chain (the same
  tap mechanism ``TransportTrace`` uses) for loss bursts, latency
  storms, network partitions and peer crash/blackhole;
* :class:`FetchFaults` rides the downloader's fetch path for
  slow-serve stalls and payload truncation/corruption.

Pipeline-level chaos (worker crashes in ``run_replications``) is
declared here too (:class:`WorkerCrash`) but enforced by
:mod:`repro.core.experiments`.
"""

from .injectors import FaultInjector, FetchFaults, FetchIntervention
from .plan import (FaultPlan, InjectedWorkerCrash, LatencyStorm, LossBurst,
                   Partition, PeerCrash, SlowServe, Tamper, WorkerCrash,
                   SEVERITIES)

__all__ = [
    "FaultPlan", "LossBurst", "LatencyStorm", "Partition", "PeerCrash",
    "SlowServe", "Tamper", "WorkerCrash", "InjectedWorkerCrash",
    "SEVERITIES", "FaultInjector", "FetchFaults", "FetchIntervention",
]
