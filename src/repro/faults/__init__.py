"""Deterministic fault injection for the measurement pipeline.

The paper's month-long crawl ran against a hostile network: peers
churned mid-download, served truncated or corrupted bytes, stalled,
rate-limited and partitioned.  This package reproduces that hostility
*on demand and deterministically*: a :class:`FaultPlan` declares a
schedule of fault windows, and the injectors replay it from named
``SeededStream``s, so identical seeds produce identical fault timelines
(``EventDigest``-stable) and a campaign's behaviour under stress is as
reproducible as its behaviour without.

Two injection surfaces:

* :class:`FaultInjector` taps the transport delivery chain (the same
  tap mechanism ``TransportTrace`` uses) for loss bursts, latency
  storms, network partitions and peer crash/blackhole;
* :class:`FetchFaults` rides the downloader's fetch path for
  slow-serve stalls and payload truncation/corruption.

Host-level chaos is declared here too but enforced elsewhere: worker
crashes (:class:`WorkerCrash`) by ``run_replications``, worker
hangs/stalls (:class:`WorkerHang` / :class:`WorkerStall`) by the
supervised pool in :mod:`repro.resilience.supervisor`, and chaotic IO
(:class:`TornWrite` / :class:`DiskFull` / :class:`SlowFsync`) by
:class:`HostIOFaults` hooking the crash-safe artifact store.
"""

from .injectors import (FaultInjector, FetchFaults, FetchIntervention,
                        HostIOFaults)
from .plan import (DiskFull, FaultPlan, InjectedWorkerCrash, LatencyStorm,
                   LossBurst, Partition, PeerCrash, ShardCrash, SlowFsync,
                   SlowServe, Tamper, TornWrite, WorkerCrash, WorkerHang,
                   WorkerStall, SEVERITIES)

__all__ = [
    "FaultPlan", "LossBurst", "LatencyStorm", "Partition", "PeerCrash",
    "SlowServe", "Tamper", "WorkerCrash", "WorkerHang", "WorkerStall",
    "ShardCrash", "TornWrite", "DiskFull", "SlowFsync",
    "InjectedWorkerCrash", "SEVERITIES", "FaultInjector", "FetchFaults",
    "FetchIntervention", "HostIOFaults",
]
