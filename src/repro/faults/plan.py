"""Declarative fault schedules.

A :class:`FaultPlan` is a tuple of fault *clauses*, each describing one
window (or instant) of induced hostility.  Plans are plain frozen
dataclasses: picklable (they ride into replication worker processes
inside ``CampaignConfig``), comparable, and cheap to construct.  The
plan carries **no randomness** -- which messages a loss burst eats or
which peers a crash clause kills is drawn by the injectors from named
seeded streams at run time, so the realized fault timeline is a pure
function of (campaign seed, plan).

``FaultPlan.envelope`` builds the graded severity presets experiment R1
sweeps; :data:`SEVERITIES` orders them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

__all__ = ["LossBurst", "LatencyStorm", "Partition", "PeerCrash",
           "SlowServe", "Tamper", "WorkerCrash", "WorkerHang",
           "WorkerStall", "ShardCrash", "TornWrite", "DiskFull",
           "SlowFsync", "InjectedWorkerCrash", "FaultPlan", "SEVERITIES"]


class InjectedWorkerCrash(RuntimeError):
    """Raised inside a replication worker by a ``WorkerCrash`` clause."""


def _check_window(start_s: float, end_s: float) -> None:
    if start_s < 0 or end_s <= start_s:
        raise ValueError(f"need 0 <= start_s < end_s, "
                         f"got [{start_s!r}, {end_s!r})")


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


@dataclass(frozen=True)
class LossBurst:
    """Drop a fraction of deliveries during a window (congestion burst)."""

    start_s: float
    end_s: float
    loss_rate: float

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        _check_probability("loss_rate", self.loss_rate)


@dataclass(frozen=True)
class LatencyStorm:
    """Add a uniform delay surcharge to every send during a window."""

    start_s: float
    end_s: float
    extra_min_s: float
    extra_max_s: float

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if not 0.0 <= self.extra_min_s <= self.extra_max_s:
            raise ValueError("need 0 <= extra_min_s <= extra_max_s")


@dataclass(frozen=True)
class Partition:
    """Split the overlay in two; cross-partition traffic is dropped.

    ``fraction`` of endpoints (drawn deterministically at activation)
    land on the isolated side; the window's end heals the partition.
    """

    start_s: float
    end_s: float
    fraction: float = 0.5

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        _check_probability("fraction", self.fraction)


@dataclass(frozen=True)
class PeerCrash:
    """Permanently kill a fraction of peers at one instant.

    A *crash* is dirtier than churn's clean up/down: the peer never
    comes back, and its churn process keeps trying to revive it in
    vain.  With ``blackhole=True`` the peer instead stays nominally
    online but silently swallows all traffic to and from it -- the
    half-dead NAT box every 2006 crawler knew well.
    """

    at_s: float
    fraction: float
    blackhole: bool = False

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError(f"at_s must be >= 0, got {self.at_s!r}")
        _check_probability("fraction", self.fraction)


@dataclass(frozen=True)
class SlowServe:
    """Responders stall a fraction of fetch attempts during a window.

    A stalled attempt takes ``stall_min_s..stall_max_s`` virtual
    seconds to serve; stalls past the downloader's per-attempt timeout
    resolve as ``timeout`` outcomes instead of successes.
    """

    start_s: float
    end_s: float
    probability: float
    stall_min_s: float
    stall_max_s: float

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        _check_probability("probability", self.probability)
        if not 0.0 < self.stall_min_s <= self.stall_max_s:
            raise ValueError("need 0 < stall_min_s <= stall_max_s")


@dataclass(frozen=True)
class Tamper:
    """Truncate or corrupt a fraction of fetched payloads in a window.

    Tampered bytes no longer hash to the advertised content id; the
    downloader's integrity verification turns them into ``truncated`` /
    ``corrupt`` outcomes rather than feeding them to the scanner.
    """

    start_s: float
    end_s: float
    truncate_probability: float = 0.0
    corrupt_probability: float = 0.0

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        _check_probability("truncate_probability", self.truncate_probability)
        _check_probability("corrupt_probability", self.corrupt_probability)
        if self.truncate_probability + self.corrupt_probability > 1.0:
            raise ValueError("truncate + corrupt probabilities exceed 1")


@dataclass(frozen=True)
class WorkerCrash:
    """Pipeline-level chaos: named replication seeds crash their worker.

    ``attempts`` is how many attempts fail before the seed succeeds;
    the default 1 means the first attempt dies and the retry survives,
    2 kills the retry too (forcing quarantine).  Enforced by
    ``run_replications``, not the simulator.
    """

    seeds: Tuple[int, ...]
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts!r}")
        object.__setattr__(self, "seeds", tuple(self.seeds))

    def should_crash(self, seed: int, attempt: int) -> bool:
        """True when the worker for ``seed`` must die on ``attempt``."""
        return seed in self.seeds and attempt < self.attempts


@dataclass(frozen=True)
class WorkerHang:
    """Pipeline-level chaos: named seeds' workers wedge instead of working.

    A hung worker sleeps silently -- no heartbeats, no result, no exit.
    Only the supervisor's stall watchdog can unstick the run, which is
    exactly what this clause exists to prove.  ``attempts`` counts how
    many attempts hang before the seed computes normally (2 = the retry
    hangs too, forcing quarantine).  Enforced by the supervised pool's
    worker shim, never inside the simulator: an unsupervised run must
    not be able to wedge itself.
    """

    seeds: Tuple[int, ...]
    attempts: int = 1
    #: how long the wedged worker would sleep if nothing killed it
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts!r}")
        if self.hang_s <= 0:
            raise ValueError(f"hang_s must be positive, got {self.hang_s!r}")
        object.__setattr__(self, "seeds", tuple(self.seeds))

    def should_hang(self, seed: int, attempt: int) -> bool:
        """True when the worker for ``seed`` must wedge on ``attempt``."""
        return seed in self.seeds and attempt < self.attempts


@dataclass(frozen=True)
class WorkerStall:
    """Named seeds' workers freeze for ``stall_s`` before computing.

    Unlike :class:`WorkerHang` the worker eventually recovers on its
    own -- but it does not heartbeat while frozen, so a stall longer
    than the watchdog's patience still draws a kill.  The boundary
    between the two is the experiment.
    """

    seeds: Tuple[int, ...]
    attempts: int = 1
    stall_s: float = 5.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts!r}")
        if self.stall_s <= 0:
            raise ValueError(f"stall_s must be positive, "
                             f"got {self.stall_s!r}")
        object.__setattr__(self, "seeds", tuple(self.seeds))

    def should_stall(self, seed: int, attempt: int) -> bool:
        return seed in self.seeds and attempt < self.attempts


@dataclass(frozen=True)
class ShardCrash:
    """Pipeline-level chaos: SIGKILL one shard worker of named seeds.

    The multi-process shard executor kills its own worker for ``shard``
    after ``after_windows`` barrier rounds -- mid-campaign, with
    cross-shard envelopes in flight -- which the supervisor above sees
    as a failed seed and routes through the PR 9 retry/quarantine path.
    ``attempts`` counts how many attempts get the kill before the seed
    runs clean (2 = the retry is killed too, forcing quarantine).
    Enforced by the executor in the parent process, never inside the
    simulator; like every host clause it is excluded from
    ``scientific_key`` because killing the host cannot change a
    surviving seed's measured bytes.
    """

    seeds: Tuple[int, ...]
    attempts: int = 1
    #: which shard's worker dies (shard 0 runs in the parent and has no
    #: worker to kill)
    shard: int = 1
    #: how many conservative windows complete before the kill
    after_windows: int = 3

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts!r}")
        if self.shard < 1:
            raise ValueError(f"shard must be >= 1 (shard 0 is the parent), "
                             f"got {self.shard!r}")
        if self.after_windows < 0:
            raise ValueError(f"after_windows must be >= 0, "
                             f"got {self.after_windows!r}")
        object.__setattr__(self, "seeds", tuple(self.seeds))

    def should_kill(self, seed: int, attempt: int) -> bool:
        """True when ``seed``'s shard worker must die on ``attempt``."""
        return seed in self.seeds and attempt < self.attempts


@dataclass(frozen=True)
class TornWrite:
    """Chaotic IO: truncate a fraction of artifact appends mid-record.

    A selected write commits only a seeded-length byte prefix -- the
    on-disk shape a power cut leaves.  ``at_ops`` additionally names
    exact write ordinals (0-based, per injector) to tear, for
    byte-precise crash-recovery tests.
    """

    probability: float = 0.0
    at_ops: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        _check_probability("probability", self.probability)
        object.__setattr__(self, "at_ops", tuple(self.at_ops))


@dataclass(frozen=True)
class DiskFull:
    """Chaotic IO: a write commits partial bytes then raises ENOSPC.

    The dirtiest failure a journal can meet: the torn bytes are on
    disk *and* the writer sees an exception.
    """

    probability: float = 0.0
    at_ops: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        _check_probability("probability", self.probability)
        object.__setattr__(self, "at_ops", tuple(self.at_ops))


@dataclass(frozen=True)
class SlowFsync:
    """Chaotic IO: fsync takes ``delay_s`` of real time.

    Models the overloaded spinning disk under the 2006 crawler; used to
    verify durable appends slow down but never reorder or tear.
    """

    probability: float = 1.0
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        _check_probability("probability", self.probability)
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s!r}")


TransportClause = Union[LossBurst, LatencyStorm, Partition, PeerCrash]
FetchClause = Union[SlowServe, Tamper]
IOClause = Union[TornWrite, DiskFull, SlowFsync]

#: R1's graded severity scale, mildest first ("off" = no plan at all).
SEVERITIES = ("off", "mild", "moderate", "severe", "extreme")


@dataclass(frozen=True)
class FaultPlan:
    """One campaign's complete fault schedule."""

    clauses: Tuple[object, ...] = ()
    worker_crash: Optional[WorkerCrash] = None
    worker_hang: Optional[WorkerHang] = None
    worker_stall: Optional[WorkerStall] = None
    #: host clause enforced by the sharded campaign executor
    shard_crash: Optional[ShardCrash] = None
    #: chaotic-IO clauses enforced against artifact writes on the host
    io_clauses: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        known = (LossBurst, LatencyStorm, Partition, PeerCrash,
                 SlowServe, Tamper)
        object.__setattr__(self, "clauses", tuple(self.clauses))
        for clause in self.clauses:
            if not isinstance(clause, known):
                raise TypeError(f"unknown fault clause {clause!r}")
        known_io = (TornWrite, DiskFull, SlowFsync)
        object.__setattr__(self, "io_clauses", tuple(self.io_clauses))
        for clause in self.io_clauses:
            if not isinstance(clause, known_io):
                raise TypeError(f"unknown IO fault clause {clause!r}")

    def __bool__(self) -> bool:
        return bool(self.clauses) or bool(self.io_clauses) or any(
            clause is not None for clause in
            (self.worker_crash, self.worker_hang, self.worker_stall,
             self.shard_crash))

    @property
    def transport_clauses(self) -> Tuple[object, ...]:
        """Clauses the transport-level injector enforces."""
        return tuple(clause for clause in self.clauses
                     if isinstance(clause, (LossBurst, LatencyStorm,
                                            Partition, PeerCrash)))

    @property
    def fetch_clauses(self) -> Tuple[object, ...]:
        """Clauses the fetch-path injector enforces."""
        return tuple(clause for clause in self.clauses
                     if isinstance(clause, (SlowServe, Tamper)))

    def scientific_key(self) -> str:
        """Stable identity of the *simulated* faults (checkpoint key).

        Deliberately excludes every host-level clause (``worker_crash``,
        ``worker_hang``, ``worker_stall``, ``io_clauses``): killing,
        wedging, or starving the *host* never changes a seed's measured
        results, so a checkpoint written under pipeline chaos stays
        valid when resuming without it -- and vice versa.
        """
        return repr(self.clauses)

    def describe(self) -> str:
        """One line per clause, for chaos-run banners."""
        host = [clause for clause in
                (self.worker_crash, self.worker_hang, self.worker_stall,
                 self.shard_crash)
                if clause is not None]
        if not self.clauses and not host and not self.io_clauses:
            return "(empty plan)"
        lines = [repr(clause) for clause in self.clauses]
        lines.extend(repr(clause) for clause in host)
        lines.extend(repr(clause) for clause in self.io_clauses)
        return "\n".join(lines)

    @classmethod
    def envelope(cls, severity: str, horizon_s: float) -> "FaultPlan":
        """The graded R1 stress presets over a ``horizon_s`` campaign.

        Severity scales every axis at once -- loss, latency, partition,
        crash/blackhole, stalls, tampering -- so the sweep exercises
        their interactions, not one fault at a time.  ``"off"`` returns
        an empty plan (useful for uniform sweep code).
        """
        if horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {horizon_s!r}")
        if severity == "off":
            return cls()
        grades = {
            # loss, extra latency (s), partition frac, crash frac,
            # blackhole frac, stall prob, stall max (s), tamper prob
            "mild": (0.02, (0.05, 0.25), 0.0, 0.01, 0.00, 0.03, 120.0, 0.02),
            "moderate": (0.05, (0.10, 0.50), 0.0, 0.03, 0.01, 0.08,
                         300.0, 0.06),
            "severe": (0.12, (0.25, 1.00), 0.25, 0.06, 0.03, 0.15,
                       900.0, 0.16),
            "extreme": (0.30, (0.50, 2.50), 0.50, 0.15, 0.08, 0.35,
                        2400.0, 0.45),
        }
        if severity not in grades:
            raise ValueError(f"unknown severity {severity!r}; "
                             f"choose from {SEVERITIES}")
        (loss, (lat_lo, lat_hi), part_frac, crash_frac, hole_frac,
         stall_p, stall_max, tamper_p) = grades[severity]
        h = horizon_s
        clauses = [
            # two loss bursts, early and late, each a fifth of the run
            LossBurst(0.10 * h, 0.30 * h, loss),
            LossBurst(0.60 * h, 0.80 * h, loss),
            LatencyStorm(0.35 * h, 0.55 * h, lat_lo, lat_hi),
            SlowServe(0.0, h, stall_p, 5.0, stall_max),
            Tamper(0.0, h, tamper_p / 2.0, tamper_p / 2.0),
            PeerCrash(0.50 * h, crash_frac),
        ]
        if hole_frac:
            clauses.append(PeerCrash(0.25 * h, hole_frac, blackhole=True))
        if part_frac:
            clauses.append(Partition(0.40 * h, 0.50 * h, part_frac))
        return cls(clauses=tuple(clauses))
