"""Runtime fault injectors: replay a :class:`FaultPlan` deterministically.

:class:`FaultInjector` layers onto the transport the same way
:class:`~repro.simnet.trace.TransportTrace` does -- a delivery tap that
forwards to the ``_deliver`` it wrapped -- so injectors and traces stack
in any order and unwind cleanly.  Window activations are ordinary kernel
events (labelled ``fault:*``), and every stochastic decision draws from
a named ``faults:*`` stream, which keeps the realized fault timeline a
pure function of the campaign seed: two runs with the same seed lose the
same messages, crash the same peers and stall the same downloads, event
for event.

:class:`FetchFaults` is the fetch-path counterpart the downloader
consults per attempt; it never touches the transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..files.payload import Blob
from ..simnet.kernel import Simulator
from ..simnet.rng import SeededStream
from ..simnet.transport import Envelope, Transport
from .plan import (DiskFull, FaultPlan, LatencyStorm, LossBurst, Partition,
                   PeerCrash, SlowFsync, SlowServe, Tamper, TornWrite)

__all__ = ["FaultInjector", "FetchFaults", "FetchIntervention",
           "HostIOFaults"]


class _StormLatency:
    """Latency-model proxy adding the active storm surcharge per send."""

    def __init__(self, wrapped, injector: "FaultInjector") -> None:
        self._wrapped = wrapped
        self._injector = injector

    def delay(self, stream, size_bytes: int) -> float:
        base = self._wrapped.delay(stream, size_bytes)
        storms = self._injector._active_storms
        if not storms:
            return base
        if getattr(self._injector.transport, "shard_active", False):
            # shard mode: the shared faults:latency stream would be
            # consumed in per-shard order.  The transport already hands
            # us its per-source stream -- whose draw order is the
            # sender's own send order, invariant under the partition --
            # so the surcharge rides the same stream as the base delay.
            source = stream
        else:
            source = self._injector._latency_stream
        extra = 0.0
        for storm in storms:
            extra += source.uniform(storm.extra_min_s, storm.extra_max_s)
        self._injector._count("latency")
        return base + extra

    def __getattr__(self, name: str):
        return getattr(self._wrapped, name)


class FaultInjector:
    """Enforces a plan's transport clauses on one simulated overlay."""

    def __init__(self, sim: Simulator, transport: Transport,
                 plan: FaultPlan, registry=None,
                 protect: Sequence[str] = ("crawler",)) -> None:
        self.sim = sim
        self.transport = transport
        self.plan = plan
        #: endpoints fault clauses must never kill (the measurement host)
        self.protect = tuple(protect)
        self.injected: Dict[str, int] = {}
        self._counter = None
        if registry is not None:
            self._counter = registry.counter(
                "faults_injected_total",
                "Fault actions performed by the chaos injectors.",
                labels=("kind",))
        self._loss_stream = sim.stream("faults:loss")
        self._latency_stream = sim.stream("faults:latency")
        #: shard mode only: per-(src, dst) loss-burst streams (see
        #: _burst_stream)
        self._pair_loss_streams: Dict[tuple, SeededStream] = {}
        self._partition_stream = sim.stream("faults:partition")
        self._crash_stream = sim.stream("faults:crash")
        self._active_loss: List[LossBurst] = []
        self._active_storms: List[LatencyStorm] = []
        #: endpoint -> side for every active partition (stacked windows)
        self._partition_sides: List[Dict[str, int]] = []
        self._crashed: Dict[str, bool] = {}
        self._blackholed: Dict[str, bool] = {}
        self._installed = False
        self._original_deliver: Optional[Callable] = None
        self._original_set_online: Optional[Callable] = None
        self._original_latency = None

    # -- bookkeeping --------------------------------------------------------
    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        if self._counter is not None:
            self._counter.labels(kind).inc()

    def _drop(self, kind: str) -> None:
        self.transport.count_drop("fault-injected")
        self._count(kind)

    # -- lifecycle ----------------------------------------------------------
    def install(self) -> None:
        """Tap the transport and schedule every clause window."""
        if self._installed:
            return
        self._original_deliver = self.transport._deliver

        def tapped(envelope: Envelope) -> None:
            if self._installed and self._intercept(envelope):
                return
            assert self._original_deliver is not None
            self._original_deliver(envelope)

        tapped._trace_owner = self  # type: ignore[attr-defined]
        self.transport._deliver = tapped  # type: ignore[method-assign]

        self._original_set_online = self.transport.set_online

        def guarded_set_online(endpoint_id: str, online: bool) -> None:
            # a crashed peer is dead for good: churn's revival attempts
            # are swallowed (that is what makes a crash dirtier than a
            # clean session end)
            if online and self._installed and endpoint_id in self._crashed:
                return
            assert self._original_set_online is not None
            self._original_set_online(endpoint_id, online)

        self.transport.set_online = guarded_set_online  # type: ignore

        self._original_latency = self.transport.latency
        self.transport.latency = _StormLatency(self._original_latency, self)

        self._installed = True
        now = self.sim.now
        for clause in self.plan.transport_clauses:
            if isinstance(clause, LossBurst):
                self._window(clause, "fault:loss",
                             self._active_loss.append,
                             self._active_loss.remove)
            elif isinstance(clause, LatencyStorm):
                self._window(clause, "fault:latency",
                             self._active_storms.append,
                             self._active_storms.remove)
            elif isinstance(clause, Partition):
                self._schedule_partition(clause)
            elif isinstance(clause, PeerCrash):
                self.sim.at(max(clause.at_s, now),
                            lambda clause=clause: self._crash(clause),
                            label="fault:crash")

    def uninstall(self) -> None:
        """Stop injecting; the tap chain unwinds like a trace's does."""
        if not self._installed:
            return
        self._installed = False
        if self._original_set_online is not None:
            self.transport.set_online = self._original_set_online  # type: ignore
        if self._original_latency is not None:
            self.transport.latency = self._original_latency
        while True:
            owner = getattr(self.transport._deliver, "_trace_owner", None)
            if owner is None or owner._installed:
                break
            self.transport._deliver = (  # type: ignore[method-assign]
                owner._original_deliver)

    def _window(self, clause, label: str, activate, deactivate) -> None:
        now = self.sim.now
        self.sim.at(max(clause.start_s, now),
                    lambda: activate(clause), label=label)
        self.sim.at(max(clause.end_s, now),
                    lambda: deactivate(clause), label=label)

    # -- clause mechanics ----------------------------------------------------
    def _schedule_partition(self, clause: Partition) -> None:
        now = self.sim.now
        sides: Dict[str, int] = {}

        def activate() -> None:
            # deterministic split: sorted census, seeded sample
            endpoints = sorted(self.transport._endpoints)
            isolated = round(clause.fraction * len(endpoints))
            chosen = self._partition_stream.sample(endpoints, isolated)
            sides.clear()
            sides.update({endpoint_id: 1 for endpoint_id in chosen})
            self._partition_sides.append(sides)
            self._count("partition")

        def heal() -> None:
            if sides in self._partition_sides:
                self._partition_sides.remove(sides)

        self.sim.at(max(clause.start_s, now), activate,
                    label="fault:partition")
        self.sim.at(max(clause.end_s, now), heal, label="fault:partition")

    def _crash(self, clause: PeerCrash) -> None:
        protected = set(self.protect)
        candidates = [endpoint_id
                      for endpoint_id in sorted(self.transport._endpoints)
                      if endpoint_id not in protected
                      and endpoint_id not in self._crashed
                      and endpoint_id not in self._blackholed]
        count = round(clause.fraction * len(candidates))
        for endpoint_id in self._crash_stream.sample(candidates, count):
            if clause.blackhole:
                self._blackholed[endpoint_id] = True
                self._count("blackhole")
            else:
                self._crashed[endpoint_id] = True
                # through the guarded wrapper, which lets False pass
                self.transport.set_online(endpoint_id, False)
                self._count("crash")

    def _burst_stream(self, envelope: Envelope) -> SeededStream:
        """The stream a loss-burst draw for this envelope comes from.

        Plain kernel: the shared ``faults:loss`` stream (one draw per
        intercepted delivery, in global delivery order).  Shard mode:
        that global order does not exist -- each shard only sees its own
        deliveries -- so draws move to per-``(src, dst)`` streams whose
        order is the src->dst delivery order, which every partition
        agrees on.
        """
        if not getattr(self.transport, "shard_active", False):
            return self._loss_stream
        key = (envelope.src, envelope.dst)
        stream = self._pair_loss_streams.get(key)
        if stream is None:
            stream = self.sim.stream(f"faults:loss:{key[0]}:{key[1]}")
            self._pair_loss_streams[key] = stream
        return stream

    def _intercept(self, envelope: Envelope) -> bool:
        """True when the envelope dies here instead of being delivered.

        Every decision here is safe under sharding: blackhole and
        partition membership derive from replicated draws over the
        replicated endpoint census (identical on all shards), and the
        per-envelope check reads only the envelope -- the one
        stochastic decision, loss bursts, draws from a stream keyed so
        its order is partition-invariant (see :meth:`_burst_stream`).
        """
        if envelope.src in self._blackholed or \
                envelope.dst in self._blackholed:
            self._drop("blackhole-drop")
            return True
        for sides in self._partition_sides:
            if sides.get(envelope.src, 0) != sides.get(envelope.dst, 0):
                self._drop("partition-drop")
                return True
        for burst in self._active_loss:
            if self._burst_stream(envelope).bernoulli(burst.loss_rate):
                self._drop("loss")
                return True
        return False


@dataclass
class FetchIntervention:
    """What the fetch-path injector decided for one download attempt."""

    stall_s: float = 0.0
    tamper: Optional[str] = None  # "truncate" | "corrupt" | None

    def tamper_blob(self, blob: Blob) -> Blob:
        """Apply the tamper decision to a fetched blob.

        Tampered blobs are rebuilt from scratch (never ``replace``-d)
        so the identity caches cannot leak the original hashes -- the
        whole point is that the bytes no longer match the advertised
        content id.
        """
        if self.tamper == "truncate":
            # the connection died mid-body: shorter payload, members
            # (archive tails) lost
            return Blob(content_key=blob.content_key + "#truncated",
                        extension=blob.extension,
                        size=max(0, blob.size // 3),
                        markers=(), members=())
        if self.tamper == "corrupt":
            # bit rot in transit: same shape, different bytes
            return Blob(content_key=blob.content_key + "#corrupt",
                        extension=blob.extension, size=blob.size,
                        markers=blob.markers, members=blob.members)
        return blob


class FetchFaults:
    """Per-attempt fetch-path faults (slow serves and tampering).

    The downloader consults :meth:`on_fetch` once per attempt; with no
    active clause it returns None and the attempt proceeds exactly as
    an uninjected one (no draws, no extra events).
    """

    def __init__(self, sim: Simulator, plan: FaultPlan,
                 registry=None) -> None:
        self.sim = sim
        self.slow_clauses = tuple(clause for clause in plan.fetch_clauses
                                  if isinstance(clause, SlowServe))
        self.tamper_clauses = tuple(clause for clause in plan.fetch_clauses
                                    if isinstance(clause, Tamper))
        self._stream = sim.stream("faults:fetch")
        self.injected: Dict[str, int] = {}
        self._counter = None
        if registry is not None:
            self._counter = registry.counter(
                "faults_injected_total",
                "Fault actions performed by the chaos injectors.",
                labels=("kind",))

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        if self._counter is not None:
            self._counter.labels(kind).inc()

    def on_fetch(self, record, attempt: int) -> Optional[FetchIntervention]:
        """Decide this attempt's fate; None means hands-off."""
        now = self.sim.now
        stall_s = 0.0
        for clause in self.slow_clauses:
            if clause.start_s <= now < clause.end_s and \
                    self._stream.bernoulli(clause.probability):
                stall_s = self._stream.uniform(clause.stall_min_s,
                                               clause.stall_max_s)
                self._count("stall")
                break
        tamper = None
        for clause in self.tamper_clauses:
            if clause.start_s <= now < clause.end_s:
                draw = self._stream.random()
                if draw < clause.truncate_probability:
                    tamper = "truncate"
                    self._count("truncate")
                elif draw < (clause.truncate_probability
                             + clause.corrupt_probability):
                    tamper = "corrupt"
                    self._count("corrupt")
                if tamper is not None:
                    break
        if stall_s == 0.0 and tamper is None:
            return None
        return FetchIntervention(stall_s=stall_s, tamper=tamper)


class HostIOFaults:
    """Chaotic host IO: enforce a plan's ``io_clauses`` on artifact writes.

    This shim implements the duck-typed hook interface of
    :mod:`repro.resilience.store` (``apply_write`` / ``on_fsync``)
    without that module ever importing this layer.  Like every other
    injector, all randomness comes from one named seeded stream, so
    which write ordinal gets torn -- and at which byte -- is a pure
    function of (seed, write order): the crash-recovery tests can
    replay the exact same carnage twice.

    Unlike the simulated-time injectors this one acts on *real* disk
    writes; a :class:`~repro.faults.plan.SlowFsync` clause therefore
    burns real wall-clock time, which is the point (it models the
    overloaded artifact disk, not the overlay).
    """

    def __init__(self, plan: FaultPlan, seed: int, registry=None) -> None:
        self.torn_clauses = tuple(clause for clause in plan.io_clauses
                                  if isinstance(clause, TornWrite))
        self.disk_full_clauses = tuple(clause for clause in plan.io_clauses
                                       if isinstance(clause, DiskFull))
        self.fsync_clauses = tuple(clause for clause in plan.io_clauses
                                   if isinstance(clause, SlowFsync))
        self._stream = SeededStream(seed, "faults:io")
        # tear lengths come from their own stream so an at_ops-only
        # firing never advances the fire-decision draws
        self._len_stream = SeededStream(seed, "faults:io:len")
        #: write ordinal, incremented per apply_write call
        self.ops = 0
        self.injected: Dict[str, int] = {}
        self._counter = None
        if registry is not None:
            self._counter = registry.counter(
                "faults_injected_total",
                "Fault actions performed by the chaos injectors.",
                labels=("kind",))

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        if self._counter is not None:
            self._counter.labels(kind).inc()

    def _fires(self, clause, op: int) -> bool:
        # the bernoulli draw is unconditional so the stream advances
        # identically whether or not at_ops short-circuits: adding an
        # explicit ordinal must not reshuffle later probabilistic tears
        drew = self._stream.bernoulli(clause.probability) \
            if clause.probability else False
        return op in clause.at_ops or drew

    def apply_write(self, path, data: bytes):
        """Decide one write's fate: (bytes actually written, error).

        DiskFull wins over TornWrite when both fire: it is strictly
        nastier (partial bytes *and* an exception).
        """
        op = self.ops
        self.ops += 1
        for clause in self.disk_full_clauses:
            if self._fires(clause, op):
                keep = self._len_stream.randint(0, max(0, len(data) - 1))
                self._count("disk-full")
                import errno
                return data[:keep], OSError(
                    errno.ENOSPC, "injected: no space left on device",
                    str(path))
        for clause in self.torn_clauses:
            if self._fires(clause, op):
                keep = self._len_stream.randint(0, max(0, len(data) - 1))
                self._count("torn-write")
                return data[:keep], None
        return data, None

    def on_fsync(self, path) -> None:
        import time
        for clause in self.fsync_clauses:
            if self._stream.bernoulli(clause.probability):
                self._count("slow-fsync")
                time.sleep(clause.delay_s)
