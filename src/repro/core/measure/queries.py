"""Query workloads: the search strings the instrumented clients issue.

The paper drove its clients with popular search strings.  We derive the
workload from the simulated world itself: queries for the most popular
catalog works (music, movies, software) plus the evergreen bait terms P2P
query studies consistently ranked at the top.  The workload cycles
round-robin so every string is measured evenly across the campaign.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from ...files.catalog import ContentCatalog
from ...files.names import POPULAR_QUERIES, NameGenerator
from ...simnet.rng import SeededStream

__all__ = ["EVERGREEN_QUERIES", "QueryWorkload"]

#: Query strings every 2006 popularity ranking contained some variant of
#: (shared with the bait-naming model in :mod:`repro.files.names`).
EVERGREEN_QUERIES = POPULAR_QUERIES


class QueryWorkload:
    """A cyclic list of query strings."""

    def __init__(self, queries: Sequence[str]) -> None:
        if not queries:
            raise ValueError("workload needs at least one query")
        self.queries = list(queries)
        self._cursor = 0

    def __len__(self) -> int:
        return len(self.queries)

    def next_query(self) -> str:
        """The next query in round-robin order."""
        query = self.queries[self._cursor % len(self.queries)]
        self._cursor += 1
        return query

    def __iter__(self) -> Iterator[str]:
        while True:
            yield self.next_query()

    #: Category quotas (fraction of the popular-work slots).  Chosen to
    #: match the category spread of 2006 top-query rankings; holding the
    #: mix constant per campaign is what the paper's fixed query list did,
    #: and it keeps the clean archive/executable denominator stable
    #: across seeds.
    CATEGORY_QUOTAS = {
        "audio": 0.35, "video": 0.15, "archive": 0.25, "executable": 0.25,
    }

    @staticmethod
    def from_catalog(catalog: ContentCatalog, stream: SeededStream,
                     popular_works: int = 40,
                     include_evergreen: bool = True) -> "QueryWorkload":
        """Build the workload used by default campaigns.

        One query per popular work (formed from its identifying keywords),
        quota-balanced across content categories, interleaved with the
        evergreen strings; order is shuffled once so categories do not
        cluster in time.
        """
        names = NameGenerator(stream)
        quotas = {category: max(1, round(fraction * popular_works))
                  for category, fraction
                  in QueryWorkload.CATEGORY_QUOTAS.items()}
        taken = {category: 0 for category in quotas}
        queries: List[str] = []
        for work in catalog.works:  # already in popularity order
            category = work.file_type.value
            if category not in quotas or taken[category] >= quotas[category]:
                continue
            taken[category] += 1
            queries.append(names.query_from_keywords(work.keywords))
            if len(queries) >= sum(quotas.values()):
                break
        if include_evergreen:
            queries.extend(EVERGREEN_QUERIES)
        # drop duplicates while preserving first occurrence
        queries = list(dict.fromkeys(queries))
        stream.shuffle(queries)
        return QueryWorkload(queries)
