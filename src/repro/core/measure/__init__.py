"""Measurement layer: instrumented clients, downloads, stores, campaigns."""

from .campaign import (CampaignConfig, CampaignResult, run_limewire_campaign,
                       run_openft_campaign)
from .collector import LimewireCollector, OpenFTCollector
from .download import Downloader, DownloadPolicy
from .queries import EVERGREEN_QUERIES, QueryWorkload
from .records import ResponseRecord
from .store import MeasurementStore

__all__ = [
    "CampaignConfig", "CampaignResult", "run_limewire_campaign",
    "run_openft_campaign",
    "LimewireCollector", "OpenFTCollector",
    "Downloader", "DownloadPolicy",
    "EVERGREEN_QUERIES", "QueryWorkload",
    "ResponseRecord", "MeasurementStore",
]
