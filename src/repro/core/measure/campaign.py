"""Campaign drivers: run the whole measurement end to end.

``run_limewire_campaign`` / ``run_openft_campaign`` reproduce the paper's
data collection: build the world, attach the instrumented client, issue
the query workload on a fixed cadence for the configured number of
virtual days, download and scan every response, and return the filled
:class:`MeasurementStore` (plus the built world for ground-truth tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ...faults import FaultInjector, FaultPlan, FetchFaults
from ...malware.corpus import limewire_strains, openft_strains
from ...peers.population import (BuiltWorld, build_gnutella_world,
                                 build_openft_world)
from ...peers.profiles import GnutellaProfile, OpenFTProfile
from ...scanner.database import database_for_strains
from ...scanner.engine import ScanEngine
from ...simnet.clock import days
from ...simnet.kernel import Simulator
from ...telemetry.runtime import CampaignTelemetry
from .collector import LimewireCollector, OpenFTCollector
from .download import Downloader, DownloadPolicy
from .queries import QueryWorkload
from .store import MeasurementStore

__all__ = ["CampaignConfig", "CampaignResult", "default_profile",
           "run_limewire_campaign", "run_openft_campaign"]


def default_profile(network: str, scale: float = 1.0):
    """The stock population profile for ``network``, optionally scaled.

    Lets callers above the ``peers`` layer (the CLI, devtools) pick a
    population by network name without importing ``peers`` themselves.
    """
    if network == "limewire":
        profile = GnutellaProfile()
    elif network == "openft":
        profile = OpenFTProfile()
    else:
        raise ValueError(f"unknown network {network!r}")
    return profile.scaled(scale) if scale != 1.0 else profile


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs shared by both campaigns.

    Defaults run a scaled 3-virtual-day campaign in seconds of wall time;
    the paper's "over a month" corresponds to ``duration_days=35`` with a
    denser population (see ``profile.scaled``).
    """

    seed: int = 1
    duration_days: float = 3.0
    query_interval_s: float = 600.0
    popular_works: int = 40
    download_policy: DownloadPolicy = field(default_factory=DownloadPolicy)
    #: fraction of the strain corpus the ground-truth scanner knows; 1.0
    #: reproduces the paper, lower values are for ablations
    scanner_coverage: float = 1.0
    #: virtual seconds granted after the horizon so in-flight downloads
    #: and retries complete
    drain_s: float = 7200.0
    #: declarative fault schedule; None (the default) runs the campaign
    #: bit-identically to a build without the chaos harness
    fault_plan: Optional[FaultPlan] = None
    #: kernel shards the campaign runs across; 1 (the default) is the
    #: plain single-process kernel, N >= 2 routes through the sharded
    #: driver in :mod:`repro.core.sharded`
    shards: int = 1

    def __post_init__(self) -> None:
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if self.query_interval_s <= 0:
            raise ValueError("query_interval_s must be positive")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")


@dataclass
class CampaignResult:
    """A finished campaign: the data plus the world it ran against."""

    store: MeasurementStore
    world: BuiltWorld
    config: CampaignConfig
    #: the scan engine used by the downloader (exposes scans_performed,
    #: cache_hits/cache_misses for throughput benchmarks)
    engine: Optional[ScanEngine] = None
    #: the run's telemetry bundle (registry/tracer/journal) when enabled
    telemetry: Optional[CampaignTelemetry] = None
    #: the transport fault injector when a plan was armed (exposes the
    #: per-kind injection tallies)
    faults: Optional[FaultInjector] = None
    #: the :class:`~repro.core.sharded.ShardReport` when the campaign
    #: ran sharded; None for the plain single-process kernel
    shards: Optional[object] = None

    @property
    def sim(self) -> Simulator:
        """The simulator the campaign ran on."""
        return self.world.sim


def _top_malware_probe(store: MeasurementStore, n: int = 3):
    """Journal probe: the top-n malware names seen so far."""
    def probe():
        counts: dict = {}
        for record in store:
            if record.malware_name:
                counts[record.malware_name] = (
                    counts.get(record.malware_name, 0) + 1)
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return [{"name": name, "responses": count}
                for name, count in ranked[:n]]
    return probe


def _install_journal(telemetry: CampaignTelemetry, sim: Simulator,
                     store: MeasurementStore, engine: ScanEngine,
                     downloader: Downloader, until: float) -> None:
    """Wire the live-progress probes and start the periodic snapshots."""
    journal = telemetry.journal
    if journal is None:
        return
    in_flight = telemetry.registry.gauge("downloader_in_flight")
    journal.add_probe("responses_collected", lambda: len(store))
    journal.add_probe("queries_issued", lambda: store.queries_issued)
    journal.add_probe("downloads_in_flight", lambda: in_flight.value)
    journal.add_probe("download_successes", lambda: downloader.successes)
    journal.add_probe("scan_cache_hit_rate", lambda: engine.cache_hit_rate)
    journal.add_probe("top_malware", _top_malware_probe(store))
    journal.install(sim, until=until)


def _arm_faults(config: CampaignConfig, world: BuiltWorld, registry):
    """Install the plan's injectors on a freshly built world.

    Returns ``(transport_injector, fetch_faults)``; both None when the
    plan has no simulated clauses (including the worker-crash-only
    case, which never touches the simulator).
    """
    plan = config.fault_plan
    if plan is None or not plan.clauses:
        return None, None
    injector = None
    if plan.transport_clauses:
        injector = FaultInjector(world.sim, world.transport, plan,
                                 registry=registry)
        injector.install()
    fetch_faults = None
    if plan.fetch_clauses:
        fetch_faults = FetchFaults(world.sim, plan, registry=registry)
    return injector, fetch_faults


def _export_transport(registry, transport) -> None:
    """Fold the transport's delivery tallies into the run's registry."""
    dropped = registry.counter(
        "transport_dropped_total",
        "Messages dropped by the transport, by cause.",
        labels=("cause",))
    for cause in sorted(transport.drop_causes):
        count = transport.drop_causes[cause]
        if count:
            dropped.labels(cause).inc(count)
    registry.counter(
        "transport_delivered_total",
        "Messages delivered by the transport.").inc(transport.delivered)


def _run(config: CampaignConfig, world: BuiltWorld, collector,
         workload: QueryWorkload,
         telemetry: Optional[CampaignTelemetry] = None) -> None:
    sim = world.sim
    horizon = days(config.duration_days)
    sim.every(config.query_interval_s,
              lambda: collector.issue_query(workload.next_query()),
              label="query", jitter=sim.stream("campaign:jitter"),
              until=horizon)
    sim.run_until(horizon + config.drain_s)
    if telemetry is not None:
        # run_until already flushed the kernel counters; settle the rest
        _export_transport(telemetry.registry, world.transport)
        telemetry.tracer.close_open(sim.now)
        if telemetry.journal is not None:
            telemetry.journal.close(sim)


def run_limewire_campaign(config: Optional[CampaignConfig] = None,
                          profile: Optional[GnutellaProfile] = None,
                          telemetry: Optional[CampaignTelemetry] = None,
                          *, attempt: int = 0,
                          shard_executor: str = "auto") -> CampaignResult:
    """Reproduce the Limewire side of the measurement.

    ``telemetry`` threads one :class:`CampaignTelemetry` bundle through
    the kernel, scanner, downloader and collector; results are
    bit-identical with or without it (the journal only reads state).
    ``config.shards >= 2`` hands the run to the sharded driver;
    ``attempt`` and ``shard_executor`` only matter there.
    """
    config = config or CampaignConfig()
    if config.shards > 1:
        from ..sharded import run_sharded_campaign
        return run_sharded_campaign("limewire", config, profile=profile,
                                    telemetry=telemetry,
                                    executor=shard_executor,
                                    attempt=attempt)
    profile = profile or GnutellaProfile()
    strains = limewire_strains()

    registry = telemetry.registry if telemetry is not None else None
    tracer = telemetry.tracer if telemetry is not None else None
    sim = Simulator(seed=config.seed,
                    telemetry=telemetry.kernel if telemetry else None)
    horizon = days(config.duration_days)
    world = build_gnutella_world(sim, profile, strains, horizon)
    injector, fetch_faults = _arm_faults(config, world, registry)

    crawler = world.network.bootstrap_crawler("crawler",
                                              _crawler_address(world))
    store = MeasurementStore("limewire")
    engine = ScanEngine(database_for_strains(strains,
                                             config.scanner_coverage),
                        registry=registry)
    downloader = Downloader(sim, engine, config.download_policy,
                            registry=registry, tracer=tracer,
                            faults=fetch_faults)
    collector = LimewireCollector(sim, world.network, crawler, store,
                                  downloader, registry=registry,
                                  tracer=tracer)
    workload = QueryWorkload.from_catalog(
        world.catalog, sim.stream("campaign:workload"),
        popular_works=config.popular_works)

    if telemetry is not None:
        _install_journal(telemetry, sim, store, engine, downloader,
                         until=horizon + config.drain_s)
    _run(config, world, collector, workload, telemetry)
    return CampaignResult(store=store, world=world, config=config,
                          engine=engine, telemetry=telemetry,
                          faults=injector)


def run_openft_campaign(config: Optional[CampaignConfig] = None,
                        profile: Optional[OpenFTProfile] = None,
                        telemetry: Optional[CampaignTelemetry] = None,
                        *, attempt: int = 0,
                        shard_executor: str = "auto") -> CampaignResult:
    """Reproduce the OpenFT side of the measurement.

    ``telemetry`` and the sharded dispatch work exactly as in
    :func:`run_limewire_campaign`.
    """
    config = config or CampaignConfig()
    if config.shards > 1:
        from ..sharded import run_sharded_campaign
        return run_sharded_campaign("openft", config, profile=profile,
                                    telemetry=telemetry,
                                    executor=shard_executor,
                                    attempt=attempt)
    profile = profile or OpenFTProfile()
    strains = openft_strains()

    registry = telemetry.registry if telemetry is not None else None
    tracer = telemetry.tracer if telemetry is not None else None
    sim = Simulator(seed=config.seed,
                    telemetry=telemetry.kernel if telemetry else None)
    horizon = days(config.duration_days)
    world = build_openft_world(sim, profile, strains, horizon)
    injector, fetch_faults = _arm_faults(config, world, registry)
    # let child adoptions and initial share syncs settle before measuring
    sim.run_until(300.0)

    crawler = world.network.bootstrap_crawler("crawler",
                                              _crawler_address(world))
    sim.run_until(sim.now + 60.0)  # node-list discovery + adoption
    store = MeasurementStore("openft")
    engine = ScanEngine(database_for_strains(strains,
                                             config.scanner_coverage),
                        registry=registry)
    downloader = Downloader(sim, engine, config.download_policy,
                            registry=registry, tracer=tracer,
                            faults=fetch_faults)
    collector = OpenFTCollector(sim, world.network, crawler, store,
                                downloader, registry=registry,
                                tracer=tracer)
    workload = QueryWorkload.from_catalog(
        world.catalog, sim.stream("campaign:workload"),
        popular_works=config.popular_works)

    if telemetry is not None:
        _install_journal(telemetry, sim, store, engine, downloader,
                         until=horizon + config.drain_s)
    _run(config, world, collector, workload, telemetry)
    return CampaignResult(store=store, world=world, config=config,
                          engine=engine, telemetry=telemetry,
                          faults=injector)


def _crawler_address(world: BuiltWorld):
    """A public address for the measurement host (it was well-connected)."""
    from ...simnet.addresses import AddressAllocator

    allocator = AddressAllocator(world.sim.stream("crawler:addr"))
    return allocator.allocate_public()
