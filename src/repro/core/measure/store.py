"""The measurement store: an append-only log of response records.

Holds everything a campaign observed, with the query/filter helpers the
analysis layer is built on, and JSON-lines persistence so long campaigns
can be collected once and analysed many times (the paper's month of data
was similarly a log post-processed offline).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from .records import ResponseRecord

__all__ = ["MeasurementStore"]


class MeasurementStore:
    """In-memory collection of :class:`ResponseRecord` with persistence."""

    def __init__(self, network: str) -> None:
        self.network = network
        self._records: List[ResponseRecord] = []
        self.queries_issued = 0

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ResponseRecord]:
        return iter(self._records)

    def add(self, record: ResponseRecord) -> None:
        """Append one response."""
        if record.network != self.network:
            raise ValueError(
                f"record network {record.network!r} does not match store "
                f"{self.network!r}")
        self._records.append(record)

    def note_query(self) -> None:
        """Count one issued query (T1 reports this)."""
        self.queries_issued += 1

    # -- selections ---------------------------------------------------------
    def records(self, predicate: Optional[Callable[[ResponseRecord], bool]]
                = None) -> List[ResponseRecord]:
        """All records, optionally filtered."""
        if predicate is None:
            return list(self._records)
        return [record for record in self._records if predicate(record)]

    def downloadable_responses(self) -> List[ResponseRecord]:
        """The paper's denominator: archive/executable responses whose
        download succeeded."""
        return [record for record in self._records
                if record.counts_as_downloadable_type and record.downloaded]

    def malicious_responses(self) -> List[ResponseRecord]:
        """Downloadable responses that scanned dirty."""
        return [record for record in self.downloadable_responses()
                if record.is_malicious]

    def clean_downloadable_responses(self) -> List[ResponseRecord]:
        """Downloadable responses that scanned clean."""
        return [record for record in self.downloadable_responses()
                if not record.is_malicious]

    def unique_hosts(self) -> int:
        """Distinct responder keys seen."""
        return len({record.responder_key for record in self._records})

    def unique_contents(self) -> int:
        """Distinct content identities seen."""
        return len({record.content_id for record in self._records})

    def by_day(self) -> Dict[int, List[ResponseRecord]]:
        """Records grouped by virtual day."""
        days: Dict[int, List[ResponseRecord]] = {}
        for record in self._records:
            days.setdefault(record.day, []).append(record)
        return days

    def content_digest(self) -> str:
        """sha256 over the store's serialized form, without touching disk.

        Hashes exactly the bytes :meth:`save` would write, so two stores
        with the same digest persist identically -- the equivalence
        harness uses this to prove the data-plane fast path collects
        bit-identical measurements.
        """
        import hashlib

        hasher = hashlib.sha256()
        header = (f'{{"store_network":"{self.network}",'
                  f'"queries_issued":{self.queries_issued}}}')
        hasher.update(header.encode("utf-8") + b"\n")
        for record in self._records:
            hasher.update(record.to_json().encode("utf-8") + b"\n")
        return hasher.hexdigest()

    # -- persistence ------------------------------------------------------
    def save(self, path: Path) -> int:
        """Write JSON-lines (first line is a header); returns record count."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            header = (f'{{"store_network":"{self.network}",'
                      f'"queries_issued":{self.queries_issued}}}')
            handle.write(header + "\n")
            for record in self._records:
                handle.write(record.to_json() + "\n")
        return len(self._records)

    @staticmethod
    def load(path: Path) -> "MeasurementStore":
        """Read a store back from JSON-lines."""
        import json

        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
            store = MeasurementStore(header["store_network"])
            store.queries_issued = header["queries_issued"]
            for line in handle:
                line = line.strip()
                if line:
                    store.add(ResponseRecord.from_json(line))
        return store

    def extend(self, records: Iterable[ResponseRecord]) -> None:
        """Bulk append."""
        for record in records:
            self.add(record)
