"""Measurement records: what the instrumented clients log.

A :class:`ResponseRecord` is one query response as the paper's
instrumentation saw it: only protocol-visible fields (self-reported host,
filename, size, content hash) plus the post-processing annotations
(download outcome, scan verdict).  Ground-truth fields the real study did
*not* have are deliberately absent -- analyses must work from the record
alone, with the simulator's ground truth used only by tests.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Optional

from ...files.types import is_downloadable_type, type_for_extension

__all__ = ["ResponseRecord"]


@dataclass
class ResponseRecord:
    """One response row in the measurement store."""

    network: str               # "limewire" | "openft"
    time: float                # virtual seconds since campaign start
    query: str
    responder_host: str        # self-reported address (may be RFC 1918!)
    responder_port: int
    responder_key: str         # stable responder id visible on the wire
    #                            (servent GUID hex / host:port)
    filename: str
    size: int
    content_id: str            # urn:sha1 (Gnutella) or md5 (OpenFT)
    push_needed: bool = False
    busy: bool = False
    #: responder's QHD vendor code (Gnutella) or client name (OpenFT)
    vendor: str = ""
    #: when the query this response answers was issued (virtual seconds);
    #: negative means unknown (e.g. legacy stores)
    query_time: float = -1.0
    # -- post-processing annotations -------------------------------------
    download_attempted: bool = False
    downloaded: bool = False
    #: terminal downloader outcome: "" (never resolved) | "success" |
    #: "offline" | "timeout" | "truncated" | "corrupt"
    download_outcome: str = ""
    malware_name: Optional[str] = None

    @property
    def extension(self) -> str:
        """Extension of the advertised filename (lowercase, no dot)."""
        stem, dot, extension = self.filename.rpartition(".")
        return extension.lower() if dot else ""

    @property
    def file_type(self) -> str:
        """Coarse content class of the advertised file."""
        return type_for_extension(self.extension).value

    @property
    def counts_as_downloadable_type(self) -> bool:
        """True for the archive/executable subset (the paper's scope)."""
        return is_downloadable_type(self.extension)

    @property
    def is_malicious(self) -> bool:
        """True when the downloaded content scanned dirty."""
        return self.malware_name is not None

    @property
    def day(self) -> int:
        """Zero-based virtual day the response arrived."""
        return int(self.time // 86400)

    @property
    def latency(self) -> Optional[float]:
        """Seconds from query issue to this response (None if unknown)."""
        if self.query_time < 0:
            return None
        return self.time - self.query_time

    # -- persistence -----------------------------------------------------
    def to_json(self) -> str:
        """One JSON line (the store's on-disk format)."""
        return json.dumps(asdict(self), separators=(",", ":"),
                          sort_keys=True)

    @staticmethod
    def from_json(line: str) -> "ResponseRecord":
        """Parse a JSON line back into a record."""
        data = json.loads(line)
        return ResponseRecord(**data)
