"""Collectors: turn protocol responses into measurement records.

One collector per network wraps the instrumented client's result callback,
builds :class:`ResponseRecord` rows from the *decoded wire data only*, and
hands each record to the downloader together with a fetch closure bound to
that responder (the only place ground-truth object references are allowed
to flow, because a real client would likewise open a connection to the
address in the response).
"""

from __future__ import annotations

from typing import Dict, Optional

from ...gnutella.guid import guid_hex
from ...gnutella.messages import Header, QueryHit
from ...gnutella.network import GnutellaNetwork
from ...gnutella.servent import GnutellaServent
from ...openft.network import OpenFTNetwork
from ...openft.nodes import OpenFTNode
from ...openft.packets import SearchResponse
from ...simnet.kernel import Simulator
from ...telemetry.registry import MetricRegistry
from ...telemetry.spans import Span, SpanTracer
from .download import Downloader
from .records import ResponseRecord
from .store import MeasurementStore

__all__ = ["LimewireCollector", "OpenFTCollector"]


class _CollectorTelemetry:
    """Shared query/response instrumentation for both collectors.

    Each issued query opens an instant ``query`` span (its id anchors
    the chain); each decoded result opens an instant ``response`` child
    span, which the downloader extends with ``download`` and ``scan``
    children -- together one query->response->download->scan chain per
    response.
    """

    def __init__(self, network: str,
                 registry: Optional[MetricRegistry] = None,
                 tracer: Optional[SpanTracer] = None) -> None:
        self.tracer = tracer
        self._queries = None
        self._responses = None
        if registry is not None:
            self._queries = registry.counter(
                "collector_queries_total", "Queries issued by the crawler.",
                labels=("network",)).labels(network)
            self._responses = registry.counter(
                "collector_responses_total",
                "Response records collected from decoded hits.",
                labels=("network",)).labels(network)

    def note_query(self, criteria: str, now: float) -> Optional[Span]:
        if self._queries is not None:
            self._queries.inc()
        if self.tracer is None:
            return None
        span = self.tracer.start("query", now, query=criteria)
        self.tracer.end(span, now)
        return span

    def note_response(self, record: ResponseRecord,
                      query_span: Optional[Span]) -> Optional[Span]:
        if self._responses is not None:
            self._responses.inc()
        if self.tracer is None:
            return None
        span = self.tracer.start(
            "response", record.time, parent=query_span,
            responder=record.responder_key, filename=record.filename,
            content_id=record.content_id)
        self.tracer.end(span, record.time)
        return span


class LimewireCollector:
    """Instrumentation harness around a Gnutella crawler leaf."""

    def __init__(self, sim: Simulator, network: GnutellaNetwork,
                 crawler: GnutellaServent, store: MeasurementStore,
                 downloader: Downloader,
                 registry: Optional[MetricRegistry] = None,
                 tracer: Optional[SpanTracer] = None) -> None:
        self.sim = sim
        self.network = network
        self.crawler = crawler
        self.store = store
        self.downloader = downloader
        self.telemetry = _CollectorTelemetry("limewire", registry, tracer)
        self._query_by_guid: Dict[str, str] = {}
        self._issue_time_by_guid: Dict[str, float] = {}
        self._query_span_by_guid: Dict[str, Span] = {}
        crawler.on_local_hit = self._on_hit

    def issue_query(self, criteria: str) -> None:
        """Send one query and remember its GUID for hit correlation."""
        guid = self.crawler.originate_query(criteria)
        self._query_by_guid[guid_hex(guid)] = criteria
        self._issue_time_by_guid[guid_hex(guid)] = self.sim.now
        span = self.telemetry.note_query(criteria, self.sim.now)
        if span is not None:
            self._query_span_by_guid[guid_hex(guid)] = span
        self.store.note_query()

    def _on_hit(self, hit: QueryHit, header: Header) -> None:
        query = self._query_by_guid.get(guid_hex(header.guid))
        if query is None:
            return  # hit for a query we did not issue (should not happen)
        for result in hit.results:
            record = ResponseRecord(
                network="limewire",
                time=self.sim.now,
                query=query,
                responder_host=hit.address,
                responder_port=hit.port,
                responder_key=guid_hex(hit.servent_guid),
                filename=result.filename,
                size=result.file_size,
                content_id=result.sha1_urn,
                push_needed=hit.push_needed,
                busy=hit.busy,
                vendor=hit.vendor.decode("ascii", errors="replace"),
                query_time=self._issue_time_by_guid.get(
                    guid_hex(header.guid), -1.0),
            )
            self.store.add(record)
            response_span = self.telemetry.note_response(
                record, self._query_span_by_guid.get(guid_hex(header.guid)))
            servent_guid = hit.servent_guid
            sha1_urn = result.sha1_urn
            crawler_id = self.crawler.endpoint_id
            self.downloader.enqueue(
                record,
                lambda guid=servent_guid, urn=sha1_urn:
                self.network.fetch(guid, urn, requester_id=crawler_id),
                parent_span=response_span)


class OpenFTCollector:
    """Instrumentation harness around a giFT/OpenFT crawler node."""

    def __init__(self, sim: Simulator, network: OpenFTNetwork,
                 crawler: OpenFTNode, store: MeasurementStore,
                 downloader: Downloader,
                 registry: Optional[MetricRegistry] = None,
                 tracer: Optional[SpanTracer] = None) -> None:
        self.sim = sim
        self.network = network
        self.crawler = crawler
        self.store = store
        self.downloader = downloader
        self.telemetry = _CollectorTelemetry("openft", registry, tracer)
        self._query_by_search_id: Dict[int, str] = {}
        self._issue_time_by_search_id: Dict[int, float] = {}
        self._query_span_by_search_id: Dict[int, Span] = {}
        #: (search_id, host, md5, name) tuples already recorded -- the OpenFT
        #: mesh can deliver the same result via several parents
        self._seen: set = set()
        crawler.on_search_result = self._on_result

    def issue_query(self, query: str) -> None:
        """Send one search and remember its id for result correlation."""
        search_id = self.crawler.originate_search(query)
        self._query_by_search_id[search_id] = query
        self._issue_time_by_search_id[search_id] = self.sim.now
        span = self.telemetry.note_query(query, self.sim.now)
        if span is not None:
            self._query_span_by_search_id[search_id] = span
        self.store.note_query()

    def _on_result(self, response: SearchResponse) -> None:
        if response.is_end_marker:
            return
        query = self._query_by_search_id.get(response.search_id)
        if query is None:
            return
        dedup_key = (response.search_id, response.host, response.md5,
                     response.filename)
        if dedup_key in self._seen:
            return
        self._seen.add(dedup_key)
        record = ResponseRecord(
            network="openft",
            time=self.sim.now,
            query=query,
            responder_host=response.host,
            responder_port=response.port,
            responder_key=f"{response.host}:{response.port}",
            filename=response.filename,
            size=response.size,
            content_id=response.md5,
            push_needed=False,
            busy=response.availability == 0,
            vendor="GIFT",
            query_time=self._issue_time_by_search_id.get(
                response.search_id, -1.0),
        )
        self.store.add(record)
        response_span = self.telemetry.note_response(
            record, self._query_span_by_search_id.get(response.search_id))
        host, md5 = response.host, response.md5
        crawler_id = self.crawler.endpoint_id
        self.downloader.enqueue(
            record,
            lambda host=host, md5=md5:
            self.network.fetch(host, md5, requester_id=crawler_id),
            parent_span=response_span)
