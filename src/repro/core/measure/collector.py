"""Collectors: turn protocol responses into measurement records.

One collector per network wraps the instrumented client's result callback,
builds :class:`ResponseRecord` rows from the *decoded wire data only*, and
hands each record to the downloader together with a fetch closure bound to
that responder (the only place ground-truth object references are allowed
to flow, because a real client would likewise open a connection to the
address in the response).
"""

from __future__ import annotations

from typing import Dict, Optional

from ...gnutella.guid import guid_hex
from ...gnutella.messages import Header, QueryHit
from ...gnutella.network import GnutellaNetwork
from ...gnutella.servent import GnutellaServent
from ...openft.network import OpenFTNetwork
from ...openft.nodes import OpenFTNode
from ...openft.packets import SearchResponse
from ...simnet.kernel import Simulator
from .download import Downloader
from .records import ResponseRecord
from .store import MeasurementStore

__all__ = ["LimewireCollector", "OpenFTCollector"]


class LimewireCollector:
    """Instrumentation harness around a Gnutella crawler leaf."""

    def __init__(self, sim: Simulator, network: GnutellaNetwork,
                 crawler: GnutellaServent, store: MeasurementStore,
                 downloader: Downloader) -> None:
        self.sim = sim
        self.network = network
        self.crawler = crawler
        self.store = store
        self.downloader = downloader
        self._query_by_guid: Dict[str, str] = {}
        self._issue_time_by_guid: Dict[str, float] = {}
        crawler.on_local_hit = self._on_hit

    def issue_query(self, criteria: str) -> None:
        """Send one query and remember its GUID for hit correlation."""
        guid = self.crawler.originate_query(criteria)
        self._query_by_guid[guid_hex(guid)] = criteria
        self._issue_time_by_guid[guid_hex(guid)] = self.sim.now
        self.store.note_query()

    def _on_hit(self, hit: QueryHit, header: Header) -> None:
        query = self._query_by_guid.get(guid_hex(header.guid))
        if query is None:
            return  # hit for a query we did not issue (should not happen)
        for result in hit.results:
            record = ResponseRecord(
                network="limewire",
                time=self.sim.now,
                query=query,
                responder_host=hit.address,
                responder_port=hit.port,
                responder_key=guid_hex(hit.servent_guid),
                filename=result.filename,
                size=result.file_size,
                content_id=result.sha1_urn,
                push_needed=hit.push_needed,
                busy=hit.busy,
                vendor=hit.vendor.decode("ascii", errors="replace"),
                query_time=self._issue_time_by_guid.get(
                    guid_hex(header.guid), -1.0),
            )
            self.store.add(record)
            servent_guid = hit.servent_guid
            sha1_urn = result.sha1_urn
            crawler_id = self.crawler.endpoint_id
            self.downloader.enqueue(
                record,
                lambda guid=servent_guid, urn=sha1_urn:
                self.network.fetch(guid, urn, requester_id=crawler_id))


class OpenFTCollector:
    """Instrumentation harness around a giFT/OpenFT crawler node."""

    def __init__(self, sim: Simulator, network: OpenFTNetwork,
                 crawler: OpenFTNode, store: MeasurementStore,
                 downloader: Downloader) -> None:
        self.sim = sim
        self.network = network
        self.crawler = crawler
        self.store = store
        self.downloader = downloader
        self._query_by_search_id: Dict[int, str] = {}
        self._issue_time_by_search_id: Dict[int, float] = {}
        #: (search_id, host, md5, name) tuples already recorded -- the OpenFT
        #: mesh can deliver the same result via several parents
        self._seen: set = set()
        crawler.on_search_result = self._on_result

    def issue_query(self, query: str) -> None:
        """Send one search and remember its id for result correlation."""
        search_id = self.crawler.originate_search(query)
        self._query_by_search_id[search_id] = query
        self._issue_time_by_search_id[search_id] = self.sim.now
        self.store.note_query()

    def _on_result(self, response: SearchResponse) -> None:
        if response.is_end_marker:
            return
        query = self._query_by_search_id.get(response.search_id)
        if query is None:
            return
        dedup_key = (response.search_id, response.host, response.md5,
                     response.filename)
        if dedup_key in self._seen:
            return
        self._seen.add(dedup_key)
        record = ResponseRecord(
            network="openft",
            time=self.sim.now,
            query=query,
            responder_host=response.host,
            responder_port=response.port,
            responder_key=f"{response.host}:{response.port}",
            filename=response.filename,
            size=response.size,
            content_id=response.md5,
            push_needed=False,
            busy=response.availability == 0,
            vendor="GIFT",
            query_time=self._issue_time_by_search_id.get(
                response.search_id, -1.0),
        )
        self.store.add(record)
        host, md5 = response.host, response.md5
        crawler_id = self.crawler.endpoint_id
        self.downloader.enqueue(
            record,
            lambda host=host, md5=md5:
            self.network.fetch(host, md5, requester_id=crawler_id))
