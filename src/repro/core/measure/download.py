"""The downloader: verify responses by fetching and scanning content.

The paper downloaded responded files and ran AV over them; here every
response gets a download attempt a short (configurable) delay after it
arrives -- long enough that the responder may have churned offline, which
is exactly what separates "responses" from "downloadable responses".
Content is scanned once per distinct identity -- the scan engine's
content-addressed verdict cache dedupes byte-identical blobs -- matching
the one-scan-per-unique-file post-processing of the study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ...files.payload import Blob
from ...scanner.engine import ScanEngine
from ...simnet.kernel import Simulator
from ...simnet.rng import SeededStream
from .records import ResponseRecord

__all__ = ["DownloadPolicy", "Downloader"]

FetchFn = Callable[[], Optional[Blob]]


@dataclass(frozen=True)
class DownloadPolicy:
    """When and how often to attempt each response's download."""

    delay_min_s: float = 10.0
    delay_max_s: float = 120.0
    retries: int = 1
    retry_gap_s: float = 1800.0

    def __post_init__(self) -> None:
        if self.delay_min_s < 0 or self.delay_max_s < self.delay_min_s:
            raise ValueError("need 0 <= delay_min_s <= delay_max_s")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")


class Downloader:
    """Schedules download attempts and annotates records with outcomes."""

    def __init__(self, sim: Simulator, engine: ScanEngine,
                 policy: Optional[DownloadPolicy] = None,
                 stream: Optional[SeededStream] = None) -> None:
        self.sim = sim
        self.engine = engine
        self.policy = policy or DownloadPolicy()
        self.stream = stream if stream is not None else sim.stream(
            "downloader")
        self.attempts = 0
        self.successes = 0

    def enqueue(self, record: ResponseRecord, fetch: FetchFn) -> None:
        """Schedule the first download attempt for ``record``."""
        delay = self.stream.uniform(self.policy.delay_min_s,
                                    self.policy.delay_max_s)
        self.sim.after(delay,
                       lambda: self._attempt(record, fetch,
                                             self.policy.retries),
                       label="download")

    def _attempt(self, record: ResponseRecord, fetch: FetchFn,
                 retries_left: int) -> None:
        record.download_attempted = True
        self.attempts += 1
        blob = fetch()
        if blob is None:
            if retries_left > 0:
                self.sim.after(self.policy.retry_gap_s,
                               lambda: self._attempt(record, fetch,
                                                     retries_left - 1),
                               label="download-retry")
            return
        self.successes += 1
        record.downloaded = True
        # byte-identical content is deduped by the engine's verdict cache
        record.malware_name = self.engine.scan(blob).primary_name
