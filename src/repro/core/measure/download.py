"""The downloader: verify responses by fetching and scanning content.

The paper downloaded responded files and ran AV over them; here every
response gets a download attempt a short (configurable) delay after it
arrives -- long enough that the responder may have churned offline, which
is exactly what separates "responses" from "downloadable responses".
Content is scanned once per distinct identity -- the scan engine's
content-addressed verdict cache dedupes byte-identical blobs -- matching
the one-scan-per-unique-file post-processing of the study.

With telemetry attached the downloader keeps labelled outcome counters
and an in-flight gauge in the run's registry, and traces one
``download`` span per response (child of the collector's ``response``
span) with a nested ``scan`` span, so a malicious verdict can be walked
back to the query that provoked it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ...files.payload import Blob
from ...scanner.engine import ScanEngine
from ...simnet.kernel import Simulator
from ...simnet.rng import SeededStream
from ...telemetry.registry import MetricRegistry
from ...telemetry.spans import Span, SpanTracer
from .records import ResponseRecord

__all__ = ["DownloadPolicy", "Downloader"]

FetchFn = Callable[[], Optional[Blob]]

_HEX_DIGITS = frozenset("0123456789abcdef")


def _is_hex(value: str) -> bool:
    """True for a lowercase hex string (an OpenFT md5 content id)."""
    return all(char in _HEX_DIGITS for char in value)


@dataclass(frozen=True)
class DownloadPolicy:
    """When and how often to attempt each response's download.

    The defaults reproduce the historical schedule exactly: a backoff
    factor of 1.0 makes every retry gap equal ``retry_gap_s``, and the
    timeout only matters when a fault injector stalls a serve.
    """

    delay_min_s: float = 10.0
    delay_max_s: float = 120.0
    retries: int = 1
    retry_gap_s: float = 1800.0
    #: a serve stalled past this resolves as a ``timeout`` outcome
    attempt_timeout_s: float = 600.0
    #: exponential backoff multiplier applied per retry, capped below
    backoff_factor: float = 1.0
    max_retry_gap_s: float = 21600.0

    def __post_init__(self) -> None:
        if self.delay_min_s < 0 or self.delay_max_s < self.delay_min_s:
            raise ValueError("need 0 <= delay_min_s <= delay_max_s")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.attempt_timeout_s <= 0:
            raise ValueError("attempt_timeout_s must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if self.max_retry_gap_s < self.retry_gap_s:
            raise ValueError("need max_retry_gap_s >= retry_gap_s")

    def retry_gap(self, attempt_index: int) -> float:
        """Gap before the retry following attempt ``attempt_index``."""
        gap = self.retry_gap_s * self.backoff_factor ** attempt_index
        return min(gap, self.max_retry_gap_s)


class Downloader:
    """Schedules download attempts and annotates records with outcomes."""

    def __init__(self, sim: Simulator, engine: ScanEngine,
                 policy: Optional[DownloadPolicy] = None,
                 stream: Optional[SeededStream] = None,
                 registry: Optional[MetricRegistry] = None,
                 tracer: Optional[SpanTracer] = None,
                 faults=None) -> None:
        self.sim = sim
        self.engine = engine
        self.policy = policy or DownloadPolicy()
        self.stream = stream if stream is not None else sim.stream(
            "downloader")
        #: fetch-path fault hook (``FetchFaults``-shaped); None means the
        #: attempt path is byte-for-byte the uninjected one
        self.faults = faults
        self.attempts = 0
        self.successes = 0
        self.tracer = tracer
        self._in_flight_gauge = None
        self._attempt_counter = None
        self._enqueued_counter = None
        self._malicious_counter = None
        if registry is not None:
            self._enqueued_counter = registry.counter(
                "downloader_enqueued_total",
                "Responses handed to the downloader.")
            self._attempt_counter = registry.counter(
                "downloader_attempts_total",
                "Download attempts by outcome.",
                labels=("outcome",))
            self._in_flight_gauge = registry.gauge(
                "downloader_in_flight",
                "Responses enqueued whose download has not yet resolved.")
            self._malicious_counter = registry.counter(
                "downloader_malicious_total",
                "Downloads whose content scanned dirty.")

    def enqueue(self, record: ResponseRecord, fetch: FetchFn,
                parent_span: Optional[Span] = None) -> None:
        """Schedule the first download attempt for ``record``."""
        delay = self.stream.uniform(self.policy.delay_min_s,
                                    self.policy.delay_max_s)
        if self._enqueued_counter is not None:
            self._enqueued_counter.inc()
            self._in_flight_gauge.inc()
        span = None
        if self.tracer is not None:
            span = self.tracer.start(
                "download", self.sim.now, parent=parent_span,
                responder=record.responder_key, filename=record.filename)
        self.sim.after(delay,
                       lambda: self._attempt(record, fetch,
                                             self.policy.retries, span),
                       label="download")

    def _resolve(self, span: Optional[Span], outcome: str,
                 malware: Optional[str] = None) -> None:
        """Final bookkeeping once a download stops being in flight."""
        if self._in_flight_gauge is not None:
            self._in_flight_gauge.dec()
        if self.tracer is not None:
            self.tracer.end(span, self.sim.now, outcome=outcome,
                            malware=malware)

    def _attempt(self, record: ResponseRecord, fetch: FetchFn,
                 retries_left: int, span: Optional[Span] = None) -> None:
        record.download_attempted = True
        self.attempts += 1
        intervention = None
        if self.faults is not None:
            intervention = self.faults.on_fetch(
                record, self.policy.retries - retries_left)
        if intervention is not None and intervention.stall_s > 0.0:
            if intervention.stall_s > self.policy.attempt_timeout_s:
                # the serve never finishes inside the timeout: give up
                # at the deadline without ever seeing the bytes
                self.sim.after(
                    self.policy.attempt_timeout_s,
                    lambda: self._attempt_failed(record, fetch,
                                                 retries_left, span,
                                                 "timeout"),
                    label="download-timeout")
                return
            self.sim.after(
                intervention.stall_s,
                lambda: self._complete(record, fetch, retries_left, span,
                                       intervention),
                label="download-stall")
            return
        self._complete(record, fetch, retries_left, span, intervention)

    def _complete(self, record: ResponseRecord, fetch: FetchFn,
                  retries_left: int, span: Optional[Span],
                  intervention) -> None:
        """The serve finished (immediately, or after a survivable stall)."""
        blob = fetch()
        if blob is None:
            self._attempt_failed(record, fetch, retries_left, span,
                                 "offline")
            return
        if intervention is not None:
            blob = intervention.tamper_blob(blob)
        failure = self._integrity_failure(record, blob)
        if failure is not None:
            self._attempt_failed(record, fetch, retries_left, span, failure)
            return
        self.successes += 1
        record.downloaded = True
        record.download_outcome = "success"
        if self._attempt_counter is not None:
            self._attempt_counter.labels("success").inc()
        scan_span = None
        if self.tracer is not None:
            scan_span = self.tracer.start("scan", self.sim.now, parent=span)
        # byte-identical content is deduped by the engine's verdict cache
        verdict = self.engine.scan(blob)
        record.malware_name = verdict.primary_name
        if self.tracer is not None:
            self.tracer.end(scan_span, self.sim.now,
                            clean=verdict.clean,
                            malware=verdict.primary_name)
        if not verdict.clean and self._malicious_counter is not None:
            self._malicious_counter.inc()
        self._resolve(span, "success", malware=verdict.primary_name)

    def _attempt_failed(self, record: ResponseRecord, fetch: FetchFn,
                        retries_left: int, span: Optional[Span],
                        outcome: str) -> None:
        """One attempt failed (``offline``/``timeout``/``truncated``/
        ``corrupt``): back off and retry, or resolve terminally."""
        if retries_left > 0:
            if self._attempt_counter is not None:
                self._attempt_counter.labels("retry").inc()
            gap = self.policy.retry_gap(self.policy.retries - retries_left)
            self.sim.after(gap,
                           lambda: self._attempt(record, fetch,
                                                 retries_left - 1, span),
                           label="download-retry")
            return
        record.download_outcome = outcome
        if self._attempt_counter is not None:
            self._attempt_counter.labels(outcome).inc()
        self._resolve(span, outcome)

    def _integrity_failure(self, record: ResponseRecord,
                           blob: Blob) -> Optional[str]:
        """Verify fetched bytes against the advertised content id.

        Returns None when the blob checks out (or the id scheme is
        unknown, e.g. synthetic test ids); otherwise the labelled
        failure -- a short payload reads as a cut-off transfer, a
        full-length mismatch as corruption.  Either way the bytes are
        *never* scanned, so a tampered payload can't fake a verdict.
        """
        content_id = record.content_id
        if content_id.startswith("urn:sha1:"):
            if blob.sha1_urn() == content_id:
                return None
        elif len(content_id) == 32 and _is_hex(content_id):
            if blob.md5_hex() == content_id:
                return None
        else:
            return None
        return "truncated" if blob.size < record.size else "corrupt"
