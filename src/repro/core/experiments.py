"""Multi-seed experiment runner: reproducibility across worlds.

One campaign is one random world; the reproduction's claims should hold
across worlds.  :func:`run_replications` runs the same configuration
under several seeds, collects every headline metric per seed, and
aggregates mean / min / max -- the numbers EXPERIMENTS.md quotes as
"seed-dependent" ranges.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..telemetry.registry import MetricRegistry
from ..telemetry.runtime import CampaignTelemetry
from .analysis.concentration import top_n_share
from .analysis.prevalence import compute_prevalence
from .analysis.sources import address_breakdown
from .measure.campaign import (CampaignConfig, CampaignResult,
                               run_limewire_campaign, run_openft_campaign)
from .parallel import merge_worker_registries, parallel_map

__all__ = ["MetricSummary", "ReplicationReport", "HEADLINE_METRICS",
           "replicate_one", "run_replications"]

MetricFn = Callable[[CampaignResult], float]

#: The headline metrics, by network.
HEADLINE_METRICS: Dict[str, Dict[str, MetricFn]] = {
    "limewire": {
        "prevalence": lambda result: compute_prevalence(
            result.store).fraction,
        "top3_share": lambda result: top_n_share(result.store, 3),
        "private_share": lambda result: address_breakdown(
            result.store).fraction("private"),
    },
    "openft": {
        "prevalence": lambda result: compute_prevalence(
            result.store).fraction,
        "top3_share": lambda result: top_n_share(result.store, 3),
    },
}


@dataclass(frozen=True)
class MetricSummary:
    """One metric across replications."""

    name: str
    values: tuple

    @property
    def mean(self) -> float:
        """Average across seeds."""
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def low(self) -> float:
        """Worst-case low across seeds."""
        return min(self.values) if self.values else 0.0

    @property
    def high(self) -> float:
        """Worst-case high across seeds."""
        return max(self.values) if self.values else 0.0

    def within(self, low: float, high: float) -> bool:
        """True when every replication landed inside [low, high]."""
        return all(low <= value <= high for value in self.values)


@dataclass(frozen=True)
class ReplicationReport:
    """All metrics for one network across seeds."""

    network: str
    seeds: tuple
    metrics: Dict[str, MetricSummary]
    #: merged per-worker telemetry (set when telemetry_dir was given)
    registry: Optional[MetricRegistry] = None
    #: where the merged Prometheus textfile was written, if anywhere
    telemetry_path: Optional[Path] = None

    def render(self) -> str:
        """Text table of the replication results."""
        lines = [f"replications ({self.network}, seeds {list(self.seeds)})",
                 f"{'metric':<15s} {'mean':>7s} {'min':>7s} {'max':>7s}"]
        for name, summary in self.metrics.items():
            lines.append(f"{name:<15s} {summary.mean:7.1%} "
                         f"{summary.low:7.1%} {summary.high:7.1%}")
        return "\n".join(lines)


def replicate_one(network: str, config: CampaignConfig, profile,
                  seed: int, telemetry_dir: Optional[Path] = None,
                  sanitize: bool = False):
    """Run one seed's campaign and return its headline metric values.

    Top-level (and therefore picklable) on purpose: this is the unit of
    work the parallel runner ships to worker processes.  Only the small
    metric dict crosses the process boundary -- campaign results hold a
    live simulator full of closures and never need to be pickled.

    With ``telemetry_dir`` the campaign runs fully instrumented: the
    journal/spans/metrics for this seed land in that directory (named
    ``<network>_seed<seed>_*``), and the return value becomes a
    ``(metrics, registry_snapshot)`` pair so the parent process can
    merge every worker's registry.

    With ``sanitize`` the campaign runs inside the determinism
    sanitizer: any bare ``random.*`` / wall-clock / ambient-entropy
    call aborts the replication instead of silently skewing it.  The
    sanitizer patches process-global entry points, so keep it off in
    benchmark legs.
    """
    if network not in HEADLINE_METRICS:
        raise ValueError(f"unknown network {network!r}")
    runner = (run_limewire_campaign if network == "limewire"
              else run_openft_campaign)
    telemetry = None
    if telemetry_dir is not None:
        telemetry = CampaignTelemetry.for_directory(
            Path(telemetry_dir), f"{network}_seed{seed}")
    if sanitize:
        # deferred on purpose: devtools sits above core in the layer
        # DAG, and only this opt-in path reaches up into it (declared
        # in [tool.detlint] deferred_imports)
        from ..devtools.sanitizer import DeterminismSanitizer
        with DeterminismSanitizer(mode="raise"):
            result = runner(replace(config, seed=seed), profile=profile,
                            telemetry=telemetry)
    else:
        result = runner(replace(config, seed=seed), profile=profile,
                        telemetry=telemetry)
    metrics = {name: metric(result)
               for name, metric in HEADLINE_METRICS[network].items()}
    if telemetry is None:
        return metrics
    telemetry.write_outputs(Path(telemetry_dir), f"{network}_seed{seed}")
    return metrics, telemetry.registry.snapshot()


def run_replications(network: str, seeds: Sequence[int],
                     config: CampaignConfig, profile=None,
                     workers: Optional[int] = 1,
                     telemetry_dir: Optional[Path] = None,
                     sanitize: bool = False,
                     ) -> ReplicationReport:
    """Run one campaign per seed and summarize the headline metrics.

    ``workers`` fans seeds out over a process pool (``None`` = one per
    CPU); each seed's campaign is fully determined by its seed, so the
    report is bit-identical to ``workers=1`` -- the merge happens in
    seed order, not completion order.

    ``telemetry_dir`` instruments every replication: per-seed journals,
    spans and metrics land there, the per-worker registries merge (in
    seed order, so deterministically) into ``report.registry``, and the
    merged Prometheus textfile is written as
    ``<network>_merged_metrics.prom``.

    ``sanitize`` arms the runtime determinism sanitizer inside every
    replication (see :mod:`repro.devtools.sanitizer`): an opt-in
    correctness mode that turns any forbidden entropy use into a hard
    failure.  Off by default -- it patches hot global entry points.
    """
    if network not in HEADLINE_METRICS:
        raise ValueError(f"unknown network {network!r}")
    metric_fns = HEADLINE_METRICS[network]
    worker = functools.partial(replicate_one, network, config, profile,
                               telemetry_dir=telemetry_dir,
                               sanitize=sanitize)
    per_seed = parallel_map(worker, list(seeds), workers=workers)
    registry = None
    telemetry_path = None
    if telemetry_dir is not None:
        snapshots = [snapshot for _, snapshot in per_seed]
        per_seed = [metrics for metrics, _ in per_seed]
        registry = merge_worker_registries(MetricRegistry(), snapshots)
        telemetry_path = (Path(telemetry_dir)
                          / f"{network}_merged_metrics.prom")
        telemetry_path.write_text(registry.render_prometheus(),
                                  encoding="utf-8")
    per_metric: Dict[str, List[float]] = {name: [] for name in metric_fns}
    for metrics in per_seed:
        for name in metric_fns:
            per_metric[name].append(metrics[name])
    return ReplicationReport(
        network=network, seeds=tuple(seeds),
        metrics={name: MetricSummary(name=name, values=tuple(values))
                 for name, values in per_metric.items()},
        registry=registry, telemetry_path=telemetry_path)
