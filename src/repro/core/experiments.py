"""Multi-seed experiment runner: reproducibility across worlds.

One campaign is one random world; the reproduction's claims should hold
across worlds.  :func:`run_replications` runs the same configuration
under several seeds, collects every headline metric per seed, and
aggregates mean / min / max -- the numbers EXPERIMENTS.md quotes as
"seed-dependent" ranges.
"""

from __future__ import annotations

import functools
import hashlib
import traceback
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..faults import InjectedWorkerCrash
from ..resilience import (DurableAppender, HostIntervention,
                          SupervisionPolicy, atomic_write_text,
                          recover_frames, supervised_map)
from ..telemetry.registry import MetricRegistry
from ..telemetry.runtime import CampaignTelemetry
from .analysis.concentration import top_n_share
from .analysis.prevalence import compute_prevalence
from .analysis.sources import address_breakdown
from .measure.campaign import (CampaignConfig, CampaignResult,
                               run_limewire_campaign, run_openft_campaign)
from .parallel import merge_worker_registries, parallel_map, resolve_workers

__all__ = ["MetricSummary", "ReplicationReport", "HEADLINE_METRICS",
           "SeedFailure", "CheckpointJournal", "replicate_one",
           "run_replications"]

MetricFn = Callable[[CampaignResult], float]

#: The headline metrics, by network.
HEADLINE_METRICS: Dict[str, Dict[str, MetricFn]] = {
    "limewire": {
        "prevalence": lambda result: compute_prevalence(
            result.store).fraction,
        "top3_share": lambda result: top_n_share(result.store, 3),
        "private_share": lambda result: address_breakdown(
            result.store).fraction("private"),
    },
    "openft": {
        "prevalence": lambda result: compute_prevalence(
            result.store).fraction,
        "top3_share": lambda result: top_n_share(result.store, 3),
    },
}


@dataclass(frozen=True)
class MetricSummary:
    """One metric across replications."""

    name: str
    values: tuple

    @property
    def mean(self) -> float:
        """Average across seeds."""
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def low(self) -> float:
        """Worst-case low across seeds."""
        return min(self.values) if self.values else 0.0

    @property
    def high(self) -> float:
        """Worst-case high across seeds."""
        return max(self.values) if self.values else 0.0

    def within(self, low: float, high: float) -> bool:
        """True when every replication landed inside [low, high]."""
        return all(low <= value <= high for value in self.values)


@dataclass(frozen=True)
class SeedFailure:
    """One replication seed that failed its attempt *and* its retry."""

    seed: int
    attempts: int
    error: str


@dataclass(frozen=True)
class ReplicationReport:
    """All metrics for one network across seeds."""

    network: str
    seeds: tuple
    metrics: Dict[str, MetricSummary]
    #: merged per-worker telemetry (set when telemetry_dir was given)
    registry: Optional[MetricRegistry] = None
    #: where the merged Prometheus textfile was written, if anywhere
    telemetry_path: Optional[Path] = None
    #: seeds whose campaigns actually completed (== ``seeds`` unless
    #: the run degraded)
    completed_seeds: tuple = ()
    #: True when at least one seed was quarantined after its retry;
    #: the metrics then summarize the surviving seeds only
    degraded: bool = False
    failures: Tuple[SeedFailure, ...] = ()

    def render(self) -> str:
        """Text table of the replication results."""
        lines = [f"replications ({self.network}, seeds {list(self.seeds)})",
                 f"{'metric':<15s} {'mean':>7s} {'min':>7s} {'max':>7s}"]
        for name, summary in self.metrics.items():
            lines.append(f"{name:<15s} {summary.mean:7.1%} "
                         f"{summary.low:7.1%} {summary.high:7.1%}")
        if self.degraded:
            dead = [failure.seed for failure in self.failures]
            lines.append(f"DEGRADED: seeds {dead} quarantined after retry; "
                         f"metrics cover {len(self.completed_seeds)}/"
                         f"{len(self.seeds)} seeds")
        return "\n".join(lines)


def replicate_one(network: str, config: CampaignConfig, profile,
                  seed: int, telemetry_dir: Optional[Path] = None,
                  sanitize: bool = False, attempt: int = 0,
                  journal_interval_s: Optional[float] = None,
                  shard_executor: str = "auto"):
    """Run one seed's campaign and return its headline metric values.

    Top-level (and therefore picklable) on purpose: this is the unit of
    work the parallel runner ships to worker processes.  Only the small
    metric dict crosses the process boundary -- campaign results hold a
    live simulator full of closures and never need to be pickled.

    With ``telemetry_dir`` the campaign runs fully instrumented: the
    journal/spans/metrics for this seed land in that directory (named
    ``<network>_seed<seed>_*``), and the return value becomes a
    ``(metrics, registry_snapshot)`` pair so the parent process can
    merge every worker's registry.

    With ``sanitize`` the campaign runs inside the determinism
    sanitizer: any bare ``random.*`` / wall-clock / ambient-entropy
    call aborts the replication instead of silently skewing it.  The
    sanitizer patches process-global entry points, so keep it off in
    benchmark legs.
    """
    if network not in HEADLINE_METRICS:
        raise ValueError(f"unknown network {network!r}")
    crash = config.fault_plan.worker_crash if config.fault_plan else None
    if crash is not None and crash.should_crash(seed, attempt):
        raise InjectedWorkerCrash(
            f"injected worker crash: seed {seed}, attempt {attempt}")
    runner = (run_limewire_campaign if network == "limewire"
              else run_openft_campaign)
    telemetry = None
    if telemetry_dir is not None:
        telemetry = CampaignTelemetry.for_directory(
            Path(telemetry_dir), f"{network}_seed{seed}",
            journal_interval_s=journal_interval_s)
    if sanitize:
        # deferred on purpose: devtools sits above core in the layer
        # DAG, and only this opt-in path reaches up into it (declared
        # in [tool.detlint] deferred_imports)
        from ..devtools.sanitizer import DeterminismSanitizer
        with DeterminismSanitizer(mode="raise"):
            result = runner(replace(config, seed=seed), profile=profile,
                            telemetry=telemetry, attempt=attempt,
                            shard_executor=shard_executor)
    else:
        result = runner(replace(config, seed=seed), profile=profile,
                        telemetry=telemetry, attempt=attempt,
                        shard_executor=shard_executor)
    metrics = {name: metric(result)
               for name, metric in HEADLINE_METRICS[network].items()}
    shard_prints = (result.shards.fingerprints
                    if result.shards is not None else None)
    if telemetry is not None:
        telemetry.write_outputs(Path(telemetry_dir), f"{network}_seed{seed}")
    if shard_prints is not None:
        # sharded runs always report a triple so the checkpoint journal
        # can persist the per-shard fingerprints next to the metrics
        snapshot = (telemetry.registry.snapshot()
                    if telemetry is not None else None)
        return metrics, snapshot, shard_prints
    if telemetry is None:
        return metrics
    return metrics, telemetry.registry.snapshot()


@dataclass(frozen=True)
class _SeedOutcome:
    """What one guarded replication attempt reported back.

    Plain picklable fields only: outcomes cross the process boundary.
    """

    seed: int
    attempt: int
    ok: bool
    metrics: Optional[dict] = None
    snapshot: Optional[dict] = None
    #: per-shard journal fingerprints when the campaign ran sharded
    shards: Optional[tuple] = None
    error: str = ""


def _guarded_replicate(network: str, config: CampaignConfig, profile,
                       seed_attempt, telemetry_dir=None,
                       sanitize: bool = False,
                       journal_interval_s: Optional[float] = None,
                       shard_executor: str = "auto",
                       ) -> _SeedOutcome:
    """Run one seed, converting any crash into a reportable outcome.

    Top-level and picklable, like :func:`replicate_one`.  A worker
    exception must never take the whole campaign down with it -- it
    comes back as ``ok=False`` with the traceback, and the parent
    decides whether to retry or quarantine the seed.
    """
    seed, attempt = seed_attempt
    try:
        result = replicate_one(network, config, profile, seed,
                               telemetry_dir=telemetry_dir,
                               sanitize=sanitize, attempt=attempt,
                               journal_interval_s=journal_interval_s,
                               shard_executor=shard_executor)
    except Exception:
        return _SeedOutcome(seed=seed, attempt=attempt, ok=False,
                            error=traceback.format_exc())
    shards = None
    if isinstance(result, tuple) and len(result) == 3:
        metrics, snapshot, shards = result
    elif telemetry_dir is not None:
        metrics, snapshot = result
    else:
        metrics, snapshot = result, None
    return _SeedOutcome(seed=seed, attempt=attempt, ok=True,
                        metrics=metrics, snapshot=snapshot, shards=shards)


def _experiment_fingerprint(network: str, config: CampaignConfig,
                            profile) -> str:
    """Identity a checkpoint journal is only valid for.

    Built from everything that shapes a seed's *measured* result --
    network, config (with the fault plan reduced to its simulated
    clauses via ``scientific_key``) and profile.  Worker-crash chaos is
    excluded on purpose: a checkpoint written under pipeline chaos
    stays valid when resuming without it, and vice versa.
    """
    plan = config.fault_plan
    # a clause-less plan (or worker-crash-only chaos) measures the same
    # results as no plan at all, so both map to the empty key
    science = plan.scientific_key() if plan and plan.clauses else ""
    bare = replace(config, fault_plan=None)
    raw = f"{network}|{bare!r}|faults:{science}|{profile!r}"
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()


class CheckpointJournal:
    """Crash-safe journal of completed replication seeds.

    First record is a header binding the journal to one experiment
    fingerprint; every further record is one completed seed with its
    metrics (and registry snapshot when telemetry is on).  Rerunning
    ``run_replications`` with the same ``checkpoint`` path skips the
    recorded seeds and completes the rest, producing a report identical
    to an uninterrupted run.

    Records are CRC32-framed and fsynced per append (see
    :mod:`repro.resilience.store`); pre-framing journals load fine and
    are upgraded in place the first time a repair touches them.  A
    SIGKILL mid-append leaves a torn final line, which :meth:`_load`
    truncates away on the next open -- the torn record was never
    acknowledged, so nothing committed is lost.  ``io`` accepts a
    chaotic-IO hook (:class:`repro.faults.injectors.HostIOFaults`);
    injected write failures degrade journaling (counted in
    ``write_errors``) instead of killing the run.
    """

    def __init__(self, path: Path, fingerprint: str, io=None) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._io = io
        #: seed -> journal entry for every recorded completion
        self.completed: Dict[int, dict] = {}
        #: appends that failed (and were survived) this run
        self.write_errors = 0
        self._appender = DurableAppender(self.path, framed=True, io=io)
        if self.path.exists():
            self._load()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._appender.append({"kind": "header",
                                   "fingerprint": fingerprint})

    def _load(self) -> None:
        # repair=True truncates a torn tail (a crash mid-append) and
        # quarantines corrupt interior records before we append after
        # them -- appending onto a torn fragment would weld two records
        # into one corrupt line
        scan = recover_frames(self.path, repair=True)
        entries = [entry for entry in scan.records
                   if isinstance(entry, dict)]
        if not entries:
            # empty or torn-before-the-header-committed: nothing was
            # ever recorded, so start the journal fresh
            self._appender.append({"kind": "header",
                                   "fingerprint": self.fingerprint})
            return
        if entries[0].get("kind") != "header":
            raise ValueError(f"{self.path}: not a replication checkpoint")
        found = entries[0].get("fingerprint")
        if found != self.fingerprint:
            raise ValueError(
                f"{self.path}: checkpoint was written by a different "
                f"experiment configuration (its fingerprint "
                f"{str(found)[:12]}... does not match this run's "
                f"{self.fingerprint[:12]}...).  If that journal belongs "
                f"to another experiment, point --checkpoint somewhere "
                f"else; if you changed the configuration on purpose, "
                f"delete the file and rerun from scratch.  "
                f"`repro-study doctor {self.path}` shows what it holds.")
        for entry in entries[1:]:
            if entry.get("kind") == "seed":
                self.completed[int(entry["seed"])] = entry

    def record(self, seed: int, metrics: dict,
               snapshot: Optional[dict],
               shards: Optional[Sequence[dict]] = None) -> None:
        """Persist one completed seed (idempotent: re-records are no-ops,
        which absorbs the serial-redo replay after a broken pool).
        ``shards`` carries the per-shard fingerprints of a sharded
        campaign so a resume can audit shard-level divergence."""
        if seed in self.completed:
            return
        entry = {"kind": "seed", "seed": seed, "metrics": metrics,
                 "snapshot": snapshot}
        if shards is not None:
            entry["shards"] = list(shards)
        self.completed[seed] = entry
        try:
            self._appender.append(entry)
        except OSError:
            # a full or injected-chaotic disk must degrade journaling,
            # not kill the campaign: the seed stays completed in memory
            # and simply is not resumable.  Clean the torn bytes the
            # failed append may have left so the next one lands whole.
            self.write_errors += 1
            self._repair_tail()

    def _repair_tail(self) -> None:
        self._appender.close()
        try:
            recover_frames(self.path, repair=True)
        except OSError:
            pass
        self._appender = DurableAppender(self.path, framed=True,
                                         io=self._io)

    def close(self) -> None:
        self._appender.close()


def run_replications(network: str, seeds: Sequence[int],
                     config: CampaignConfig, profile=None,
                     workers: Optional[int] = 1,
                     telemetry_dir: Optional[Path] = None,
                     sanitize: bool = False,
                     checkpoint: Optional[Path] = None,
                     journal_interval_s: Optional[float] = None,
                     serve_port: Optional[int] = None,
                     serve_host: str = "127.0.0.1",
                     on_serve: Optional[Callable[[str], None]] = None,
                     supervision: Optional[SupervisionPolicy] = None,
                     on_kill: Optional[Callable] = None,
                     shard_executor: str = "auto",
                     ) -> ReplicationReport:
    """Run one campaign per seed and summarize the headline metrics.

    ``workers`` fans seeds out over a process pool (``None`` = one per
    CPU); each seed's campaign is fully determined by its seed, so the
    report is bit-identical to ``workers=1`` -- the merge happens in
    seed order, not completion order.

    ``telemetry_dir`` instruments every replication: per-seed journals,
    spans and metrics land there, the per-worker registries merge (in
    seed order, so deterministically) into ``report.registry``, and the
    merged Prometheus textfile is written as
    ``<network>_merged_metrics.prom``.

    ``sanitize`` arms the runtime determinism sanitizer inside every
    replication (see :mod:`repro.devtools.sanitizer`): an opt-in
    correctness mode that turns any forbidden entropy use into a hard
    failure.  Off by default -- it patches hot global entry points.

    The run self-heals: a seed whose worker crashes is retried once,
    and a seed that fails its retry too is quarantined -- the report
    then carries the surviving seeds' metrics with ``degraded=True``
    and the per-seed errors in ``failures``.  Only a campaign where
    *every* seed dies raises.  ``checkpoint`` names a
    :class:`CheckpointJournal` file: completed seeds are persisted as
    they land and skipped on the next invocation, so an interrupted
    campaign resumes instead of recomputing.

    ``serve_port`` (requires ``telemetry_dir``) exposes the fan-out
    live on one aggregated observability endpoint: every seed's
    journal is tailed and every finished worker's registry snapshot
    merges into ``/metrics`` in seed order.  ``port=0`` binds an
    ephemeral port; ``on_serve(url)`` fires once the server is up.
    The server is read-only -- results are bit-identical with it on
    or off.

    ``supervision`` swaps the plain process pool for the supervised
    one (:func:`repro.resilience.supervisor.supervised_map`): workers
    heartbeat, hung or stalled workers are killed and requeued with
    backoff, and a worker whose every requeue dies degrades into the
    same retry-then-quarantine path a crashing worker takes -- a
    wedged host can slow the campaign but never hang it.  Per-seed
    results stay bit-identical to an unsupervised run; ``on_kill``
    observes every watchdog intervention.  Worker-hang/-stall clauses
    in the fault plan are enforced only under supervision (an
    unsupervised run must not be able to wedge itself).

    ``shard_executor`` only matters when ``config.shards >= 2``: it
    picks how each seed's sharded campaign executes (``auto`` /
    ``serial`` / ``process``) and never changes results, only wall
    clock.  Sharded seeds record per-shard fingerprints into the
    checkpoint journal.
    """
    if network not in HEADLINE_METRICS:
        raise ValueError(f"unknown network {network!r}")
    if serve_port is not None and telemetry_dir is None:
        raise ValueError("serve_port requires telemetry_dir (the served "
                         "journals and snapshots live there)")
    metric_fns = HEADLINE_METRICS[network]
    seeds = list(seeds)
    plan = config.fault_plan
    journal = None
    if checkpoint is not None:
        journal_io = None
        if plan and plan.io_clauses:
            from ..faults.injectors import HostIOFaults
            journal_io = HostIOFaults(plan, seed=config.seed)
        journal = CheckpointJournal(
            Path(checkpoint),
            _experiment_fingerprint(network, config, profile),
            io=journal_io)
    completed: Dict[int, tuple] = {}
    if journal is not None:
        for seed in seeds:
            entry = journal.completed.get(seed)
            if entry is not None:
                completed[seed] = (entry["metrics"], entry.get("snapshot"))

    server = None
    hub = None
    if serve_port is not None:
        # deferred on purpose: the server is opt-in and pulls in the
        # whole HTTP stack; replications without it never pay for it
        from ..telemetry.httpd import ObservatoryHub, TelemetryServer
        hub = ObservatoryHub(title=f"{network} replications")
        hub.set_status(network=network, seeds=list(seeds),
                       workers=workers)
        for seed in seeds:
            hub.add_journal(
                f"{network}_seed{seed}",
                Path(telemetry_dir) / f"{network}_seed{seed}_journal.jsonl")
        for seed, (_metrics, snapshot) in sorted(completed.items()):
            if snapshot:
                hub.record_snapshot(seed, snapshot)
        server = TelemetryServer(hub, host=serve_host,
                                 port=serve_port).start()
        if on_serve is not None:
            on_serve(server.url)

    def on_result(seed_attempt, outcome: _SeedOutcome) -> None:
        if journal is not None and outcome.ok:
            journal.record(outcome.seed, outcome.metrics, outcome.snapshot,
                           shards=outcome.shards)
        if hub is not None and outcome.ok and outcome.snapshot:
            hub.record_snapshot(outcome.seed, outcome.snapshot)

    worker = functools.partial(_guarded_replicate, network, config, profile,
                               telemetry_dir=telemetry_dir,
                               sanitize=sanitize,
                               journal_interval_s=journal_interval_s,
                               shard_executor=shard_executor)

    if supervision is not None:
        hang = plan.worker_hang if plan else None
        stall = plan.worker_stall if plan else None

        def intervention(seed_attempt) -> Optional[HostIntervention]:
            seed, attempt = seed_attempt
            if hang is not None and hang.should_hang(seed, attempt):
                return HostIntervention(kind="hang", seconds=hang.hang_s)
            if stall is not None and stall.should_stall(seed, attempt):
                return HostIntervention(kind="stall",
                                        seconds=stall.stall_s)
            return None

        def supervised_failure(seed_attempt, reason: str) -> _SeedOutcome:
            seed, attempt = seed_attempt
            return _SeedOutcome(seed=seed, attempt=attempt, ok=False,
                                error=f"supervision: {reason}")

        def fan_out(items):
            return supervised_map(
                worker, items,
                workers=resolve_workers(workers, len(items)),
                policy=supervision, intervention=intervention,
                failure=supervised_failure, on_result=on_result,
                on_kill=on_kill)
    else:
        def fan_out(items):
            return parallel_map(worker, items, workers=workers,
                                on_result=on_result)

    pending = [seed for seed in seeds if seed not in completed]
    try:
        outcomes = fan_out([(seed, 0) for seed in pending])
        to_retry: List[int] = []
        for outcome in outcomes:
            if outcome.ok:
                completed[outcome.seed] = (outcome.metrics, outcome.snapshot)
            else:
                to_retry.append(outcome.seed)
        failures: Dict[int, _SeedOutcome] = {}
        if to_retry:
            retried = fan_out([(seed, 1) for seed in to_retry])
            for outcome in retried:
                if outcome.ok:
                    completed[outcome.seed] = (outcome.metrics,
                                               outcome.snapshot)
                else:
                    failures[outcome.seed] = outcome
    finally:
        if server is not None:
            server.stop()
        if journal is not None:
            journal.close()
    survivors = [seed for seed in seeds if seed in completed]
    if not survivors:
        first = failures[seeds[0]] if seeds[0] in failures else (
            next(iter(failures.values())))
        raise RuntimeError(
            f"every replication seed failed; first error:\n{first.error}")

    registry = None
    telemetry_path = None
    if telemetry_dir is not None:
        registry = merge_worker_registries(
            MetricRegistry(),
            [completed[seed][1] for seed in survivors])
        telemetry_path = (Path(telemetry_dir)
                          / f"{network}_merged_metrics.prom")
        atomic_write_text(telemetry_path, registry.render_prometheus())
    per_metric: Dict[str, List[float]] = {name: [] for name in metric_fns}
    for seed in survivors:
        metrics = completed[seed][0]
        for name in metric_fns:
            per_metric[name].append(metrics[name])
    return ReplicationReport(
        network=network, seeds=tuple(seeds),
        metrics={name: MetricSummary(name=name, values=tuple(values))
                 for name, values in per_metric.items()},
        registry=registry, telemetry_path=telemetry_path,
        completed_seeds=tuple(survivors),
        degraded=bool(failures),
        failures=tuple(SeedFailure(seed=seed, attempts=2,
                                   error=failures[seed].error)
                       for seed in seeds if seed in failures))
