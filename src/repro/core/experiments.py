"""Multi-seed experiment runner: reproducibility across worlds.

One campaign is one random world; the reproduction's claims should hold
across worlds.  :func:`run_replications` runs the same configuration
under several seeds, collects every headline metric per seed, and
aggregates mean / min / max -- the numbers EXPERIMENTS.md quotes as
"seed-dependent" ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence

from .analysis.concentration import top_n_share
from .analysis.prevalence import compute_prevalence
from .analysis.sources import address_breakdown
from .measure.campaign import (CampaignConfig, CampaignResult,
                               run_limewire_campaign, run_openft_campaign)

__all__ = ["MetricSummary", "ReplicationReport", "HEADLINE_METRICS",
           "run_replications"]

MetricFn = Callable[[CampaignResult], float]

#: The headline metrics, by network.
HEADLINE_METRICS: Dict[str, Dict[str, MetricFn]] = {
    "limewire": {
        "prevalence": lambda result: compute_prevalence(
            result.store).fraction,
        "top3_share": lambda result: top_n_share(result.store, 3),
        "private_share": lambda result: address_breakdown(
            result.store).fraction("private"),
    },
    "openft": {
        "prevalence": lambda result: compute_prevalence(
            result.store).fraction,
        "top3_share": lambda result: top_n_share(result.store, 3),
    },
}


@dataclass(frozen=True)
class MetricSummary:
    """One metric across replications."""

    name: str
    values: tuple

    @property
    def mean(self) -> float:
        """Average across seeds."""
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def low(self) -> float:
        """Worst-case low across seeds."""
        return min(self.values) if self.values else 0.0

    @property
    def high(self) -> float:
        """Worst-case high across seeds."""
        return max(self.values) if self.values else 0.0

    def within(self, low: float, high: float) -> bool:
        """True when every replication landed inside [low, high]."""
        return all(low <= value <= high for value in self.values)


@dataclass(frozen=True)
class ReplicationReport:
    """All metrics for one network across seeds."""

    network: str
    seeds: tuple
    metrics: Dict[str, MetricSummary]

    def render(self) -> str:
        """Text table of the replication results."""
        lines = [f"replications ({self.network}, seeds {list(self.seeds)})",
                 f"{'metric':<15s} {'mean':>7s} {'min':>7s} {'max':>7s}"]
        for name, summary in self.metrics.items():
            lines.append(f"{name:<15s} {summary.mean:7.1%} "
                         f"{summary.low:7.1%} {summary.high:7.1%}")
        return "\n".join(lines)


def run_replications(network: str, seeds: Sequence[int],
                     config: CampaignConfig,
                     profile=None) -> ReplicationReport:
    """Run one campaign per seed and summarize the headline metrics."""
    if network not in HEADLINE_METRICS:
        raise ValueError(f"unknown network {network!r}")
    runner = (run_limewire_campaign if network == "limewire"
              else run_openft_campaign)
    metric_fns = HEADLINE_METRICS[network]
    per_metric: Dict[str, List[float]] = {name: [] for name in metric_fns}
    for seed in seeds:
        result = runner(replace(config, seed=seed), profile=profile)
        for name, metric in metric_fns.items():
            per_metric[name].append(metric(result))
    return ReplicationReport(
        network=network, seeds=tuple(seeds),
        metrics={name: MetricSummary(name=name, values=tuple(values))
                 for name, values in per_metric.items()})
