"""T3/F1: how few strains account for how many malicious responses.

"In Limewire, the top three most prevalent malware account for 99% of all
the malicious responses.  The corresponding number for OpenFT is 75%."
This module produces the ranked top-malware table (T3) and the rank-CDF
curve behind it (F1).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List

from ..measure.store import MeasurementStore

__all__ = ["MalwareRankRow", "top_malware", "top_n_share", "rank_cdf"]


@dataclass(frozen=True)
class MalwareRankRow:
    """One row of the top-malware table."""

    rank: int
    name: str
    responses: int
    share: float
    cumulative_share: float


def top_malware(store: MeasurementStore) -> List[MalwareRankRow]:
    """The ranked table of strains by malicious-response count."""
    counts = Counter(record.malware_name
                     for record in store.malicious_responses())
    total = sum(counts.values())
    rows: List[MalwareRankRow] = []
    cumulative = 0
    for rank, (name, responses) in enumerate(counts.most_common(), start=1):
        cumulative += responses
        rows.append(MalwareRankRow(
            rank=rank, name=name or "<unknown>", responses=responses,
            share=responses / total if total else 0.0,
            cumulative_share=cumulative / total if total else 0.0))
    return rows


def top_n_share(store: MeasurementStore, n: int) -> float:
    """Share of malicious responses covered by the top ``n`` strains."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n!r}")
    rows = top_malware(store)
    if not rows:
        return 0.0
    index = min(n, len(rows)) - 1
    return rows[index].cumulative_share


def rank_cdf(store: MeasurementStore) -> List[float]:
    """F1: cumulative share at each strain rank (index 0 = rank 1)."""
    return [row.cumulative_share for row in top_malware(store)]
