"""F3: the campaign's daily time series.

The paper collected over a month of data; the per-day series shows the
malicious share is a stable property of the network (with a gentle rise
as passive worms recruit hosts), not an artifact of a lucky day.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..measure.store import MeasurementStore

__all__ = ["DailyPoint", "daily_series"]


@dataclass(frozen=True)
class DailyPoint:
    """One virtual day's aggregate."""

    day: int
    responses: int
    downloadable: int
    malicious: int

    @property
    def malicious_share(self) -> float:
        """Malicious fraction of that day's downloadable responses."""
        return self.malicious / self.downloadable if self.downloadable else 0.0


def daily_series(store: MeasurementStore) -> List[DailyPoint]:
    """Compute F3 (one point per virtual day, gaps filled with zeros)."""
    by_day = store.by_day()
    if not by_day:
        return []
    points: List[DailyPoint] = []
    for day in range(max(by_day) + 1):
        records = by_day.get(day, [])
        downloadable = [record for record in records
                        if record.counts_as_downloadable_type
                        and record.downloaded]
        malicious = [record for record in downloadable
                     if record.is_malicious]
        points.append(DailyPoint(day=day, responses=len(records),
                                 downloadable=len(downloadable),
                                 malicious=len(malicious)))
    return points
