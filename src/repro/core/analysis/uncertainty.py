"""Statistical uncertainty for the headline metrics.

The paper reports point estimates; a reproduction should say how firm
they are.  Two tools:

* :func:`bootstrap_ci` -- a percentile bootstrap over response records
  for any statistic of a store (prevalence, top-N share, private share);
* :func:`wilson_interval` -- the closed-form Wilson score interval for
  plain proportions, used as a cross-check and for small counts where
  resampling is noisy.

Resampling draws records with replacement using numpy for speed; the
randomness is seeded explicitly so reported intervals are reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from ..measure.records import ResponseRecord
from ..measure.store import MeasurementStore

__all__ = ["ConfidenceInterval", "wilson_interval", "bootstrap_ci",
           "prevalence_statistic", "private_share_statistic",
           "top_share_statistic"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with its interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    @property
    def width(self) -> float:
        """Interval width (diagnostic of estimate stability)."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval."""
        return self.low <= value <= self.high


def wilson_interval(successes: int, trials: int,
                    confidence: float = 0.95) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion."""
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"invalid counts {successes}/{trials}")
    if trials == 0:
        return ConfidenceInterval(0.0, 0.0, 1.0, confidence)
    # z for the two-sided confidence level (0.95 -> 1.959964...)
    z = math.sqrt(2.0) * _erfinv(confidence)
    p = successes / trials
    denominator = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denominator
    margin = (z * math.sqrt(p * (1 - p) / trials
                            + z * z / (4 * trials * trials))
              / denominator)
    low = max(0.0, center - margin)
    high = min(1.0, center + margin)
    if low < 1e-12:
        low = 0.0  # snap float dust at the boundary
    if high > 1.0 - 1e-12:
        high = 1.0
    return ConfidenceInterval(estimate=p, low=low, high=high,
                              confidence=confidence)


def _erfinv(confidence: float) -> float:
    """Inverse error function at ``confidence`` via numpy-free iteration.

    Uses the Newton refinement of the Giles initial approximation --
    accurate to ~1e-9 over the confidence levels used here.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence!r}")
    x = confidence
    w = -math.log((1.0 - x) * (1.0 + x))
    if w < 5.0:
        w -= 2.5
        p = 2.81022636e-08
        for coefficient in (3.43273939e-07, -3.5233877e-06, -4.39150654e-06,
                            0.00021858087, -0.00125372503, -0.00417768164,
                            0.246640727, 1.50140941):
            p = p * w + coefficient
    else:
        w = math.sqrt(w) - 3.0
        p = -0.000200214257
        for coefficient in (0.000100950558, 0.00134934322, -0.00367342844,
                            0.00573950773, -0.0076224613, 0.00943887047,
                            1.00167406, 2.83297682):
            p = p * w + coefficient
    result = p * x
    # one Newton step: erf(result) ~ x
    for _ in range(2):
        error = math.erf(result) - x
        result -= error / (2.0 / math.sqrt(math.pi)
                           * math.exp(-result * result))
    return result


StatisticFn = Callable[[Sequence[ResponseRecord]], float]


def prevalence_statistic(records: Sequence[ResponseRecord]) -> float:
    """Malicious share of downloadable archive/exe responses."""
    downloadable = [record for record in records
                    if record.counts_as_downloadable_type
                    and record.downloaded]
    if not downloadable:
        return 0.0
    malicious = sum(1 for record in downloadable if record.is_malicious)
    return malicious / len(downloadable)


def private_share_statistic(records: Sequence[ResponseRecord]) -> float:
    """Private-address share of malicious responses."""
    from ...simnet.addresses import classify_address
    malicious = [record for record in records
                 if record.downloaded and record.is_malicious
                 and record.counts_as_downloadable_type]
    if not malicious:
        return 0.0
    private = sum(1 for record in malicious
                  if classify_address(record.responder_host) == "private")
    return private / len(malicious)


def top_share_statistic(n: int) -> StatisticFn:
    """Statistic factory: top-``n`` strain share of malicious responses."""
    def statistic(records: Sequence[ResponseRecord]) -> float:
        from collections import Counter
        counts = Counter(record.malware_name for record in records
                         if record.downloaded and record.is_malicious
                         and record.counts_as_downloadable_type)
        total = sum(counts.values())
        if not total:
            return 0.0
        return sum(count for _, count in counts.most_common(n)) / total
    return statistic


def bootstrap_ci(store: MeasurementStore, statistic: StatisticFn,
                 resamples: int = 500, confidence: float = 0.95,
                 seed: int = 0) -> ConfidenceInterval:
    """Percentile bootstrap of ``statistic`` over the store's records."""
    if resamples <= 0:
        raise ValueError(f"resamples must be positive, got {resamples!r}")
    records = store.records()
    if not records:
        return ConfidenceInterval(0.0, 0.0, 0.0, confidence)
    rng = np.random.default_rng(seed)
    count = len(records)
    values: List[float] = []
    for _ in range(resamples):
        indices = rng.integers(0, count, size=count)
        sample = [records[index] for index in indices]
        values.append(statistic(sample))
    lower_q = (1.0 - confidence) / 2.0
    low, high = np.quantile(values, [lower_q, 1.0 - lower_q])
    return ConfidenceInterval(estimate=statistic(records),
                              low=float(low), high=float(high),
                              confidence=confidence)
