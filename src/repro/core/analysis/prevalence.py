"""T2: malware prevalence among downloadable archive/executable responses.

The paper's headline numbers -- 68% of downloadable archive+executable
responses in Limewire were malicious, 3% in OpenFT -- computed exactly as
stated: the denominator is responses advertising an archive or executable
whose download succeeded, the numerator those whose content scanned dirty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ...files.types import FileType
from ..measure.store import MeasurementStore

__all__ = ["PrevalenceReport", "compute_prevalence"]


@dataclass(frozen=True)
class PrevalenceReport:
    """Prevalence overall and split by file type."""

    network: str
    downloadable: int
    malicious: int
    by_type: Dict[str, tuple]  # type value -> (downloadable, malicious)

    @property
    def fraction(self) -> float:
        """Malicious share of downloadable responses (the 68%/3%)."""
        return self.malicious / self.downloadable if self.downloadable else 0.0

    def type_fraction(self, file_type: FileType) -> float:
        """Malicious share within one file type."""
        downloadable, malicious = self.by_type.get(file_type.value, (0, 0))
        return malicious / downloadable if downloadable else 0.0


def compute_prevalence(store: MeasurementStore) -> PrevalenceReport:
    """Compute T2 for one campaign's store."""
    downloadable = store.downloadable_responses()
    by_type: Dict[str, list] = {}
    malicious_total = 0
    for record in downloadable:
        bucket = by_type.setdefault(record.file_type, [0, 0])
        bucket[0] += 1
        if record.is_malicious:
            bucket[1] += 1
            malicious_total += 1
    return PrevalenceReport(
        network=store.network,
        downloadable=len(downloadable),
        malicious=malicious_total,
        by_type={key: (count, bad) for key, (count, bad) in by_type.items()},
    )
