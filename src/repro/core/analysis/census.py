"""Census analyses: distinct malware samples and host turnover.

Two observations frame the paper's abstract: "most infections are from a
very small number of distinct malware" and the month-long measurement
kept meeting the same strains on fresh hosts.  This module counts both:

* :func:`sample_census` -- the distinct malicious *contents* (by hash)
  behind all malicious responses, with their sizes and response counts:
  thousands of responses collapse onto a handful of byte-identical
  bodies;
* :func:`new_hosts_per_day` -- how many previously-unseen hosts serve
  malware each day (propagation recruits hosts; the strain set stays
  small).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List

from ..measure.store import MeasurementStore

__all__ = ["MalwareSample", "sample_census", "new_hosts_per_day"]


@dataclass(frozen=True)
class MalwareSample:
    """One distinct malicious content identity."""

    content_id: str
    malware_name: str
    size: int
    responses: int
    hosts: int


def sample_census(store: MeasurementStore) -> List[MalwareSample]:
    """All distinct malicious samples, ordered by response count."""
    responses: Counter = Counter()
    hosts: Dict[str, set] = {}
    names: Dict[str, str] = {}
    sizes: Dict[str, int] = {}
    for record in store.malicious_responses():
        responses[record.content_id] += 1
        hosts.setdefault(record.content_id, set()).add(
            record.responder_key)
        names[record.content_id] = record.malware_name or "<unknown>"
        sizes[record.content_id] = record.size
    return [MalwareSample(content_id=content_id,
                          malware_name=names[content_id],
                          size=sizes[content_id],
                          responses=count,
                          hosts=len(hosts[content_id]))
            for content_id, count in responses.most_common()]


def new_hosts_per_day(store: MeasurementStore) -> List[int]:
    """Previously-unseen malware-serving hosts per virtual day."""
    seen: set = set()
    by_day = store.by_day()
    if not by_day:
        return []
    series: List[int] = []
    for day in range(max(by_day) + 1):
        fresh = 0
        for record in by_day.get(day, []):
            if record.is_malicious and record.responder_key not in seen:
                seen.add(record.responder_key)
                fresh += 1
        series.append(fresh)
    return series
