"""Analysis layer: the paper's tables and figures computed from a store."""

from .availability import AvailabilityRow, availability_breakdown
from .behaviours import BehaviourRow, behaviour_breakdown
from .categories import CategoryRow, categorize_queries, category_breakdown
from .census import MalwareSample, new_hosts_per_day, sample_census
from .crossnet import CrossNetworkComparison, compare_networks
from .latency import LatencySummary, latency_summary
from .concentration import MalwareRankRow, rank_cdf, top_malware, top_n_share
from .prevalence import PrevalenceReport, compute_prevalence
from .sizes import StrainSizeProfile, distinct_size_counts, size_dictionary
from .sources import (AddressBreakdown, HostShareRow, address_breakdown,
                      host_cdf, host_concentration, top_host_share)
from .overhead import (OverheadRow, classify_gnutella_frame,
                       classify_openft_packet, overhead_report)
from .summary import CollectionSummary, summarize_collection
from .timeseries import DailyPoint, daily_series
from .uncertainty import (ConfidenceInterval, bootstrap_ci,
                          prevalence_statistic, private_share_statistic,
                          top_share_statistic, wilson_interval)
from .vendors import VendorRow, vendor_census

__all__ = [
    "AvailabilityRow", "availability_breakdown",
    "BehaviourRow", "behaviour_breakdown",
    "CategoryRow", "categorize_queries", "category_breakdown",
    "MalwareSample", "new_hosts_per_day", "sample_census",
    "CrossNetworkComparison", "compare_networks",
    "LatencySummary", "latency_summary",
    "MalwareRankRow", "rank_cdf", "top_malware", "top_n_share",
    "PrevalenceReport", "compute_prevalence",
    "StrainSizeProfile", "distinct_size_counts", "size_dictionary",
    "AddressBreakdown", "HostShareRow", "address_breakdown", "host_cdf",
    "host_concentration", "top_host_share",
    "OverheadRow", "classify_gnutella_frame", "classify_openft_packet",
    "overhead_report",
    "CollectionSummary", "summarize_collection",
    "DailyPoint", "daily_series",
    "ConfidenceInterval", "bootstrap_ci", "prevalence_statistic",
    "private_share_statistic", "top_share_statistic", "wilson_interval",
    "VendorRow", "vendor_census",
]
