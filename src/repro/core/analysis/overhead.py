"""Extension analysis: protocol overhead of the measurement.

The instrumented clients ride the same overlay as everyone else; this
analysis captures a window of overlay traffic and reports its
composition -- how much of the byte volume is queries vs hits vs
control traffic -- using the trace tap in :mod:`repro.simnet.trace` and
frame classifiers for both protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ...gnutella.constants import (DESCRIPTOR_PING, DESCRIPTOR_PONG,
                                   DESCRIPTOR_PUSH, DESCRIPTOR_QUERY,
                                   DESCRIPTOR_QUERY_HIT, HEADER_LENGTH)
from ...simnet.trace import TransportTrace

__all__ = ["classify_gnutella_frame", "classify_openft_packet",
           "OverheadRow", "overhead_report"]

_GNUTELLA_KINDS = {
    DESCRIPTOR_PING: "ping",
    DESCRIPTOR_PONG: "pong",
    DESCRIPTOR_QUERY: "query",
    DESCRIPTOR_QUERY_HIT: "query-hit",
    DESCRIPTOR_PUSH: "push",
    0x30: "qrp",
}


def classify_gnutella_frame(payload: bytes) -> str:
    """Name a Gnutella descriptor from its header byte."""
    if len(payload) < HEADER_LENGTH:
        return "short"
    return _GNUTELLA_KINDS.get(payload[16], "other")


_OPENFT_KINDS = {
    0x0000: "version", 0x0001: "version",
    0x0002: "nodeinfo", 0x0003: "nodeinfo",
    0x0008: "child", 0x0009: "child",
    0x000A: "share-sync", 0x000B: "share-sync", 0x000C: "share-sync",
    0x000D: "stats", 0x000E: "stats",
    0x0010: "search", 0x0011: "search-result",
    0x0012: "browse", 0x0013: "browse",
    0x0014: "push",
}


def classify_openft_packet(payload: bytes) -> str:
    """Name an OpenFT packet from its command field."""
    if len(payload) < 4:
        return "short"
    command = int.from_bytes(payload[2:4], "big")
    return _OPENFT_KINDS.get(command, "other")


@dataclass(frozen=True)
class OverheadRow:
    """One traffic class's slice of the captured window."""

    kind: str
    messages: int
    bytes: int
    byte_share: float


def overhead_report(trace: TransportTrace) -> List[OverheadRow]:
    """Summarize a capture into per-kind rows, largest byte share first."""
    counts = trace.counts_by_kind()
    byte_totals = trace.bytes_by_kind()
    total = trace.total_bytes() or 1
    rows = [OverheadRow(kind=kind, messages=counts[kind],
                        bytes=byte_totals[kind],
                        byte_share=byte_totals[kind] / total)
            for kind in counts]
    rows.sort(key=lambda row: -row.bytes)
    return rows
