"""Extension analysis: malicious responses by strain behaviour class.

The corpus distinguishes query-echo worms, shared-folder infectors and
trojan droppers; this analysis attributes each malicious response to its
strain's behaviour, quantifying the paper's implicit claim that the
Limewire epidemic is an *echo* phenomenon while OpenFT's is a
shared-folder one.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ...malware.strain import Behaviour, MalwareStrain
from ..measure.store import MeasurementStore

__all__ = ["BehaviourRow", "behaviour_breakdown"]


@dataclass(frozen=True)
class BehaviourRow:
    """One behaviour class's slice of malicious responses."""

    behaviour: str
    strains: int
    responses: int
    share: float


def behaviour_breakdown(store: MeasurementStore,
                        strains: Sequence[MalwareStrain],
                        ) -> List[BehaviourRow]:
    """Attribute malicious responses to behaviour classes.

    Responses whose detection name matches no strain in ``strains`` are
    bucketed as ``"unknown"`` (e.g. a store scanned with a different
    corpus).
    """
    by_name: Dict[str, Behaviour] = {strain.av_name: strain.behaviour
                                     for strain in strains}
    response_counts: Counter = Counter()
    strain_sets: Dict[str, set] = {}
    for record in store.malicious_responses():
        behaviour = by_name.get(record.malware_name)
        key = behaviour.value if behaviour is not None else "unknown"
        response_counts[key] += 1
        strain_sets.setdefault(key, set()).add(record.malware_name)
    total = sum(response_counts.values())
    rows = [BehaviourRow(behaviour=key,
                         strains=len(strain_sets[key]),
                         responses=count,
                         share=count / total if total else 0.0)
            for key, count in response_counts.most_common()]
    return rows
