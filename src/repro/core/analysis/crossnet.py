"""Extension analysis: comparing the two measured networks.

The paper measured Limewire and OpenFT with the same pipeline; this
module puts the two stores side by side -- which strains circulate in
both ecosystems, and how each network's headline numbers compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from ..measure.store import MeasurementStore
from .concentration import top_malware, top_n_share
from .prevalence import compute_prevalence

__all__ = ["CrossNetworkComparison", "compare_networks"]


@dataclass(frozen=True)
class CrossNetworkComparison:
    """The two networks' strain sets and headline metrics."""

    network_a: str
    network_b: str
    strains_a: FrozenSet[str]
    strains_b: FrozenSet[str]
    prevalence_a: float
    prevalence_b: float
    top3_a: float
    top3_b: float

    @property
    def shared_strains(self) -> FrozenSet[str]:
        """Malware names observed in both networks."""
        return self.strains_a & self.strains_b

    @property
    def exclusive_a(self) -> FrozenSet[str]:
        """Strains seen only in network A."""
        return self.strains_a - self.strains_b

    @property
    def exclusive_b(self) -> FrozenSet[str]:
        """Strains seen only in network B."""
        return self.strains_b - self.strains_a

    def render(self) -> str:
        """Text comparison table."""
        lines = [
            f"cross-network comparison: {self.network_a} vs "
            f"{self.network_b}",
            f"  prevalence: {self.prevalence_a:.1%} vs "
            f"{self.prevalence_b:.1%}",
            f"  top-3 concentration: {self.top3_a:.1%} vs "
            f"{self.top3_b:.1%}",
            f"  strains: {len(self.strains_a)} vs {len(self.strains_b)}, "
            f"{len(self.shared_strains)} shared",
        ]
        if self.shared_strains:
            lines.append("  shared: " + ", ".join(
                sorted(self.shared_strains)))
        return "\n".join(lines)


def compare_networks(store_a: MeasurementStore,
                     store_b: MeasurementStore) -> CrossNetworkComparison:
    """Build the side-by-side comparison of two campaigns."""
    return CrossNetworkComparison(
        network_a=store_a.network,
        network_b=store_b.network,
        strains_a=frozenset(row.name for row in top_malware(store_a)),
        strains_b=frozenset(row.name for row in top_malware(store_b)),
        prevalence_a=compute_prevalence(store_a).fraction,
        prevalence_b=compute_prevalence(store_b).fraction,
        top3_a=top_n_share(store_a, 3),
        top3_b=top_n_share(store_b, 3),
    )
