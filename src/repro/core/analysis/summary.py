"""T1: the data-collection summary table.

Mirrors the paper's overview of what a month of instrumented crawling
gathered: queries issued, responses, the archive/executable subset, how
many could actually be downloaded, and the host/content diversity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..measure.store import MeasurementStore

__all__ = ["CollectionSummary", "summarize_collection"]


@dataclass(frozen=True)
class CollectionSummary:
    """One network's collection overview."""

    network: str
    duration_days: float
    queries_issued: int
    responses: int
    downloadable_type_responses: int   # archives+executables advertised
    downloaded_responses: int          # of those, downloads that succeeded
    malicious_responses: int
    unique_hosts: int
    unique_contents: int

    @property
    def responses_per_query(self) -> float:
        """Average responses per issued query."""
        return self.responses / self.queries_issued if self.queries_issued else 0.0

    @property
    def download_success_rate(self) -> float:
        """Fraction of archive/exe responses that were downloadable."""
        if not self.downloadable_type_responses:
            return 0.0
        return self.downloaded_responses / self.downloadable_type_responses


def summarize_collection(store: MeasurementStore,
                         duration_days: float) -> CollectionSummary:
    """Compute T1 for one campaign's store."""
    typed = store.records(lambda r: r.counts_as_downloadable_type)
    downloaded = [record for record in typed if record.downloaded]
    malicious = [record for record in downloaded if record.is_malicious]
    return CollectionSummary(
        network=store.network,
        duration_days=duration_days,
        queries_issued=store.queries_issued,
        responses=len(store),
        downloadable_type_responses=len(typed),
        downloaded_responses=len(downloaded),
        malicious_responses=len(malicious),
        unique_hosts=store.unique_hosts(),
        unique_contents=store.unique_contents(),
    )
