"""Extension analysis: the client census behind responses.

Gnutella QueryHits carry a 4-byte vendor code in the QHD; the
instrumented client records it, so the measurement doubles as a servent
census.  The interesting negative result: infection is *not* a property
of a client brand -- malicious-response vendor shares track the overall
population shares, because worms ride whatever client the infected user
runs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List

from ..measure.store import MeasurementStore

__all__ = ["VendorRow", "vendor_census"]


@dataclass(frozen=True)
class VendorRow:
    """One vendor's slice of the measurement."""

    vendor: str
    responses: int
    response_share: float
    malicious: int
    malicious_share: float


def vendor_census(store: MeasurementStore) -> List[VendorRow]:
    """Responses and malicious responses per vendor code."""
    total = Counter(record.vendor or "????" for record in store)
    malicious = Counter(record.vendor or "????"
                        for record in store.malicious_responses())
    all_responses = sum(total.values())
    all_malicious = sum(malicious.values())
    rows = [
        VendorRow(
            vendor=vendor,
            responses=count,
            response_share=count / all_responses if all_responses else 0.0,
            malicious=malicious.get(vendor, 0),
            malicious_share=(malicious.get(vendor, 0) / all_malicious
                             if all_malicious else 0.0))
        for vendor, count in total.most_common()
    ]
    return rows
