"""Extension analysis: why responses fail to be downloadable.

The paper's denominator is "downloadable responses"; this analysis
decomposes the gap between responses and downloads by responder class:
NATed responders need a live PUSH route, any responder may have churned
offline by download time or be busy.  It quantifies how much of the
response stream a measurement (or a user) actually gets to verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..measure.store import MeasurementStore

__all__ = ["AvailabilityRow", "availability_breakdown"]


@dataclass(frozen=True)
class AvailabilityRow:
    """Download success for one responder class."""

    responder_class: str   # "natted" | "public"
    responses: int
    attempted: int
    downloaded: int

    @property
    def success_rate(self) -> float:
        """Downloads per attempted response."""
        return self.downloaded / self.attempted if self.attempted else 0.0


def availability_breakdown(store: MeasurementStore) -> List[AvailabilityRow]:
    """Download success split by NATed vs public responders.

    Classification uses the wire-visible push flag (Gnutella QueryHits
    mark firewalled responders) falling back to the advertised-address
    class for OpenFT records.
    """
    from ...simnet.addresses import classify_address

    buckets = {"natted": [0, 0, 0], "public": [0, 0, 0]}
    for record in store:
        natted = record.push_needed or (
            classify_address(record.responder_host) == "private")
        bucket = buckets["natted" if natted else "public"]
        bucket[0] += 1
        if record.download_attempted:
            bucket[1] += 1
        if record.downloaded:
            bucket[2] += 1
    return [AvailabilityRow(responder_class=name, responses=counts[0],
                            attempted=counts[1], downloaded=counts[2])
            for name, counts in buckets.items()]
