"""T4/F4: where malicious responses come from.

Two findings: 28% of malicious Limewire responses carried *private*
self-reported addresses (NATed responders advertising their RFC 1918
face), and the top OpenFT strain was served essentially by one host.  We
classify the advertised addresses exactly as the paper would have, and
compute per-host response concentration.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

from ...simnet.addresses import classify_address
from ..measure.records import ResponseRecord
from ..measure.store import MeasurementStore

__all__ = ["AddressBreakdown", "address_breakdown", "HostShareRow",
           "host_concentration", "top_host_share", "host_cdf"]


@dataclass(frozen=True)
class AddressBreakdown:
    """Malicious responses bucketed by advertised-address class."""

    network: str
    counts: Dict[str, int]

    @property
    def total(self) -> int:
        """All malicious responses classified."""
        return sum(self.counts.values())

    def fraction(self, address_class: str) -> float:
        """Share of one class (e.g. ``"private"`` -> the 28%)."""
        return (self.counts.get(address_class, 0) / self.total
                if self.total else 0.0)


def address_breakdown(store: MeasurementStore) -> AddressBreakdown:
    """Compute the address-class split of malicious responses (T4a)."""
    counts = Counter(classify_address(record.responder_host)
                     for record in store.malicious_responses())
    return AddressBreakdown(network=store.network, counts=dict(counts))


@dataclass(frozen=True)
class HostShareRow:
    """One serving host's share of (a strain's) malicious responses."""

    rank: int
    responder_key: str
    responder_host: str
    responses: int
    share: float


def _malicious(store: MeasurementStore,
               malware_name: Optional[str]) -> List[ResponseRecord]:
    records = store.malicious_responses()
    if malware_name is not None:
        records = [record for record in records
                   if record.malware_name == malware_name]
    return records


def host_concentration(store: MeasurementStore,
                       malware_name: Optional[str] = None,
                       ) -> List[HostShareRow]:
    """Ranked hosts by how many malicious responses they served (T4b).

    With ``malware_name`` the ranking is restricted to one strain -- used
    for "the top virus ... is served by a single host".
    """
    records = _malicious(store, malware_name)
    counts = Counter(record.responder_key for record in records)
    hosts = {record.responder_key: record.responder_host
             for record in records}
    total = sum(counts.values())
    rows: List[HostShareRow] = []
    for rank, (key, responses) in enumerate(counts.most_common(), start=1):
        rows.append(HostShareRow(
            rank=rank, responder_key=key, responder_host=hosts[key],
            responses=responses,
            share=responses / total if total else 0.0))
    return rows


def top_host_share(store: MeasurementStore,
                   malware_name: Optional[str] = None) -> float:
    """The single busiest host's share of malicious responses."""
    rows = host_concentration(store, malware_name)
    return rows[0].share if rows else 0.0


def host_cdf(store: MeasurementStore,
             malware_name: Optional[str] = None) -> List[float]:
    """F4: cumulative share at each host rank."""
    rows = host_concentration(store, malware_name)
    cdf: List[float] = []
    cumulative = 0.0
    for row in rows:
        cumulative += row.share
        cdf.append(cumulative)
    return cdf
