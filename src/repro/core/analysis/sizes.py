"""T6/F2: the size fingerprints of prevalent malware.

The paper's filtering insight rests on an empirical fact this module
surfaces: each prevalent strain occurs at a *tiny* number of exact byte
sizes (a worm mails copies of itself), while clean content sizes are
spread over a continuous distribution.  ``size_dictionary`` extracts, per
top strain, the most common sizes covering a target share of its
responses -- exactly the dictionary the size-based filter blocks on.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..measure.store import MeasurementStore
from .concentration import top_malware

__all__ = ["StrainSizeProfile", "size_dictionary", "distinct_size_counts"]


@dataclass(frozen=True)
class StrainSizeProfile:
    """The observed size distribution of one strain's responses."""

    name: str
    responses: int
    size_counts: Tuple[Tuple[int, int], ...]  # (size, responses) desc
    common_sizes: Tuple[int, ...]             # sizes covering the target

    @property
    def distinct_sizes(self) -> int:
        """How many exact sizes the strain occurred at."""
        return len(self.size_counts)

    def coverage(self, sizes: Tuple[int, ...]) -> float:
        """Share of this strain's responses covered by ``sizes``."""
        covered = sum(count for size, count in self.size_counts
                      if size in sizes)
        return covered / self.responses if self.responses else 0.0


def size_dictionary(store: MeasurementStore, top_n: int = 3,
                    coverage: float = 0.95) -> List[StrainSizeProfile]:
    """Per top-``top_n`` strain: the most common sizes covering ``coverage``.

    This is T6, and its union of ``common_sizes`` is the block list the
    size-based filter uses.
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must be in (0, 1], got {coverage!r}")
    per_strain: Dict[str, Counter] = defaultdict(Counter)
    for record in store.malicious_responses():
        per_strain[record.malware_name][record.size] += 1

    profiles: List[StrainSizeProfile] = []
    for row in top_malware(store)[:top_n]:
        counts = per_strain[row.name]
        total = sum(counts.values())
        chosen: List[int] = []
        covered = 0
        for size, count in counts.most_common():
            chosen.append(size)
            covered += count
            if covered / total >= coverage:
                break
        profiles.append(StrainSizeProfile(
            name=row.name, responses=total,
            size_counts=tuple(counts.most_common()),
            common_sizes=tuple(chosen)))
    return profiles


def distinct_size_counts(store: MeasurementStore) -> Dict[str, int]:
    """F2: for every strain seen, how many exact sizes it occurred at."""
    per_strain: Dict[str, set] = defaultdict(set)
    for record in store.malicious_responses():
        per_strain[record.malware_name].add(record.size)
    return {name: len(sizes) for name, sizes in per_strain.items()}
