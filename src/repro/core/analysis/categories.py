"""Extension analysis: which query categories attract malware.

Not a numbered table in the paper, but the mechanism behind its headline:
query-echo worms answer *every* search with an executable, so even music
and video queries -- whose legitimate results are never archives or
executables -- return a stream of malicious archive/exe responses.  This
analysis quantifies that: per query category, the malicious share of
downloadable-type responses.  For media categories it approaches 100%,
which is exactly why overall Limewire prevalence is so high.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ...files.catalog import ContentCatalog
from ...files.names import POPULAR_QUERIES, tokenize
from ..measure.store import MeasurementStore

__all__ = ["CategoryRow", "categorize_queries", "category_breakdown"]


@dataclass(frozen=True)
class CategoryRow:
    """Per-category aggregate."""

    category: str
    queries: int
    responses: int
    downloadable: int
    malicious: int

    @property
    def malicious_share(self) -> float:
        """Malicious fraction of the category's downloadable responses."""
        return self.malicious / self.downloadable if self.downloadable else 0.0


def categorize_queries(store: MeasurementStore,
                       catalog: ContentCatalog) -> Dict[str, str]:
    """Map each issued query string to a content category.

    A query is attributed to the type of the catalog work whose keywords
    it matches; the evergreen bait strings count as ``"evergreen"``;
    anything else is ``"other"``.
    """
    keyword_index: Dict[frozenset, str] = {}
    for work in catalog.works:
        for take in (2, 3):
            keyword_index.setdefault(frozenset(work.keywords[:take]),
                                     work.file_type.value)
    evergreen = {query for query in POPULAR_QUERIES}

    mapping: Dict[str, str] = {}
    for record in store:
        query = record.query
        if query in mapping:
            continue
        if query in evergreen:
            mapping[query] = "evergreen"
        else:
            mapping[query] = keyword_index.get(tokenize(query), "other")
    return mapping


def category_breakdown(store: MeasurementStore,
                       catalog: ContentCatalog) -> List[CategoryRow]:
    """Aggregate downloadable/malicious counts per query category."""
    mapping = categorize_queries(store, catalog)
    by_category: Dict[str, Dict[str, object]] = {}
    for record in store:
        category = mapping.get(record.query, "other")
        bucket = by_category.setdefault(category, {
            "queries": set(), "responses": 0, "downloadable": 0,
            "malicious": 0})
        bucket["queries"].add(record.query)
        bucket["responses"] += 1
        if record.counts_as_downloadable_type and record.downloaded:
            bucket["downloadable"] += 1
            if record.is_malicious:
                bucket["malicious"] += 1
    rows = [CategoryRow(category=category,
                        queries=len(bucket["queries"]),
                        responses=bucket["responses"],
                        downloadable=bucket["downloadable"],
                        malicious=bucket["malicious"])
            for category, bucket in by_category.items()]
    rows.sort(key=lambda row: -row.responses)
    return rows
