"""Extension analysis: response latency.

How long after a query do responses arrive?  Latency is overlay depth
made visible: leaf answers attached to the crawler's own shields arrive
in a couple of hundred milliseconds, flood-edge responders take longer,
and (with dynamic querying) probe pacing stretches the tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..measure.store import MeasurementStore

__all__ = ["LatencySummary", "latency_summary"]


@dataclass(frozen=True)
class LatencySummary:
    """Percentiles of response latency (seconds of virtual time)."""

    count: int
    p10: float
    p50: float
    p90: float
    p99: float
    mean: float

    def render(self, network: str) -> str:
        """One-line text summary."""
        return (f"latency ({network}, n={self.count}): "
                f"p10={self.p10:.2f}s p50={self.p50:.2f}s "
                f"p90={self.p90:.2f}s p99={self.p99:.2f}s "
                f"mean={self.mean:.2f}s")


def latency_summary(store: MeasurementStore,
                    malicious_only: bool = False,
                    ) -> Optional[LatencySummary]:
    """Latency percentiles over all (or only malicious) responses.

    Returns None when no record carries a known query time.
    """
    records = (store.malicious_responses() if malicious_only
               else store.records())
    latencies: List[float] = [record.latency for record in records
                              if record.latency is not None]
    if not latencies:
        return None
    values = np.asarray(latencies)
    p10, p50, p90, p99 = np.percentile(values, [10, 50, 90, 99])
    return LatencySummary(count=len(latencies), p10=float(p10),
                          p50=float(p50), p90=float(p90), p99=float(p99),
                          mean=float(values.mean()))
