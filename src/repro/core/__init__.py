"""The paper's contribution: measurement, analysis, filtering, reports.

``measure`` runs instrumented campaigns against the simulated networks,
``analysis`` computes every table/figure of the study from the collected
records, ``filtering`` implements the existing-Limewire baseline and the
proposed size-based filter, and ``reports`` renders everything as text.
"""

from . import analysis, filtering, measure, reports
from .analysis import (compute_prevalence, daily_series, size_dictionary,
                       summarize_collection, top_malware, top_n_share)
from .filtering import (ExistingLimewireFilter, SizeBasedFilter,
                        evaluate_filter, evaluate_filters)
from .measure import (CampaignConfig, CampaignResult, MeasurementStore,
                      ResponseRecord, run_limewire_campaign,
                      run_openft_campaign)

__all__ = [
    "analysis", "filtering", "measure", "reports",
    "compute_prevalence", "daily_series", "size_dictionary",
    "summarize_collection", "top_malware", "top_n_share",
    "ExistingLimewireFilter", "SizeBasedFilter", "evaluate_filter",
    "evaluate_filters",
    "CampaignConfig", "CampaignResult", "MeasurementStore",
    "ResponseRecord", "run_limewire_campaign", "run_openft_campaign",
]
