"""Process-pool fan-out for multi-seed replication campaigns.

A replication campaign is embarrassingly parallel: every seed builds its
own world, runs its own simulator and touches no shared state, so seeds
can run in separate OS processes.  :func:`parallel_map` fans a picklable
worker over the seed list with a ``ProcessPoolExecutor`` and returns
results **in input order**, so the merged report is byte-identical to
the serial path regardless of which seed finishes first.

Degradation is deliberate and silent: ``workers <= 1``, a missing
``multiprocessing`` implementation (some sandboxes), or a pool that dies
on startup all fall back to the plain serial loop.  Correctness never
depends on the pool -- it is a wall-clock optimisation only.

This pool *trusts* its workers: a wedged worker blocks the pool
forever.  Campaigns that must survive hostile hosts pass
``supervision=`` to ``run_replications``, which swaps in the
heartbeat-watchdog pool from :mod:`repro.resilience.supervisor`
instead -- same input-order result contract, same picklability rules.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

__all__ = ["resolve_workers", "parallel_map", "merge_worker_registries",
           "merge_shard_snapshots"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: Optional[int], tasks: int) -> int:
    """Effective worker count: ``None`` means one per CPU, capped by tasks."""
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, min(workers, tasks))


def parallel_map(fn: Callable[[T], R], items: Sequence[T],
                 workers: Optional[int] = None,
                 on_result: Optional[Callable[[T, R], None]] = None,
                 ) -> List[R]:
    """Map ``fn`` over ``items``, fanning out over processes when possible.

    ``fn`` and every item must be picklable when ``workers > 1`` (the
    worker function must be defined at module top level).  Results come
    back in input order.  Any failure to *start* the pool falls back to
    the serial loop; exceptions raised by ``fn`` itself propagate
    unchanged in both modes.

    ``on_result(item, result)`` fires as each result lands (in input
    order) -- the hook incremental checkpointing hangs off.  After a
    mid-flight pool loss (``BrokenProcessPool``) the surviving work is
    redone serially and the hook may fire *again* for items that
    already reported; consumers that persist must deduplicate.
    """
    items = list(items)

    def serial() -> List[R]:
        results = []
        for item in items:
            result = fn(item)
            if on_result is not None:
                on_result(item, result)
            results.append(result)
        return results

    effective = resolve_workers(workers, len(items))
    if effective <= 1 or len(items) <= 1:
        return serial()
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool
        pool = ProcessPoolExecutor(max_workers=effective)
    except (ImportError, NotImplementedError, OSError, ValueError):
        return serial()
    try:
        results = []
        for item, result in zip(items, pool.map(fn, items)):
            if on_result is not None:
                on_result(item, result)
            results.append(result)
        return results
    except BrokenProcessPool:
        # workers died before producing results (fork denied, OOM kill,
        # ...): the computation is pure, so redo it serially
        return serial()
    finally:
        pool.shutdown(wait=True)


def merge_worker_registries(parent, snapshots: Iterable[dict]):
    """Fold per-worker ``MetricRegistry`` snapshots into ``parent``.

    Workers cannot share a registry across process boundaries, so each
    ships back ``registry.snapshot()`` (a plain picklable dict) and the
    parent merges them here **in input order** -- counters and
    histograms sum, gauges keep the max -- making the merged registry
    identical no matter which worker finished first, the same guarantee
    :func:`parallel_map` gives for results.  Returns ``parent``.
    """
    for snapshot in snapshots:
        parent.merge_snapshot(snapshot)
    return parent


def merge_shard_snapshots(parent, snapshots: Iterable[dict]):
    """Fold per-shard telemetry snapshots into the campaign registry.

    The sharded kernel's worker shards (shards 1..N-1, which run
    telemetry-less except for their shard-labelled tallies) ship the
    same picklable ``registry.snapshot()`` dicts replication workers
    do, and the same merge algebra applies -- shards are merged in
    shard order, so the fold is deterministic.  Distinct ``shard``
    labels keep per-shard gauges from colliding.  Returns ``parent``.
    """
    return merge_worker_registries(parent, snapshots)
