"""Experiment R1: the fault envelope of the headline claims.

The paper's two structural claims -- C1, malware is far more prevalent
among Limewire's downloadable responses than OpenFT's, and C2, a
handful of strains dominate (top-3 concentration) -- were measured over
a month on a network that lost packets, stalled transfers and served
damaged bytes.  R1 asks how much *more* hostility those claims survive:
it sweeps the graded :func:`FaultPlan.envelope` severities over both
networks and several seeds, recomputes the headline metrics under each,
and checks them against the claim bands below.  The sweep's product is
the **fault envelope**: the highest severity at which both claims still
hold, and the breaking point -- the first severity where one does not.

Faults perturb *measurement conditions*, not ground truth: the same
worlds host the same infected peers; the harness only makes them harder
to observe.  A robust claim should therefore degrade gracefully (fewer
responses, fewer completed downloads) without flipping sign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults import SEVERITIES, FaultPlan
from ..peers.profiles import GnutellaProfile, OpenFTProfile
from ..simnet.clock import days as days_to_seconds
from .experiments import ReplicationReport, run_replications
from .measure.campaign import CampaignConfig

__all__ = ["CLAIM_BANDS", "PREVALENCE_GAP_MIN", "SeverityResult",
           "ChaosReport", "run_fault_envelope"]

#: Per-network acceptance bands for the headline metrics, calibrated at
#: the R1 reference configuration (0.25 virtual days, scale 0.5, seeds
#: 1-3).  Deliberately wide: R1 tests whether the *claims* survive
#: stress, not whether point estimates are stable.
CLAIM_BANDS: Dict[str, Dict[str, Tuple[float, float]]] = {
    "limewire": {
        "prevalence": (0.50, 0.95),   # C1 upper arm: most exe/zip dirty
        "top3_share": (0.85, 1.00),   # C2: a few strains dominate
    },
    "openft": {
        "prevalence": (0.00, 0.30),   # C1 lower arm: OpenFT mostly clean
        "top3_share": (0.50, 1.00),   # C2 holds but is noisier here
    },
}

#: C1's gap form: mean Limewire prevalence must exceed mean OpenFT
#: prevalence by at least this factor at every surviving severity.
PREVALENCE_GAP_MIN = 2.0


@dataclass(frozen=True)
class SeverityResult:
    """One severity rung of the sweep, across networks."""

    severity: str
    reports: Dict[str, ReplicationReport]
    violations: Tuple[str, ...]

    @property
    def holds(self) -> bool:
        """True when every claim band (and the C1 gap) was met."""
        return not self.violations

    @property
    def degraded(self) -> bool:
        """True when any network's replication quarantined a seed."""
        return any(report.degraded for report in self.reports.values())


@dataclass(frozen=True)
class ChaosReport:
    """The full R1 sweep: one row per severity, breaking point noted."""

    results: Tuple[SeverityResult, ...]
    seeds: Tuple[int, ...]
    duration_days: float
    scale: float

    @property
    def breaking_point(self) -> Optional[str]:
        """First severity whose claims did not hold (None: none broke)."""
        for result in self.results:
            if not result.holds:
                return result.severity
        return None

    @property
    def envelope(self) -> Optional[str]:
        """Highest severity that still held *below* the breaking point."""
        last = None
        for result in self.results:
            if not result.holds:
                break
            last = result.severity
        return last

    @property
    def ok(self) -> bool:
        """True when every swept severity held."""
        return all(result.holds for result in self.results)

    def render(self) -> str:
        """Text table of the sweep, one row per (severity, network)."""
        lines = [f"R1 fault envelope (seeds {list(self.seeds)}, "
                 f"{self.duration_days:g} virtual days, "
                 f"scale {self.scale:g})",
                 f"{'severity':<10s} {'network':<9s} {'prevalence':>11s} "
                 f"{'top3':>7s} {'claims':>7s}"]
        for result in self.results:
            for network, report in result.reports.items():
                prevalence = report.metrics["prevalence"]
                top3 = report.metrics["top3_share"]
                status = "hold" if result.holds else "BROKEN"
                flag = " (degraded)" if report.degraded else ""
                lines.append(
                    f"{result.severity:<10s} {network:<9s} "
                    f"{prevalence.mean:11.1%} {top3.mean:7.1%} "
                    f"{status:>7s}{flag}")
            for violation in result.violations:
                lines.append(f"           !! {violation}")
        if self.breaking_point is None:
            lines.append("claims hold across the entire swept envelope")
        else:
            lines.append(f"breaking point: {self.breaking_point} "
                         f"(envelope: {self.envelope or 'none'})")
        return "\n".join(lines)


def _check_bands(severity: str,
                 reports: Dict[str, ReplicationReport]) -> List[str]:
    """Every claim-band and gap violation at one severity, as text."""
    violations: List[str] = []
    for network, report in reports.items():
        bands = CLAIM_BANDS.get(network, {})
        for name, (low, high) in bands.items():
            summary = report.metrics.get(name)
            if summary is None:
                continue
            if not summary.within(low, high):
                violations.append(
                    f"{severity}/{network}: {name} "
                    f"[{summary.low:.3f}, {summary.high:.3f}] outside "
                    f"claim band [{low:.2f}, {high:.2f}]")
    if "limewire" in reports and "openft" in reports:
        limewire = reports["limewire"].metrics["prevalence"].mean
        openft = reports["openft"].metrics["prevalence"].mean
        if limewire < PREVALENCE_GAP_MIN * openft:
            violations.append(
                f"{severity}: C1 gap collapsed -- limewire prevalence "
                f"{limewire:.3f} < {PREVALENCE_GAP_MIN:g}x openft "
                f"{openft:.3f}")
    return violations


def run_fault_envelope(networks: Sequence[str] = ("limewire", "openft"),
                       severities: Sequence[str] = SEVERITIES,
                       seeds: Sequence[int] = (1, 2, 3),
                       duration_days: float = 0.25,
                       scale: float = 0.5,
                       workers: Optional[int] = 1,
                       sanitize: bool = False) -> ChaosReport:
    """Sweep the graded fault envelopes and check the claim bands.

    Every (severity, network) cell is a full multi-seed replication
    through :func:`run_replications`, so worker-crash isolation and
    degradation flagging apply inside the sweep as well.
    """
    unknown = [severity for severity in severities
               if severity not in SEVERITIES]
    if unknown:
        raise ValueError(f"unknown severities {unknown!r}; "
                         f"choose from {SEVERITIES}")
    horizon_s = days_to_seconds(duration_days)
    profiles = {"limewire": GnutellaProfile().scaled(scale),
                "openft": OpenFTProfile().scaled(scale)}
    results: List[SeverityResult] = []
    for severity in severities:
        plan = FaultPlan.envelope(severity, horizon_s)
        config = CampaignConfig(duration_days=duration_days,
                                fault_plan=plan if plan else None)
        reports: Dict[str, ReplicationReport] = {}
        for network in networks:
            reports[network] = run_replications(
                network, list(seeds), config, profiles[network],
                workers=workers, sanitize=sanitize)
        results.append(SeverityResult(
            severity=severity, reports=reports,
            violations=tuple(_check_bands(severity, reports))))
    return ChaosReport(results=tuple(results), seeds=tuple(seeds),
                       duration_days=duration_days, scale=scale)
