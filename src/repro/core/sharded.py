"""Sharded campaign driver: one campaign across N kernel processes.

``run_sharded_campaign`` partitions the overlay into ultrapeer- (or
search-node-) neighbourhood shards and runs one full
:class:`~repro.simnet.kernel.Simulator` per shard, advancing them in
conservative time windows (see :mod:`repro.simnet.shard` for the window
algebra) and exchanging cross-shard envelope batches at each barrier.

The execution model is **replicated control plane, partitioned data
plane**: every shard builds the *entire* world from the campaign seed --
bit-identical populations, topology and fault schedules everywhere --
and replays every autonomous timer (churn sessions, propagation
activations, fault windows) everywhere, so all shards agree on the
replicated state those timers touch.  Only *message traffic* is
partitioned: an endpoint's sends happen solely on its owner shard, and
deliveries are routed (locally or over a barrier batch) to the
destination's owner.  Replication costs each shard the full build and
the timer load, but it removes every consistency protocol except the
envelope exchange itself -- which is what keeps the whole thing
deterministic.

Determinism contract:

* ``shards=1`` is bit-identical to the plain kernel: the transport
  delegates verbatim, the driver degenerates to one ``run_until`` per
  program segment, and ``run_shard_equivalence_check`` proves digest +
  store-sha + metric identity on both networks.
* ``shards=N`` for any ``N >= 2`` is a deterministic *family*:
  per-source streams make every measured byte independent of which
  shard owns what, so the ``MeasurementStore`` content digest is
  invariant in ``N`` (proven by the N=2 vs N=3 tests).  The N-shard
  event interleaving necessarily differs from the single-process one
  (latency draws move to per-source streams), so N>=2 is a calibrated
  statistical twin of the plain kernel, not a bitwise one.

Two executors share the driver: :class:`SerialShardExecutor` (all
shards in-process -- the reference twin, and the 1-core fallback) and
:class:`ProcessShardExecutor` (shard 0 in the parent, shards 1..N-1 in
forked pipe workers, windows computed concurrently).  Worker death --
including the deliberate SIGKILL of the :class:`~repro.faults.plan.
ShardCrash` host-fault clause -- surfaces as :class:`ShardWorkerError`,
which the replication supervisor above treats like any crashed seed:
retry, then quarantine.
"""

from __future__ import annotations

import hashlib
import math
import os
import signal
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..malware.corpus import limewire_strains, openft_strains
from ..peers.population import build_gnutella_world, build_openft_world
from ..scanner.database import database_for_strains
from ..scanner.engine import ScanEngine
from ..simnet.clock import days
from ..simnet.kernel import Simulator
from ..simnet.shard import (ShardPlan, ShardedTransport, WindowDriver,
                            lookahead_of, window_run_target)
from .measure.campaign import (CampaignConfig, CampaignResult,
                               _arm_faults, _crawler_address,
                               _export_transport, _install_journal,
                               default_profile)
from .measure.collector import LimewireCollector, OpenFTCollector
from .measure.download import Downloader
from .measure.queries import QueryWorkload
from .measure.store import MeasurementStore
from .parallel import merge_shard_snapshots

__all__ = ["ShardRuntime", "ShardReport", "ShardWorkerError",
           "SerialShardExecutor", "ProcessShardExecutor",
           "plan_for_world", "combine_shard_digests",
           "run_sharded_campaign"]

#: seconds a pipe worker may stay silent before it is declared dead
DEFAULT_WORKER_DEADLINE_S = 600.0


class ShardWorkerError(RuntimeError):
    """A shard worker died, wedged, or reported a failure mid-campaign."""

    def __init__(self, shard_id: int, reason: str) -> None:
        super().__init__(f"shard {shard_id} worker failed: {reason}")
        self.shard_id = shard_id
        self.reason = reason


# ---------------------------------------------------------------------------
# partitioning
# ---------------------------------------------------------------------------

def plan_for_world(network: str, world, nshards: int) -> ShardPlan:
    """Derive the ownership plan from a freshly built world.

    The partitioning rule keeps each hub with its spokes: a Gnutella
    ultrapeer and the leaves shielded by it (a leaf with several
    shields follows its first), an OpenFT search node and the users
    whose first desired parent it is.  Neighbourhoods round-robin onto
    shards in build order.  Everything here reads only build-time state
    that is identical on every shard, so all shards derive the same
    plan independently -- no plan needs to cross a process boundary.
    """
    if nshards == 1:
        return ShardPlan(nshards=1)
    if network == "limewire":
        hubs = world.network.ultrapeers
        groups: List[List[str]] = [[hub.endpoint_id] for hub in hubs]
        hub_index = {hub.endpoint_id: i for i, hub in enumerate(hubs)}
        for leaf in world.network.leaves:
            slot = 0
            for peer_id in leaf.peer_ids:
                found = hub_index.get(peer_id)
                if found is not None:
                    slot = found
                    break
            groups[slot].append(leaf.endpoint_id)
    elif network == "openft":
        hubs = world.network.search_nodes
        groups = [[hub.endpoint_id] for hub in hubs]
        hub_index = {hub.endpoint_id: i for i, hub in enumerate(hubs)}
        for user in world.network.user_nodes:
            desired = world.network.desired_parents.get(user.endpoint_id, [])
            slot = 0
            for parent_id in desired:
                found = hub_index.get(parent_id)
                if found is not None:
                    slot = found
                    break
            groups[slot].append(user.endpoint_id)
    else:
        raise ValueError(f"unknown network {network!r}")
    return ShardPlan.from_groups(nshards, groups)


def combine_shard_digests(
        digests: Sequence[Optional[str]]) -> Optional[str]:
    """Fold per-shard event digests into one campaign digest.

    A single shard's digest passes through untouched, so the
    ``shards=1`` campaign digest is literally the plain kernel's.  For
    N shards the per-shard digests (in shard order -- a deterministic
    order, since the plan is) hash into one sha256.
    """
    if not digests or any(digest is None for digest in digests):
        return None
    if len(digests) == 1:
        return digests[0]
    combined = hashlib.sha256()
    for digest in digests:
        combined.update(digest.encode("ascii"))
        combined.update(b"\n")
    return combined.hexdigest()


def _shard_fingerprint(stats: dict, windows: int) -> str:
    """Cheap per-shard identity for the checkpoint journal.

    Events executed, windows crossed, and cross-shard envelope tallies
    pin down a shard's trajectory well enough to catch divergence on
    resume without shipping full digests through the journal.
    """
    text = (f"{stats['shard']}:{stats['events']}:{windows}:"
            f"{stats['cross_sent']}:{stats['cross_received']}:"
            f"{stats['digest']}")
    return hashlib.sha256(text.encode("ascii")).hexdigest()[:16]


def _set_shard_gauges(registry, stats: dict) -> None:
    """Shard-labelled telemetry gauges for one shard's run."""
    shard = str(stats["shard"])
    registry.gauge(
        "shard_events_processed",
        "Kernel events executed by one shard.",
        labels=("shard",)).labels(shard).set(stats["events"])
    registry.gauge(
        "shard_cross_envelopes_sent",
        "Cross-shard envelopes produced by one shard.",
        labels=("shard",)).labels(shard).set(stats["cross_sent"])
    registry.gauge(
        "shard_cross_envelopes_received",
        "Cross-shard envelopes ingested by one shard.",
        labels=("shard",)).labels(shard).set(stats["cross_received"])


def _shard_snapshot(stats: dict) -> dict:
    """A worker shard's telemetry contribution as a picklable snapshot."""
    from ..telemetry.registry import MetricRegistry

    registry = MetricRegistry()
    _set_shard_gauges(registry, stats)
    return registry.snapshot()


# ---------------------------------------------------------------------------
# one shard's world + campaign program
# ---------------------------------------------------------------------------

class ShardRuntime:
    """One shard: a full replicated world plus its campaign components.

    Construction mirrors ``run_limewire_campaign`` /
    ``run_openft_campaign`` step for step -- same stream names, same
    build order -- so the ``shards=1`` runtime is the plain campaign
    under a different driver.  The measurement plane (store, scanner,
    downloader, collector, journal) exists only on shard 0; the other
    shards are pure overlay.
    """

    def __init__(self, network: str, config: CampaignConfig, profile,
                 shard_id: int, nshards: int, telemetry=None,
                 collect_digest: bool = False) -> None:
        if network not in ("limewire", "openft"):
            raise ValueError(f"unknown network {network!r}")
        self.network_name = network
        self.config = config
        self.profile = profile if profile is not None \
            else default_profile(network)
        self.shard_id = shard_id
        self.nshards = nshards
        self.telemetry = telemetry
        self.registry = telemetry.registry if telemetry is not None else None

        self._digest = None
        kernel_telemetry = None
        if telemetry is not None:
            kernel_telemetry = telemetry.kernel
            if collect_digest:
                # same wiring as devtools.selfcheck: the digest rides
                # the kernel telemetry's per-event hook
                from ..devtools.sanitizer import EventDigest
                self._digest = EventDigest()
                telemetry.kernel.on_event = self._digest.on_event
        elif collect_digest:
            from ..devtools.sanitizer import digest_telemetry
            shim = digest_telemetry()
            kernel_telemetry = shim
            self._digest = shim.digest

        self.sim = Simulator(seed=config.seed, telemetry=kernel_telemetry)
        self.horizon = days(config.duration_days)
        self.strains = (limewire_strains() if network == "limewire"
                        else openft_strains())
        self.transport = ShardedTransport(self.sim,
                                          loss_rate=self.profile.loss_rate)
        if network == "limewire":
            self.world = build_gnutella_world(
                self.sim, self.profile, self.strains, self.horizon,
                transport=self.transport)
        else:
            self.world = build_openft_world(
                self.sim, self.profile, self.strains, self.horizon,
                transport=self.transport)
        self.injector, self.fetch_faults = _arm_faults(config, self.world,
                                                       self.registry)
        # the plan derives from replicated build state, after the build
        # (so all build-time traffic ran the plain replicated path)
        self.plan = plan_for_world(network, self.world, nshards)
        self.transport.bind(self.plan, shard_id)

        self.crawler = None
        self.store: Optional[MeasurementStore] = None
        self.engine = None
        self.downloader = None
        self.collector = None

    # -- shard-handle protocol (the WindowDriver's duck type) ---------------
    def peek(self) -> Optional[float]:
        return self.sim.queue.peek_time()

    def advance(self, target: float, inclusive: bool,
                batch: Sequence[tuple]) -> Tuple[list, Optional[float]]:
        self.transport.ingest(batch)
        self.sim.run_until(target if inclusive else window_run_target(target))
        return self.transport.take_outbox(), self.peek()

    def run_phase(self, name: str) -> Tuple[list, Optional[float]]:
        """Run one barrier-time program phase; returns its outbox."""
        if name == "bootstrap":
            self.crawler = self.world.network.bootstrap_crawler(
                "crawler", _crawler_address(self.world))
        elif name == "measure":
            if self.shard_id == 0:
                self._install_measurement()
        else:
            raise ValueError(f"unknown phase {name!r}")
        return self.transport.take_outbox(), self.peek()

    def _install_measurement(self) -> None:
        config, sim = self.config, self.sim
        tracer = self.telemetry.tracer if self.telemetry is not None else None
        self.store = MeasurementStore(self.network_name)
        self.engine = ScanEngine(
            database_for_strains(self.strains, config.scanner_coverage),
            registry=self.registry)
        self.downloader = Downloader(sim, self.engine,
                                     config.download_policy,
                                     registry=self.registry, tracer=tracer,
                                     faults=self.fetch_faults)
        collector_cls = (LimewireCollector
                         if self.network_name == "limewire"
                         else OpenFTCollector)
        self.collector = collector_cls(sim, self.world.network, self.crawler,
                                       self.store, self.downloader,
                                       registry=self.registry, tracer=tracer)
        workload = QueryWorkload.from_catalog(
            self.world.catalog, sim.stream("campaign:workload"),
            popular_works=config.popular_works)
        if self.telemetry is not None:
            _install_journal(self.telemetry, sim, self.store, self.engine,
                             self.downloader,
                             until=self.horizon + config.drain_s)
        collector = self.collector
        sim.every(config.query_interval_s,
                  lambda: collector.issue_query(workload.next_query()),
                  label="query", jitter=sim.stream("campaign:jitter"),
                  until=self.horizon)

    def finish(self) -> dict:
        """Settle end-of-campaign telemetry; return this shard's stats."""
        if self.shard_id == 0 and self.telemetry is not None:
            # same closing sequence as the plain campaign's _run
            _export_transport(self.telemetry.registry, self.world.transport)
            self.telemetry.tracer.close_open(self.sim.now)
            if self.telemetry.journal is not None:
                self.telemetry.journal.close(self.sim)
        return {
            "shard": self.shard_id,
            "events": self.sim.events_processed,
            "digest": (self._digest.hexdigest()
                       if self._digest is not None else None),
            "cross_sent": self.transport.cross_sent,
            "cross_received": self.transport.cross_received,
        }


# ---------------------------------------------------------------------------
# executors
# ---------------------------------------------------------------------------

class SerialShardExecutor:
    """All shards in the calling process -- the reference twin.

    Identical window sequence, identical batches, identical results to
    the multi-process executor; only wall-clock differs.  Also the
    automatic fallback on single-core hosts, where extra processes buy
    nothing but pipe latency.
    """

    name = "serial"

    def __init__(self, network: str, config: CampaignConfig, profile,
                 nshards: int, telemetry=None,
                 collect_digest: bool = False) -> None:
        self.handles = [
            ShardRuntime(network, config, profile, shard_id, nshards,
                         telemetry=telemetry if shard_id == 0 else None,
                         collect_digest=collect_digest)
            for shard_id in range(nshards)]
        self.runtime0 = self.handles[0]

    def kill_shard(self, shard_id: int) -> None:
        raise ShardWorkerError(
            shard_id, "ShardCrash requires the process executor "
                      "(serial shards have no worker to kill)")

    def collect(self, want_snapshot: bool) -> List[dict]:
        stats = []
        for runtime in self.handles:
            entry = runtime.finish()
            if want_snapshot and runtime.shard_id != 0:
                entry["snapshot"] = _shard_snapshot(entry)
            stats.append(entry)
        return stats

    def close(self) -> None:
        pass


def _shard_worker(conn, network: str, config: CampaignConfig, profile,
                  shard_id: int, nshards: int, collect_digest: bool,
                  want_snapshot: bool) -> None:
    """Pipe-worker main loop: build one shard, serve barrier requests."""
    try:
        runtime = ShardRuntime(network, config, profile, shard_id, nshards,
                               telemetry=None, collect_digest=collect_digest)
    except BaseException as exc:  # noqa: BLE001 - report, then die
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                return  # parent went away; nothing left to serve
            try:
                op = message[0]
                if op == "advance":
                    conn.send(("ok", runtime.advance(message[1], message[2],
                                                     message[3])))
                elif op == "peek":
                    conn.send(("ok", runtime.peek()))
                elif op == "phase":
                    conn.send(("ok", runtime.run_phase(message[1])))
                elif op == "finish":
                    stats = runtime.finish()
                    if want_snapshot:
                        stats["snapshot"] = _shard_snapshot(stats)
                    conn.send(("ok", stats))
                    return
                else:
                    conn.send(("error", f"unknown op {op!r}"))
                    return
            except BaseException as exc:  # noqa: BLE001
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
                return
    finally:
        conn.close()


class _WorkerProxy:
    """Shard handle speaking the barrier protocol over a pipe."""

    def __init__(self, conn, process, shard_id: int,
                 deadline_s: float) -> None:
        self.conn = conn
        self.process = process
        self.shard_id = shard_id
        self.deadline_s = deadline_s

    def _send(self, message) -> None:
        try:
            self.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise ShardWorkerError(self.shard_id, f"pipe send failed: {exc}")

    def _recv(self):
        if not self.conn.poll(self.deadline_s):
            raise ShardWorkerError(
                self.shard_id,
                f"no reply within {self.deadline_s:.0f}s deadline")
        try:
            kind, value = self.conn.recv()
        except (EOFError, OSError) as exc:
            raise ShardWorkerError(
                self.shard_id, f"worker died mid-window ({exc!r})")
        if kind != "ok":
            raise ShardWorkerError(self.shard_id, str(value))
        return value

    def peek(self):
        self._send(("peek",))
        return self._recv()

    def start_advance(self, target: float, inclusive: bool, batch) -> None:
        self._send(("advance", target, inclusive, batch))

    def finish_advance(self):
        return self._recv()

    def advance(self, target: float, inclusive: bool, batch):
        self.start_advance(target, inclusive, batch)
        return self.finish_advance()

    def run_phase(self, name: str):
        self._send(("phase", name))
        return self._recv()

    def finish(self) -> dict:
        self._send(("finish",))
        return self._recv()


class ProcessShardExecutor:
    """Shard 0 in the parent, shards 1..N-1 in forked pipe workers.

    Workers are spawned *before* the parent builds shard 0, so the N
    replicated world builds run concurrently.  The parent keeps the
    measurement plane (store, telemetry, checkpoint journal) in its own
    address space -- results never cross a process boundary, only
    envelope batches and the final per-shard stats do.
    """

    name = "process"

    def __init__(self, network: str, config: CampaignConfig, profile,
                 nshards: int, telemetry=None, collect_digest: bool = False,
                 deadline_s: float = DEFAULT_WORKER_DEADLINE_S) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        want_snapshot = telemetry is not None
        self._procs = []
        proxies = []
        try:
            for shard_id in range(1, nshards):
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_shard_worker,
                    args=(child_conn, network, config, profile, shard_id,
                          nshards, collect_digest, want_snapshot),
                    daemon=True)
                process.start()
                child_conn.close()
                self._procs.append(process)
                proxies.append(_WorkerProxy(parent_conn, process, shard_id,
                                            deadline_s))
            self.runtime0 = ShardRuntime(network, config, profile, 0,
                                         nshards, telemetry=telemetry,
                                         collect_digest=collect_digest)
        except BaseException:
            self.close()
            raise
        self.handles = [self.runtime0] + proxies

    def kill_shard(self, shard_id: int) -> None:
        """SIGKILL one worker (the ShardCrash clause's enforcement)."""
        process = self._procs[shard_id - 1]
        if process.pid is not None and process.is_alive():
            os.kill(process.pid, signal.SIGKILL)

    def collect(self, want_snapshot: bool) -> List[dict]:
        stats = [self.runtime0.finish()]
        for proxy in self.handles[1:]:
            stats.append(proxy.finish())
        return stats

    def close(self) -> None:
        for process in self._procs:
            if process.is_alive():
                process.terminate()
        for process in self._procs:
            process.join(timeout=10)
            if process.is_alive() and process.pid is not None:
                os.kill(process.pid, signal.SIGKILL)
                process.join(timeout=10)


def _fork_available() -> bool:
    import multiprocessing

    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return False
    return True


def _resolve_executor(executor: str, nshards: int) -> str:
    """Pick the executor: explicit choice, else fit the host.

    ``auto`` uses processes only where they can actually win -- a
    multi-core host with fork -- and otherwise runs the serial twin,
    which computes the exact same campaign.
    """
    if nshards == 1:
        return "serial"
    if executor == "serial":
        return "serial"
    if executor == "process":
        if not _fork_available():
            raise ValueError("process executor requires fork support")
        return "process"
    if executor != "auto":
        raise ValueError(f"unknown shard executor {executor!r}")
    cpus = os.cpu_count() or 1
    if cpus > 1 and _fork_available():
        return "process"
    return "serial"


# ---------------------------------------------------------------------------
# the campaign itself
# ---------------------------------------------------------------------------

@dataclass
class ShardReport:
    """How a sharded campaign executed, plus its determinism evidence."""

    nshards: int
    executor: str
    windows: int
    barriers: int
    lookahead_s: float
    #: per-shard stats dicts: shard, events, digest, cross_sent,
    #: cross_received, fingerprint
    shards: Tuple[dict, ...]
    #: combined campaign digest (per-shard EventDigests folded in shard
    #: order); None unless digests were collected
    digest: Optional[str] = None

    @property
    def fingerprints(self) -> Tuple[dict, ...]:
        """Per-shard journal fingerprints, in shard order."""
        return tuple({"shard": entry["shard"],
                      "events": entry["events"],
                      "fingerprint": entry["fingerprint"]}
                     for entry in self.shards)


def _campaign_program(network: str,
                      config: CampaignConfig) -> List[tuple]:
    """The barrier program mirroring the plain runners' run/phase order."""
    final = days(config.duration_days) + config.drain_s
    if network == "limewire":
        return [("phase", "bootstrap"), ("phase", "measure"),
                ("run", final)]
    # OpenFT: adoptions settle to t=300, then the crawler bootstraps and
    # gets 60s of node-list discovery before measurement starts -- the
    # same segmentation as run_openft_campaign
    return [("run", 300.0), ("phase", "bootstrap"), ("run", 360.0),
            ("phase", "measure"), ("run", final)]


def run_sharded_campaign(network: str,
                         config: Optional[CampaignConfig] = None,
                         profile=None, telemetry=None,
                         executor: str = "auto",
                         collect_digest: bool = False,
                         attempt: int = 0,
                         force_windows: bool = False,
                         deadline_s: float = DEFAULT_WORKER_DEADLINE_S,
                         ) -> CampaignResult:
    """Run one campaign across ``config.shards`` kernel shards.

    Returns the same :class:`CampaignResult` the plain runners do (the
    store, world, engine and fault injector are shard 0's), with
    ``result.shards`` carrying the :class:`ShardReport`.  ``attempt``
    is the replication attempt ordinal, consulted by the plan's
    :class:`~repro.faults.plan.ShardCrash` clause.
    """
    config = config or CampaignConfig()
    nshards = config.shards
    mode = _resolve_executor(executor, nshards)
    want_snapshot = telemetry is not None

    if mode == "process":
        executor_obj = ProcessShardExecutor(
            network, config, profile, nshards, telemetry=telemetry,
            collect_digest=collect_digest, deadline_s=deadline_s)
    else:
        executor_obj = SerialShardExecutor(
            network, config, profile, nshards, telemetry=telemetry,
            collect_digest=collect_digest)
    try:
        runtime0 = executor_obj.runtime0
        lookahead = lookahead_of(runtime0.world.transport.latency)
        driver = WindowDriver(executor_obj.handles, runtime0.plan,
                              lookahead, force_windows=force_windows)

        crash = config.fault_plan.shard_crash \
            if config.fault_plan is not None else None
        if crash is not None and crash.should_kill(config.seed, attempt) \
                and crash.shard < nshards and mode == "process":
            rounds = {"n": 0}

            def on_barrier() -> None:
                rounds["n"] += 1
                if rounds["n"] == crash.after_windows + 1:
                    executor_obj.kill_shard(crash.shard)

            driver.on_barrier = on_barrier

        for kind, value in _campaign_program(network, config):
            if kind == "run":
                driver.run_segment(value)
            else:
                for handle in driver.shards:
                    outbox, _peek = handle.run_phase(value)
                    driver.absorb(outbox)
        stats = executor_obj.collect(want_snapshot)
    finally:
        executor_obj.close()

    for entry in stats:
        entry["fingerprint"] = _shard_fingerprint(entry, driver.windows)
    digest = combine_shard_digests([entry["digest"] for entry in stats]) \
        if collect_digest else None

    if telemetry is not None:
        registry = telemetry.registry
        _set_shard_gauges(registry, stats[0])
        merge_shard_snapshots(
            registry,
            [entry["snapshot"] for entry in stats[1:]
             if entry.get("snapshot") is not None])
        registry.gauge("shard_count",
                       "Shards the campaign ran across.").set(nshards)
        registry.gauge("shard_windows",
                       "Conservative windows crossed.").set(driver.windows)

    report = ShardReport(
        nshards=nshards, executor=mode, windows=driver.windows,
        barriers=driver.barriers, lookahead_s=lookahead,
        shards=tuple(stats), digest=digest)
    result = CampaignResult(store=runtime0.store, world=runtime0.world,
                            config=config, engine=runtime0.engine,
                            telemetry=telemetry, faults=runtime0.injector)
    result.shards = report
    return result
