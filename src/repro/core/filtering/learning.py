"""How fast the size filter learns: the data-efficiency curve.

Operationally the question is "how much scanning does an operator need
before the dictionary works?".  :func:`learning_curve` trains the size
filter on growing prefixes of the campaign (by virtual day) and
evaluates each dictionary on the *remaining* days -- a proper
train/test split in time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..measure.store import MeasurementStore
from .base import FilterReport
from .evaluate import evaluate_filter
from .sizefilter import SizeBasedFilter

__all__ = ["LearningPoint", "learning_curve"]


@dataclass(frozen=True)
class LearningPoint:
    """One train-prefix evaluation."""

    train_days: int
    train_malicious: int
    dictionary_size: int
    report: FilterReport


def _store_subset(store: MeasurementStore, predicate) -> MeasurementStore:
    subset = MeasurementStore(store.network)
    subset.extend(record for record in store if predicate(record))
    return subset


def learning_curve(store: MeasurementStore, top_n: int = 3,
                   coverage: float = 0.95) -> List[LearningPoint]:
    """Train on days [0, d), test on days [d, end) for every d >= 1."""
    by_day = store.by_day()
    if not by_day:
        return []
    last_day = max(by_day)
    points: List[LearningPoint] = []
    for split in range(1, last_day + 1):
        train = _store_subset(store, lambda r, s=split: r.day < s)
        test = _store_subset(store, lambda r, s=split: r.day >= s)
        if not test.downloadable_responses():
            continue
        try:
            size_filter = SizeBasedFilter.learn(train, top_n=top_n,
                                                coverage=coverage)
        except ValueError:
            continue  # not enough malicious training data yet
        points.append(LearningPoint(
            train_days=split,
            train_malicious=len(train.malicious_responses()),
            dictionary_size=len(size_filter),
            report=evaluate_filter(size_filter, test)))
    return points
