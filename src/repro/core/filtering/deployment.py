"""Extension: what deploying a filter would mean for users.

The paper proposes size-based filtering as a client/ultrapeer mechanism.
This module turns a filter evaluation into the user-facing quantities an
operator would quote:

* **exposure**: of the malicious responses a user's searches produced,
  how many still reach their result list with the filter on;
* **collateral**: how many clean results the filter hides;
* **residual risk**: the probability that a user who downloads a random
  surviving archive/exe result gets malware -- before vs after.

Everything is computed from a measured store, so the numbers correspond
to the exact traffic mix of a campaign.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..measure.store import MeasurementStore
from .base import ResponseFilter

__all__ = ["DeploymentReport", "simulate_deployment"]


@dataclass(frozen=True)
class DeploymentReport:
    """User-facing impact of deploying one filter."""

    filter_name: str
    network: str
    malicious_before: int
    malicious_after: int
    clean_before: int
    clean_after: int

    @property
    def exposure_reduction(self) -> float:
        """Fraction of malicious results removed from what users see."""
        if not self.malicious_before:
            return 0.0
        return 1.0 - self.malicious_after / self.malicious_before

    @property
    def collateral_loss(self) -> float:
        """Fraction of clean results wrongly hidden."""
        if not self.clean_before:
            return 0.0
        return 1.0 - self.clean_after / self.clean_before

    @property
    def residual_risk_before(self) -> float:
        """P(random surviving result is malicious) without the filter."""
        total = self.malicious_before + self.clean_before
        return self.malicious_before / total if total else 0.0

    @property
    def residual_risk_after(self) -> float:
        """P(random surviving result is malicious) with the filter."""
        total = self.malicious_after + self.clean_after
        return self.malicious_after / total if total else 0.0


def simulate_deployment(response_filter: ResponseFilter,
                        store: MeasurementStore) -> DeploymentReport:
    """Replay a store's downloadable responses through a filter."""
    malicious_before = malicious_after = 0
    clean_before = clean_after = 0
    for record in store.downloadable_responses():
        blocked = response_filter.blocks(record)
        if record.is_malicious:
            malicious_before += 1
            if not blocked:
                malicious_after += 1
        else:
            clean_before += 1
            if not blocked:
                clean_after += 1
    return DeploymentReport(
        filter_name=response_filter.name, network=store.network,
        malicious_before=malicious_before, malicious_after=malicious_after,
        clean_before=clean_before, clean_after=clean_after)
