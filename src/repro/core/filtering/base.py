"""Filter interface and evaluation report types.

A response filter decides, from wire-visible fields only (name, size,
hash, responder), whether a query response should be hidden from the
user.  Both the baseline (Limewire's existing mechanisms) and the paper's
proposed size-based filter implement this interface, so the T5 comparison
is apples to apples.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..measure.records import ResponseRecord

__all__ = ["ResponseFilter", "FilterReport"]


class ResponseFilter(abc.ABC):
    """Decides whether to block one response."""

    #: Human-readable name used in the T5 table.
    name: str = "filter"

    @abc.abstractmethod
    def blocks(self, record: ResponseRecord) -> bool:
        """True when the filter would hide this response from the user."""


@dataclass(frozen=True)
class FilterReport:
    """Outcome of evaluating one filter against one store."""

    filter_name: str
    network: str
    malicious_total: int
    malicious_blocked: int
    clean_total: int
    clean_blocked: int

    @property
    def detection_rate(self) -> float:
        """Blocked share of malicious responses (the 6% vs >99%)."""
        return (self.malicious_blocked / self.malicious_total
                if self.malicious_total else 0.0)

    @property
    def false_positive_rate(self) -> float:
        """Blocked share of clean downloadable responses."""
        return (self.clean_blocked / self.clean_total
                if self.clean_total else 0.0)
