"""The baseline: Limewire's existing response-filtering mechanisms.

2006 Limewire shipped (a) a keyword junk filter the user could populate,
and (b) a blocklist of known-bad content hashes.  Both lag reality: the
hash list knows yesterday's malware -- older/tail strains and superseded
variants -- while the query-echo worms dominating the network mutate name
and (occasionally) body faster than the list updates.  The paper measured
these mechanisms catching only ~6% of malware-containing responses.

``ExistingLimewireFilter.stale_blocklist`` models that lag explicitly:
the blocklist covers every strain except the *primary variant* of the
top ``unknown_top_variants`` strains (the currently-circulating bodies
the list has not caught up with).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set

from ...files.names import tokenize
from ...malware.infection import dropper_archive_blob, strain_body_blob
from ...malware.strain import Behaviour, MalwareStrain
from ..measure.records import ResponseRecord
from .base import ResponseFilter

__all__ = ["ExistingLimewireFilter"]

#: Keywords Limewire's default junk filter shipped with (vbs/scr mailers).
_DEFAULT_JUNK_KEYWORDS = frozenset({"vbs", "gnutella", "mandragore"})


class ExistingLimewireFilter(ResponseFilter):
    """Hash blocklist + keyword junk filter, as deployed in 2006."""

    name = "existing-limewire"

    def __init__(self, blocked_content_ids: Iterable[str],
                 junk_keywords: Iterable[str] = _DEFAULT_JUNK_KEYWORDS,
                 ) -> None:
        self._blocked: Set[str] = set(blocked_content_ids)
        self._junk = frozenset(keyword.lower() for keyword in junk_keywords)

    def blocks(self, record: ResponseRecord) -> bool:
        if record.content_id in self._blocked:
            return True
        return bool(self._junk & tokenize(record.filename))

    @classmethod
    def stale_blocklist(cls, strains: Sequence[MalwareStrain],
                        unknown_top_variants: int = 3,
                        ) -> "ExistingLimewireFilter":
        """Build the filter with a realistically outdated hash list.

        The list covers the bodies (and dropper wrappers) of every strain
        *except* the primary variant of the first ``unknown_top_variants``
        strains -- the bodies currently flooding the network that the list
        has not been updated for.
        """
        blocked: Set[str] = set()
        for index, strain in enumerate(strains):
            for variant_index in range(len(strain.sizes)):
                if index < unknown_top_variants and variant_index == 0:
                    continue  # the in-the-wild body the list lags behind
                blocked.add(strain_body_blob(strain, variant_index).sha1_urn())
                blocked.add(strain_body_blob(strain, variant_index).md5_hex())
                if strain.behaviour is Behaviour.TROJAN_DROPPER:
                    archive = dropper_archive_blob(strain, variant_index)
                    blocked.add(archive.sha1_urn())
                    blocked.add(archive.md5_hex())
        return cls(blocked_content_ids=blocked)
