"""Oracle hash blocklist: the upper bound for hash-based filtering.

The existing-Limewire baseline fails because its hash list lags the
malware; this filter is the same mechanism with a *perfect, instantly
updated* list -- every malicious content identity ever scanned in the
campaign.  It bounds what any hash-blocklist pipeline could achieve, and
the T5 extension comparison shows the size filter matches it while
needing four integers instead of a content-hash feed.
"""

from __future__ import annotations

from typing import FrozenSet

from ..measure.records import ResponseRecord
from ..measure.store import MeasurementStore
from .base import ResponseFilter

__all__ = ["OracleHashFilter"]


class OracleHashFilter(ResponseFilter):
    """Blocks every content identity that ever scanned malicious."""

    name = "oracle-hash"

    def __init__(self, blocked_content_ids: FrozenSet[str]) -> None:
        self.blocked_content_ids = frozenset(blocked_content_ids)

    def blocks(self, record: ResponseRecord) -> bool:
        return record.content_id in self.blocked_content_ids

    @classmethod
    def learn(cls, store: MeasurementStore) -> "OracleHashFilter":
        """Collect every malicious content id the campaign scanned."""
        return cls(frozenset(record.content_id
                             for record in store.malicious_responses()))

    def __len__(self) -> int:
        return len(self.blocked_content_ids)
