"""T5: evaluate filters against a measured campaign.

Detection rate is computed over malware-containing downloadable responses
and false positives over clean downloadable responses -- the same
population the paper's "detect only about 6% ... would detect over 99%"
comparison uses.
"""

from __future__ import annotations

from typing import Iterable, List

from ..measure.store import MeasurementStore
from .base import FilterReport, ResponseFilter

__all__ = ["evaluate_filter", "evaluate_filters"]


def evaluate_filter(response_filter: ResponseFilter,
                    store: MeasurementStore) -> FilterReport:
    """Run one filter over a store's downloadable responses."""
    malicious = store.malicious_responses()
    clean = store.clean_downloadable_responses()
    malicious_blocked = sum(
        1 for record in malicious if response_filter.blocks(record))
    clean_blocked = sum(
        1 for record in clean if response_filter.blocks(record))
    return FilterReport(
        filter_name=response_filter.name,
        network=store.network,
        malicious_total=len(malicious),
        malicious_blocked=malicious_blocked,
        clean_total=len(clean),
        clean_blocked=clean_blocked,
    )


def evaluate_filters(filters: Iterable[ResponseFilter],
                     store: MeasurementStore) -> List[FilterReport]:
    """Evaluate several filters for the T5 comparison table."""
    return [evaluate_filter(response_filter, store)
            for response_filter in filters]
