"""The paper's proposal: size-based filtering.

"Filtering downloads based on the most commonly seen sizes of the most
popular malware could block a large portion of malicious files with a
very low rate of false positives."

The filter blocks archive/executable responses whose *exact size* is in a
dictionary learned from scanned data: for each of the top-N strains, the
most common sizes covering a target share of its responses.  Because worm
bodies are byte-identical while clean sizes spread over a continuous
distribution, a handful of integers covers nearly all malware and almost
no legitimate content.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from ..analysis.sizes import size_dictionary
from ..measure.records import ResponseRecord
from ..measure.store import MeasurementStore
from .base import ResponseFilter

__all__ = ["SizeBasedFilter"]


class SizeBasedFilter(ResponseFilter):
    """Block archive/exe responses at known-bad exact sizes."""

    name = "size-based"

    def __init__(self, blocked_sizes: Iterable[int]) -> None:
        self.blocked_sizes: FrozenSet[int] = frozenset(blocked_sizes)
        if not self.blocked_sizes:
            raise ValueError("size filter needs at least one size")

    def blocks(self, record: ResponseRecord) -> bool:
        return (record.counts_as_downloadable_type
                and record.size in self.blocked_sizes)

    @classmethod
    def learn(cls, store: MeasurementStore, top_n: int = 3,
              coverage: float = 0.95) -> "SizeBasedFilter":
        """Build the dictionary from a store's scanned malicious responses.

        This mirrors the paper's construction: rank strains by prevalence,
        take each top strain's most common sizes until ``coverage`` of its
        responses is covered, block the union.
        """
        profiles = size_dictionary(store, top_n=top_n, coverage=coverage)
        sizes = [size for profile in profiles
                 for size in profile.common_sizes]
        if not sizes:
            raise ValueError(
                "store has no malicious responses to learn sizes from")
        return cls(blocked_sizes=sizes)

    def __len__(self) -> int:
        return len(self.blocked_sizes)
