"""Filtering layer: the existing-Limewire baseline and the size filter."""

from .base import FilterReport, ResponseFilter
from .deployment import DeploymentReport, simulate_deployment
from .evaluate import evaluate_filter, evaluate_filters
from .existing import ExistingLimewireFilter
from .learning import LearningPoint, learning_curve
from .oracle import OracleHashFilter
from .sizefilter import SizeBasedFilter

__all__ = [
    "FilterReport", "ResponseFilter",
    "DeploymentReport", "simulate_deployment",
    "evaluate_filter", "evaluate_filters",
    "ExistingLimewireFilter", "SizeBasedFilter",
    "LearningPoint", "learning_curve",
    "OracleHashFilter",
]
