"""CSV export of every table and figure.

The text renderers in :mod:`repro.core.reports` are for terminals; these
writers emit the same data as CSV so plots can be made with any tool.
One file per experiment id, written into a directory.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .analysis.concentration import rank_cdf, top_malware
from .analysis.prevalence import compute_prevalence
from .analysis.sizes import distinct_size_counts, size_dictionary
from .analysis.sources import address_breakdown, host_concentration
from .analysis.summary import summarize_collection
from .analysis.timeseries import daily_series
from .measure.store import MeasurementStore

__all__ = ["export_all", "EXPORTERS"]


def _write(path: Path, header: Sequence[str],
           rows: Sequence[Sequence]) -> None:
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_t1(store: MeasurementStore, path: Path,
              duration_days: float = 1.0) -> None:
    """T1 as a single-row CSV."""
    summary = summarize_collection(store, duration_days)
    _write(path,
           ["network", "days", "queries", "responses", "arc_exe",
            "downloaded", "malicious", "hosts", "contents"],
           [[summary.network, summary.duration_days,
             summary.queries_issued, summary.responses,
             summary.downloadable_type_responses,
             summary.downloaded_responses, summary.malicious_responses,
             summary.unique_hosts, summary.unique_contents]])


def export_t2(store: MeasurementStore, path: Path) -> None:
    """T2 overall + per-type rows."""
    report = compute_prevalence(store)
    rows: List[List] = [[store.network, "all", report.downloadable,
                         report.malicious, report.fraction]]
    for type_name, (downloadable, malicious) in sorted(
            report.by_type.items()):
        fraction = malicious / downloadable if downloadable else 0.0
        rows.append([store.network, type_name, downloadable, malicious,
                     fraction])
    _write(path, ["network", "type", "downloadable", "malicious",
                  "prevalence"], rows)


def export_t3(store: MeasurementStore, path: Path) -> None:
    """T3 ranked strains."""
    _write(path, ["rank", "malware", "responses", "share", "cumulative"],
           [[row.rank, row.name, row.responses, row.share,
             row.cumulative_share] for row in top_malware(store)])


def export_t4(store: MeasurementStore, path: Path) -> None:
    """T4 address classes + top hosts."""
    breakdown = address_breakdown(store)
    rows: List[List] = [["address_class", klass, count,
                         breakdown.fraction(klass)]
                        for klass, count in sorted(breakdown.counts.items())]
    for host_row in host_concentration(store)[:20]:
        rows.append(["host", host_row.responder_host, host_row.responses,
                     host_row.share])
    _write(path, ["kind", "key", "responses", "share"], rows)


def export_t6(store: MeasurementStore, path: Path, top_n: int = 3) -> None:
    """T6 size dictionary (one row per strain x size)."""
    rows = []
    for profile in size_dictionary(store, top_n=top_n):
        for size, count in profile.size_counts:
            rows.append([profile.name, size, count,
                         size in profile.common_sizes])
    _write(path, ["malware", "size_bytes", "responses", "in_dictionary"],
           rows)


def export_f1(store: MeasurementStore, path: Path) -> None:
    """F1 rank CDF points."""
    _write(path, ["rank", "cumulative_share"],
           [[index + 1, value]
            for index, value in enumerate(rank_cdf(store))])


def export_f2(store: MeasurementStore, path: Path) -> None:
    """F2 distinct sizes per strain."""
    _write(path, ["malware", "distinct_sizes"],
           sorted(distinct_size_counts(store).items()))


def export_f3(store: MeasurementStore, path: Path) -> None:
    """F3 daily series."""
    _write(path, ["day", "responses", "downloadable", "malicious", "share"],
           [[point.day, point.responses, point.downloadable,
             point.malicious, point.malicious_share]
            for point in daily_series(store)])


def export_f4(store: MeasurementStore, path: Path,
              malware_name: Optional[str] = None) -> None:
    """F4 host concentration points."""
    _write(path, ["rank", "host", "responses", "share"],
           [[row.rank, row.responder_host, row.responses, row.share]
            for row in host_concentration(store, malware_name)])


EXPORTERS = {
    "t1": export_t1, "t2": export_t2, "t3": export_t3, "t4": export_t4,
    "t6": export_t6, "f1": export_f1, "f2": export_f2, "f3": export_f3,
    "f4": export_f4,
}


def export_all(store: MeasurementStore, directory: Path) -> Dict[str, Path]:
    """Write every exportable experiment to ``directory``.

    Returns a map of experiment id to the written path.  (T5 is not here:
    filter evaluation needs a filter choice; use the CLI's filter-eval.)
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}
    for experiment_id, exporter in EXPORTERS.items():
        path = directory / f"{store.network}_{experiment_id}.csv"
        exporter(store, path)
        written[experiment_id] = path
    return written
