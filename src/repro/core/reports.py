"""Report renderers: the paper's tables and figures as printable text.

Each ``render_*`` function corresponds to one experiment id in DESIGN.md
(T1..T6, F1..F4) and returns a plain-text table/series in the layout the
benchmarks print, so "regenerating a table" means calling one function.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .analysis.concentration import rank_cdf, top_malware
from .analysis.prevalence import compute_prevalence
from .analysis.sizes import distinct_size_counts, size_dictionary
from .analysis.sources import address_breakdown, host_cdf, host_concentration
from .analysis.summary import summarize_collection
from .analysis.timeseries import daily_series
from .filtering.base import FilterReport
from .measure.store import MeasurementStore

__all__ = ["render_t1_summary", "render_t2_prevalence",
           "render_t3_top_malware", "render_t4_sources",
           "render_t5_filters", "render_t6_size_dictionary",
           "render_f1_rank_cdf", "render_f2_size_distribution",
           "render_f3_timeseries", "render_f4_host_cdf",
           "render_x1_sample_census", "render_x2_availability",
           "render_x3_vendors", "render_x4_deployment"]


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]],
           title: str) -> str:
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    separator = "  ".join("-" * width for width in widths)
    body = [title, line(headers), separator]
    body.extend(line(row) for row in rows)
    return "\n".join(body)


def render_t1_summary(stores: Sequence[MeasurementStore],
                      duration_days: float) -> str:
    """T1: data-collection summary, one row per network."""
    rows = []
    for store in stores:
        summary = summarize_collection(store, duration_days)
        rows.append([
            summary.network,
            f"{summary.duration_days:g}",
            str(summary.queries_issued),
            str(summary.responses),
            str(summary.downloadable_type_responses),
            str(summary.downloaded_responses),
            str(summary.unique_hosts),
            str(summary.unique_contents),
        ])
    return _table(
        ["network", "days", "queries", "responses", "arc/exe", "downloaded",
         "hosts", "contents"],
        rows, "T1: data collection summary")


def render_t2_prevalence(stores: Sequence[MeasurementStore]) -> str:
    """T2: malware prevalence among downloadable archive/exe responses."""
    rows = []
    for store in stores:
        report = compute_prevalence(store)
        rows.append([report.network, str(report.downloadable),
                     str(report.malicious), f"{report.fraction:.1%}"])
    return _table(["network", "downloadable", "malicious", "prevalence"],
                  rows, "T2: malware prevalence (paper: 68% LW / 3% OpenFT)")


def render_t3_top_malware(store: MeasurementStore, top_n: int = 10) -> str:
    """T3: ranked top-malware table for one network."""
    rows = [[str(row.rank), row.name, str(row.responses),
             f"{row.share:.1%}", f"{row.cumulative_share:.1%}"]
            for row in top_malware(store)[:top_n]]
    return _table(["rank", "malware", "responses", "share", "cumulative"],
                  rows, f"T3 ({store.network}): top malware "
                        "(paper: top-3 = 99% LW / 75% OpenFT)")


def render_t4_sources(store: MeasurementStore,
                      top_strain: Optional[str] = None) -> str:
    """T4: source analysis -- address classes and host concentration."""
    breakdown = address_breakdown(store)
    rows = [[address_class, str(count),
             f"{breakdown.fraction(address_class):.1%}"]
            for address_class, count in sorted(breakdown.counts.items())]
    address_part = _table(
        ["address class", "responses", "share"], rows,
        f"T4a ({store.network}): malicious responses by advertised address "
        "(paper: 28% private in LW)")
    hosts = host_concentration(store, top_strain)[:5]
    host_rows = [[str(row.rank), row.responder_host, str(row.responses),
                  f"{row.share:.1%}"] for row in hosts]
    strain_label = top_strain or "all strains"
    host_part = _table(
        ["rank", "host", "responses", "share"], host_rows,
        f"T4b ({store.network}): top hosts serving {strain_label} "
        "(paper: OpenFT top virus 67% from one host)")
    return address_part + "\n\n" + host_part


def render_t5_filters(reports: Sequence[FilterReport]) -> str:
    """T5: filter comparison (paper: ~6% existing vs >99% size-based)."""
    rows = [[report.filter_name, str(report.malicious_blocked),
             str(report.malicious_total), f"{report.detection_rate:.1%}",
             f"{report.false_positive_rate:.2%}"]
            for report in reports]
    return _table(
        ["filter", "blocked", "malicious", "detection", "false positives"],
        rows, "T5: filtering effectiveness")


def render_t6_size_dictionary(store: MeasurementStore, top_n: int = 3,
                              coverage: float = 0.95) -> str:
    """T6: the learned size dictionary per top strain."""
    rows = []
    for profile in size_dictionary(store, top_n=top_n, coverage=coverage):
        sizes = ", ".join(str(size) for size in profile.common_sizes)
        rows.append([profile.name, str(profile.responses),
                     str(profile.distinct_sizes), sizes])
    return _table(["malware", "responses", "distinct sizes", "common sizes"],
                  rows, f"T6 ({store.network}): size dictionary")


def _series(values: List[float], label: str, fmt: str = "{:.3f}") -> str:
    lines = [label]
    lines.extend(f"  [{index:3d}] {fmt.format(value)}"
                 for index, value in enumerate(values))
    return "\n".join(lines)


def render_f1_rank_cdf(store: MeasurementStore) -> str:
    """F1: cumulative malicious-response share by strain rank."""
    return _series(rank_cdf(store),
                   f"F1 ({store.network}): malicious-response CDF by "
                   "malware rank")


def render_f2_size_distribution(store: MeasurementStore) -> str:
    """F2: distinct exact sizes per strain."""
    counts = distinct_size_counts(store)
    rows = [[name, str(count)]
            for name, count in sorted(counts.items(),
                                      key=lambda item: (-item[1], item[0]))]
    return _table(["malware", "distinct sizes"], rows,
                  f"F2 ({store.network}): size diversity per strain")


def render_f3_timeseries(store: MeasurementStore) -> str:
    """F3: daily malicious share."""
    points = daily_series(store)
    lines = [f"F3 ({store.network}): daily malicious share"]
    lines.extend(
        f"  day {point.day:2d}: responses={point.responses:5d} "
        f"downloadable={point.downloadable:5d} "
        f"malicious={point.malicious:5d} "
        f"share={point.malicious_share:.1%}"
        for point in points)
    return "\n".join(lines)


def render_f4_host_cdf(store: MeasurementStore,
                       top_strain: Optional[str] = None) -> str:
    """F4: cumulative malicious-response share by host rank."""
    label = f"F4 ({store.network}): host CDF"
    if top_strain:
        label += f" for {top_strain}"
    return _series(host_cdf(store, top_strain), label)


# -- extension renderers (X1..X4) -------------------------------------------

def render_x1_sample_census(store: MeasurementStore,
                            top_n: int = 10) -> str:
    """X1: distinct malicious samples behind the responses."""
    from .analysis.census import sample_census

    samples = sample_census(store)
    malicious = len(store.malicious_responses())
    rows = [[str(sample.responses), str(sample.hosts), str(sample.size),
             sample.malware_name, sample.content_id[:24]]
            for sample in samples[:top_n]]
    return _table(
        ["responses", "hosts", "size", "malware", "content id"], rows,
        f"X1 ({store.network}): {malicious} malicious responses, "
        f"{len(samples)} distinct samples")


def render_x2_availability(store: MeasurementStore) -> str:
    """X2: download success by responder class."""
    from .analysis.availability import availability_breakdown

    rows = [[row.responder_class, str(row.responses), str(row.attempted),
             str(row.downloaded), f"{row.success_rate:.1%}"]
            for row in availability_breakdown(store)]
    return _table(
        ["responder class", "responses", "attempted", "downloaded",
         "success"], rows,
        f"X2 ({store.network}): download success by responder class")


def render_x3_vendors(store: MeasurementStore) -> str:
    """X3: the servent census and its malicious slice."""
    from .analysis.vendors import vendor_census

    rows = [[row.vendor, str(row.responses), f"{row.response_share:.1%}",
             str(row.malicious), f"{row.malicious_share:.1%}"]
            for row in vendor_census(store)]
    return _table(
        ["vendor", "responses", "share", "malicious", "malicious share"],
        rows, f"X3 ({store.network}): vendor census")


def render_x4_deployment(store: MeasurementStore) -> str:
    """X4: user-facing impact of deploying the size filter."""
    from .filtering.deployment import simulate_deployment
    from .filtering.sizefilter import SizeBasedFilter

    size_filter = SizeBasedFilter.learn(store)
    report = simulate_deployment(size_filter, store)
    lines = [
        f"X4 ({store.network}): deploying the size filter",
        f"  exposure reduction:   {report.exposure_reduction:.1%}",
        f"  collateral loss:      {report.collateral_loss:.2%}",
        f"  residual risk before: {report.residual_risk_before:.1%}",
        f"  residual risk after:  {report.residual_risk_after:.2%}",
    ]
    return "\n".join(lines)
