"""Simulated AV scanner: signatures, databases and the scan engine.

Plays the role of the AV tooling the paper used for ground truth on
downloaded files.
"""

from .database import SignatureDatabase, database_for_strains
from .engine import Detection, ScanEngine, ScanVerdict
from .matcher import MultiPatternMatcher
from .signatures import Signature, SignatureKind

__all__ = [
    "SignatureDatabase", "database_for_strains",
    "Detection", "ScanEngine", "ScanVerdict",
    "MultiPatternMatcher",
    "Signature", "SignatureKind",
]
