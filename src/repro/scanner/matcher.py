"""Multi-pattern byte matching for the scan engine.

The naive engine loop ran ``pattern in body`` once per signature -- fine
for a handful of strains, linear-in-signatures for the ecosystem-scale
databases the roadmap is heading toward.  :class:`MultiPatternMatcher`
does one pass instead:

1. a single precompiled regex alternation answers "does *any* pattern
   occur?" at C speed -- the common clean-blob case exits here;
2. a tiny Aho--Corasick automaton reports the exact set of patterns
   present.  Unlike a bare regex alternation (which yields one match per
   position and so can shadow patterns that overlap or nest inside other
   patterns), Aho--Corasick's output links report every pattern, which
   keeps the matcher bit-identical to the naive per-signature loop.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

__all__ = ["MultiPatternMatcher"]


class MultiPatternMatcher:
    """Find which of a fixed set of byte patterns occur in a body.

    ``match(body)`` returns the set of pattern *indices* (into the
    sequence given at construction) that occur anywhere in ``body`` --
    exactly the indices for which ``patterns[i] in body`` is true.
    """

    def __init__(self, patterns: Sequence[bytes]) -> None:
        self.patterns: Tuple[bytes, ...] = tuple(patterns)
        for index, pattern in enumerate(self.patterns):
            if not pattern:
                raise ValueError(f"pattern {index} is empty")
        # Duplicate byte strings share one automaton entry; map each
        # unique pattern to every index that asked for it.
        self._indices_for: Dict[bytes, Tuple[int, ...]] = {}
        for index, pattern in enumerate(self.patterns):
            self._indices_for.setdefault(pattern, ())
            self._indices_for[pattern] += (index,)
        unique = list(self._indices_for)
        self._prefilter = re.compile(
            b"|".join(re.escape(pattern)
                      for pattern in sorted(unique, key=len, reverse=True))
        ) if unique else None
        self._build_automaton(unique)

    # -- construction -------------------------------------------------------
    def _build_automaton(self, unique: List[bytes]) -> None:
        """Classic Aho--Corasick: goto trie, fail links, merged outputs."""
        # state 0 is the root; each state is a dict byte-value -> state
        goto: List[Dict[int, int]] = [{}]
        out: List[Set[bytes]] = [set()]
        for pattern in unique:
            state = 0
            for byte in pattern:
                nxt = goto[state].get(byte)
                if nxt is None:
                    goto.append({})
                    out.append(set())
                    nxt = len(goto) - 1
                    goto[state][byte] = nxt
                state = nxt
            out[state].add(pattern)

        fail = [0] * len(goto)
        queue: List[int] = []
        for state in goto[0].values():
            queue.append(state)
        head = 0
        while head < len(queue):
            state = queue[head]
            head += 1
            for byte, nxt in goto[state].items():
                queue.append(nxt)
                fallback = fail[state]
                while fallback and byte not in goto[fallback]:
                    fallback = fail[fallback]
                fail[nxt] = goto[fallback].get(byte, 0)
                out[nxt] |= out[fail[nxt]]

        self._goto = goto
        self._fail = fail
        self._out: List[FrozenSet[bytes]] = [frozenset(s) for s in out]

    # -- matching -----------------------------------------------------------
    def match(self, body: bytes) -> FrozenSet[int]:
        """Indices of all patterns occurring anywhere in ``body``."""
        if self._prefilter is None or self._prefilter.search(body) is None:
            return frozenset()
        goto, fail, out = self._goto, self._fail, self._out
        found: Set[bytes] = set()
        state = 0
        for byte in body:
            while state and byte not in goto[state]:
                state = fail[state]
            state = goto[state].get(byte, 0)
            if out[state]:
                found |= out[state]
        indices: Set[int] = set()
        for pattern in found:
            indices.update(self._indices_for[pattern])
        return frozenset(indices)

    def __len__(self) -> int:
        return len(self.patterns)
