"""Signature databases.

The paper downloaded responses and scanned them with AV tooling to obtain
ground truth.  :func:`database_for_strains` builds the equivalent: one
pattern signature per strain in a corpus (full coverage -- this DB *is*
the ground truth labeller).  ``coverage`` below 1.0 models a stale engine
that misses the newest strains, used in ablations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..malware.strain import MalwareStrain
from .signatures import Signature, SignatureKind

__all__ = ["SignatureDatabase", "database_for_strains"]


class SignatureDatabase:
    """Indexed collection of signatures."""

    def __init__(self, signatures: Iterable[Signature] = ()) -> None:
        self._patterns: List[Signature] = []
        self._hashes: Dict[str, Signature] = {}
        self._version = 0
        for signature in signatures:
            self.add(signature)

    def __len__(self) -> int:
        return len(self._patterns) + len(self._hashes)

    @property
    def version(self) -> int:
        """Monotonic update counter.

        Bumped on every :meth:`add`; the scan engine keys its verdict
        cache and compiled matcher on this, so a database update (new
        signature push) invalidates stale verdicts automatically.
        """
        return self._version

    def add(self, signature: Signature) -> None:
        """Register a signature."""
        if signature.kind is SignatureKind.PATTERN:
            self._patterns.append(signature)
        else:
            assert signature.sha1_urn is not None
            self._hashes[signature.sha1_urn] = signature
        self._version += 1

    def match_hash(self, sha1_urn: str) -> Optional[Signature]:
        """Exact-content lookup."""
        return self._hashes.get(sha1_urn)

    def pattern_signatures(self) -> List[Signature]:
        """All byte-pattern signatures (engine iterates these)."""
        return list(self._patterns)

    def names(self) -> List[str]:
        """Sorted distinct detection names."""
        names = {signature.name for signature in self._patterns}
        names.update(signature.name for signature in self._hashes.values())
        return sorted(names)


def database_for_strains(strains: Iterable[MalwareStrain],
                         coverage: float = 1.0) -> SignatureDatabase:
    """Signature DB covering (a prefix of) a strain corpus.

    ``coverage`` is the fraction of strains (in corpus order, i.e. most
    prevalent first) the DB knows about; 1.0 reproduces the paper's
    ground-truth scan, lower values model a lagging AV product.
    """
    if not 0.0 <= coverage <= 1.0:
        raise ValueError(f"coverage must be in [0, 1], got {coverage!r}")
    strain_list = list(strains)
    covered = strain_list[:round(len(strain_list) * coverage)]
    return SignatureDatabase(
        Signature.for_pattern(strain.av_name, strain.marker)
        for strain in covered
    )
