"""The scan engine: blob in, verdict out.

The pipeline mirrors an AV scan of a downloaded file:

1. exact-hash lookup on the content identity;
2. byte-pattern search over the body (our sparse blobs expose embedded
   markers, and the header bytes are also searched so header-based
   signatures would work);
3. recursion into archive members, depth-limited the way real engines
   bound decompression bombs.

A verdict reports every detection with the responsible signature name and
where in the member tree it fired.

Two fast paths keep ecosystem-scale campaigns cheap, because the paper's
workload is extremely duplicate-heavy (a handful of malware instances
dominate most responses):

* pattern signatures are compiled once into a
  :class:`~repro.scanner.matcher.MultiPatternMatcher` (single-pass
  instead of one substring search per signature);
* verdicts are cached in a bounded LRU keyed by the blob's sha1 URN --
  byte-identical content scans once.  The cache and the compiled
  matcher are both invalidated when the :class:`SignatureDatabase`
  changes (its ``version`` bumps on every ``add``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional

from ..files.payload import Blob
from ..telemetry.registry import MetricRegistry
from .database import SignatureDatabase
from .matcher import MultiPatternMatcher

__all__ = ["Detection", "ScanVerdict", "ScanEngine"]


@dataclass(frozen=True)
class Detection:
    """One signature firing."""

    signature_name: str
    location: str  # "/" for the top blob, "/0" for first member, etc.


@dataclass
class ScanVerdict:
    """Outcome of scanning one blob."""

    clean: bool
    detections: List[Detection] = field(default_factory=list)
    members_scanned: int = 0
    truncated: bool = False  # depth limit hit

    @property
    def primary_name(self) -> Optional[str]:
        """The first detection's name (what a UI would display)."""
        return self.detections[0].signature_name if self.detections else None

    def copy(self) -> "ScanVerdict":
        """Independent copy (cached verdicts hand these out)."""
        return ScanVerdict(clean=self.clean,
                           detections=list(self.detections),
                           members_scanned=self.members_scanned,
                           truncated=self.truncated)


class ScanEngine:
    """Scans blobs against a :class:`SignatureDatabase`."""

    def __init__(self, database: SignatureDatabase, max_depth: int = 4,
                 cache_size: int = 4096,
                 registry: Optional[MetricRegistry] = None) -> None:
        if max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {max_depth!r}")
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size!r}")
        self.database = database
        self.max_depth = max_depth
        self.cache_size = cache_size
        # counters live in a telemetry registry so campaign metrics and
        # the bench harness read one source of truth; a private registry
        # keeps engines outside a campaign isolated from each other
        self.registry = registry if registry is not None else MetricRegistry()
        cache_requests = self.registry.counter(
            "scanner_cache_requests_total",
            "scan() calls answered by the verdict cache vs scanned fresh.",
            labels=("outcome",))
        self._cache_hit_counter = cache_requests.labels("hit")
        self._cache_miss_counter = cache_requests.labels("miss")
        self._scans_counter = self.registry.counter(
            "scanner_scans_total",
            "Full scans actually executed (cache hits excluded).")
        self._detections_counter = self.registry.counter(
            "scanner_detections_total",
            "Signature firings across all fresh scans.")
        self._verdict_cache: "OrderedDict[str, ScanVerdict]" = OrderedDict()
        self._compiled_version: Optional[int] = None
        self._matcher: Optional[MultiPatternMatcher] = None
        self._pattern_signatures: List = []

    # -- counter compatibility ----------------------------------------------
    # PR 1's bench fields read these names; they are views over the
    # telemetry counters so the two can never drift apart.
    @property
    def scans_performed(self) -> int:
        """Full scans actually executed (cache hits don't count)."""
        return int(self._scans_counter.value)

    @property
    def cache_hits(self) -> int:
        """scan() calls answered from the verdict cache."""
        return int(self._cache_hit_counter.value)

    @property
    def cache_misses(self) -> int:
        """scan() calls that missed the verdict cache."""
        return int(self._cache_miss_counter.value)

    @property
    def scan_requests(self) -> int:
        """Total scan() calls, cached and uncached."""
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of scan requests answered from the verdict cache."""
        total = self.scan_requests
        return self.cache_hits / total if total else 0.0

    def _refresh_compiled(self) -> None:
        """(Re)compile the matcher and drop verdicts on database change."""
        version = self.database.version
        if version == self._compiled_version:
            return
        self._pattern_signatures = self.database.pattern_signatures()
        self._matcher = MultiPatternMatcher(
            [signature.pattern for signature in self._pattern_signatures])
        self._verdict_cache.clear()
        self._compiled_version = version

    def scan(self, blob: Blob) -> ScanVerdict:
        """Scan ``blob`` (recursing into members) and return the verdict."""
        self._refresh_compiled()

        key = blob.sha1_urn()
        cached = self._verdict_cache.get(key)
        if cached is not None:
            self._cache_hit_counter.inc()
            self._verdict_cache.move_to_end(key)
            return cached.copy()
        self._cache_miss_counter.inc()
        self._scans_counter.inc()

        verdict = ScanVerdict(clean=True)
        self._scan_node(blob, "/", 0, verdict)
        verdict.clean = not verdict.detections
        if verdict.detections:
            self._detections_counter.inc(len(verdict.detections))

        if self.cache_size:
            self._verdict_cache[key] = verdict.copy()
            while len(self._verdict_cache) > self.cache_size:
                self._verdict_cache.popitem(last=False)
        return verdict

    def _scan_node(self, blob: Blob, location: str, depth: int,
                   verdict: ScanVerdict) -> None:
        verdict.members_scanned += 1

        hash_hit = self.database.match_hash(blob.sha1_urn())
        if hash_hit is not None:
            verdict.detections.append(
                Detection(signature_name=hash_hit.name, location=location))

        assert self._matcher is not None  # scan() compiled before recursing
        hits = self._matcher.match(blob.scan_body())
        for index in sorted(hits):
            verdict.detections.append(
                Detection(signature_name=self._pattern_signatures[index].name,
                          location=location))

        if blob.members:
            if depth >= self.max_depth:
                verdict.truncated = True
                return
            for index, member in enumerate(blob.members):
                child_location = f"{location.rstrip('/')}/{index}"
                self._scan_node(member, child_location, depth + 1, verdict)
