"""The scan engine: blob in, verdict out.

The pipeline mirrors an AV scan of a downloaded file:

1. exact-hash lookup on the content identity;
2. byte-pattern search over the body (our sparse blobs expose embedded
   markers, and the header bytes are also searched so header-based
   signatures would work);
3. recursion into archive members, depth-limited the way real engines
   bound decompression bombs.

A verdict reports every detection with the responsible signature name and
where in the member tree it fired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..files.payload import Blob
from .database import SignatureDatabase

__all__ = ["Detection", "ScanVerdict", "ScanEngine"]


@dataclass(frozen=True)
class Detection:
    """One signature firing."""

    signature_name: str
    location: str  # "/" for the top blob, "/0" for first member, etc.


@dataclass
class ScanVerdict:
    """Outcome of scanning one blob."""

    clean: bool
    detections: List[Detection] = field(default_factory=list)
    members_scanned: int = 0
    truncated: bool = False  # depth limit hit

    @property
    def primary_name(self) -> Optional[str]:
        """The first detection's name (what a UI would display)."""
        return self.detections[0].signature_name if self.detections else None


class ScanEngine:
    """Scans blobs against a :class:`SignatureDatabase`."""

    def __init__(self, database: SignatureDatabase,
                 max_depth: int = 4) -> None:
        if max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {max_depth!r}")
        self.database = database
        self.max_depth = max_depth
        self.scans_performed = 0

    def scan(self, blob: Blob) -> ScanVerdict:
        """Scan ``blob`` (recursing into members) and return the verdict."""
        self.scans_performed += 1
        verdict = ScanVerdict(clean=True)
        self._scan_node(blob, "/", 0, verdict)
        verdict.clean = not verdict.detections
        return verdict

    def _scan_node(self, blob: Blob, location: str, depth: int,
                   verdict: ScanVerdict) -> None:
        verdict.members_scanned += 1

        hash_hit = self.database.match_hash(blob.sha1_urn())
        if hash_hit is not None:
            verdict.detections.append(
                Detection(signature_name=hash_hit.name, location=location))

        body = b"|".join(blob.markers) + b"#" + blob.header()
        for signature in self.database.pattern_signatures():
            assert signature.pattern is not None
            if signature.pattern in body:
                verdict.detections.append(
                    Detection(signature_name=signature.name,
                              location=location))

        if blob.members:
            if depth >= self.max_depth:
                verdict.truncated = True
                return
            for index, member in enumerate(blob.members):
                child_location = f"{location.rstrip('/')}/{index}"
                self._scan_node(member, child_location, depth + 1, verdict)
