"""Signature definitions for the simulated AV scanner.

Two signature kinds mirror real engines:

* **pattern** signatures match a byte string anywhere in the file body
  (our sparse payloads expose embedded markers for this);
* **hash** signatures match an exact content identity (urn:sha1), the way
  blocklists and Limewire's own junk filter worked.

Each signature carries the AV-style detection name reported in verdicts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["SignatureKind", "Signature"]


class SignatureKind(enum.Enum):
    """How a signature matches."""

    PATTERN = "pattern"
    HASH = "hash"


@dataclass(frozen=True)
class Signature:
    """One detection rule."""

    name: str
    kind: SignatureKind
    pattern: Optional[bytes] = None
    sha1_urn: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind is SignatureKind.PATTERN and not self.pattern:
            raise ValueError(f"pattern signature {self.name!r} needs bytes")
        if self.kind is SignatureKind.HASH and not self.sha1_urn:
            raise ValueError(f"hash signature {self.name!r} needs a urn")

    @staticmethod
    def for_pattern(name: str, pattern: bytes) -> "Signature":
        """Build a byte-pattern signature."""
        return Signature(name=name, kind=SignatureKind.PATTERN,
                         pattern=pattern)

    @staticmethod
    def for_hash(name: str, sha1_urn: str) -> "Signature":
        """Build an exact-content signature."""
        return Signature(name=name, kind=SignatureKind.HASH,
                         sha1_urn=sha1_urn)
