"""``repro-study selfcheck``: prove the determinism contract end to end.

For every seed it runs the same campaign **twice** with (a) the runtime
sanitizer armed, so any forbidden entropy source aborts the run, and
(b) an :class:`~repro.devtools.sanitizer.EventDigest` attached to the
kernel, reducing each run's full event stream to one sha256.  The two
runs must produce identical digests and identical headline metrics;
digests across *different* seeds must differ (a constant digest would
mean the hook is dead).  Finally it proves the tripwires themselves
work by injecting a bare ``random.random()`` under the sanitizer and
demanding the :class:`EntropyViolation`.

This is the runtime counterpart of ``repro-study lint``: the linter
says the code *cannot* misbehave, the selfcheck shows one concrete
campaign actually *did not*.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.experiments import HEADLINE_METRICS
from ..core.measure.campaign import (CampaignConfig, run_limewire_campaign,
                                     run_openft_campaign)
from ..simnet import fastpath
from ..telemetry.runtime import CampaignTelemetry
from .sanitizer import (DeterminismSanitizer, EntropyViolation, EventDigest,
                        LockOrderRecorder)

__all__ = ["SeedCheck", "SelfcheckReport", "EquivalenceCheck",
           "ShardEquivalenceCheck", "LockOrderReport", "run_digest_campaign",
           "run_equivalence_check", "run_shard_equivalence_check",
           "run_lock_order_check", "run_selfcheck"]


@dataclass(frozen=True)
class SeedCheck:
    """Twin-run comparison for one seed."""

    network: str
    seed: int
    digest_first: str
    digest_second: str
    events: int
    metrics_first: Dict[str, float]
    metrics_second: Dict[str, float]

    @property
    def digests_match(self) -> bool:
        return self.digest_first == self.digest_second

    @property
    def metrics_match(self) -> bool:
        return self.metrics_first == self.metrics_second

    @property
    def ok(self) -> bool:
        return self.digests_match and self.metrics_match


@dataclass(frozen=True)
class SelfcheckReport:
    """Everything ``repro-study selfcheck`` asserts, as data."""

    checks: Tuple[SeedCheck, ...]
    cross_seed_distinct: bool
    sanitizer_armed: bool  # the injected random.random() was caught

    @property
    def ok(self) -> bool:
        return (all(check.ok for check in self.checks)
                and self.cross_seed_distinct and self.sanitizer_armed)

    def render(self) -> str:
        lines = []
        for check in self.checks:
            verdict = "OK" if check.ok else "MISMATCH"
            lines.append(
                f"seed {check.seed:>3d} ({check.network}): "
                f"{check.events} events, digest "
                f"{check.digest_first[:16]}... x2 -> {verdict}")
            if not check.digests_match:
                lines.append(f"    second run digest: "
                             f"{check.digest_second[:16]}...")
            if not check.metrics_match:
                lines.append(f"    metrics diverged: "
                             f"{check.metrics_first} != "
                             f"{check.metrics_second}")
        lines.append("cross-seed digests distinct: "
                     + ("yes" if self.cross_seed_distinct else
                        "NO (digest hook looks dead)"))
        lines.append("sanitizer tripwire test: "
                     + ("caught injected random.random()"
                        if self.sanitizer_armed else
                        "FAILED to catch injected random.random()"))
        lines.append("selfcheck: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def _digest_campaign(network: str, seed: int, days: float, scale: float,
                     sanitize: bool,
                     ) -> Tuple[str, int, Dict[str, float], str]:
    """One digested campaign; returns (digest, events, metrics, store sha)."""
    if network == "limewire":
        runner = run_limewire_campaign
        from ..peers.profiles import GnutellaProfile
        profile = GnutellaProfile().scaled(scale)
    elif network == "openft":
        runner = run_openft_campaign
        from ..peers.profiles import OpenFTProfile
        profile = OpenFTProfile().scaled(scale)
    else:
        raise ValueError(f"unknown network {network!r}")
    digest = EventDigest()
    telemetry = CampaignTelemetry()
    telemetry.kernel.on_event = digest.on_event  # per-event kernel hook
    config = CampaignConfig(seed=seed, duration_days=days)
    if sanitize:
        with DeterminismSanitizer(mode="raise"):
            result = runner(config, profile=profile, telemetry=telemetry)
    else:
        result = runner(config, profile=profile, telemetry=telemetry)
    metrics = {name: fn(result)
               for name, fn in HEADLINE_METRICS[network].items()}
    return (digest.hexdigest(), digest.events, metrics,
            result.store.content_digest())


def run_digest_campaign(network: str, seed: int, days: float = 0.1,
                        scale: float = 0.35, sanitize: bool = True,
                        ) -> Tuple[str, int, Dict[str, float]]:
    """One campaign with digest attached; returns (digest, events, metrics).

    The digest rides the telemetry slot: a stock
    :class:`CampaignTelemetry` bundle is built (no journal) and the
    per-event hook is bound onto its kernel instrumentation, so the
    check exercises the same instrumented kernel loop production
    telemetry uses.
    """
    digest, events, metrics, _store_sha = _digest_campaign(
        network, seed, days, scale, sanitize)
    return digest, events, metrics


@dataclass(frozen=True)
class EquivalenceCheck:
    """Fast-path vs reference-path comparison for one (network, seed).

    The reference run replays the same campaign with
    :mod:`repro.simnet.fastpath` switched to the slow twins -- per-send
    re-encode, eager body decode, closure-scheduled deliveries -- so a
    match proves the data-plane fast path is behaviour-preserving down
    to the event stream and the collected measurement bytes.
    """

    network: str
    seed: int
    fast_digest: str
    slow_digest: str
    fast_store_sha256: str
    slow_store_sha256: str
    events: int
    metrics_fast: Dict[str, float]
    metrics_slow: Dict[str, float]

    @property
    def ok(self) -> bool:
        return (self.fast_digest == self.slow_digest
                and self.fast_store_sha256 == self.slow_store_sha256
                and self.metrics_fast == self.metrics_slow)

    def render(self) -> str:
        verdict = "OK" if self.ok else "DIVERGED"
        lines = [f"seed {self.seed:>3d} ({self.network}): {self.events} "
                 f"events, fast == reference -> {verdict}"]
        if self.fast_digest != self.slow_digest:
            lines.append(f"    event digests: {self.fast_digest[:16]}... "
                         f"!= {self.slow_digest[:16]}...")
        if self.fast_store_sha256 != self.slow_store_sha256:
            lines.append(f"    store sha256: "
                         f"{self.fast_store_sha256[:16]}... != "
                         f"{self.slow_store_sha256[:16]}...")
        if self.metrics_fast != self.metrics_slow:
            lines.append(f"    metrics diverged: {self.metrics_fast} != "
                         f"{self.metrics_slow}")
        return "\n".join(lines)


def run_equivalence_check(network: str, seed: int, days: float = 0.1,
                          scale: float = 0.35,
                          sanitize: bool = True) -> EquivalenceCheck:
    """Run one campaign on both data planes and compare everything."""
    fast = _digest_campaign(network, seed, days, scale, sanitize)
    previous = fastpath.set_slow_path(True)
    try:
        slow = _digest_campaign(network, seed, days, scale, sanitize)
    finally:
        fastpath.set_slow_path(previous)
    return EquivalenceCheck(
        network=network, seed=seed,
        fast_digest=fast[0], slow_digest=slow[0],
        fast_store_sha256=fast[3], slow_store_sha256=slow[3],
        events=fast[1], metrics_fast=fast[2], metrics_slow=slow[2])


def _scaled_profile(network: str, scale: float):
    if network == "limewire":
        from ..peers.profiles import GnutellaProfile
        return GnutellaProfile().scaled(scale)
    if network == "openft":
        from ..peers.profiles import OpenFTProfile
        return OpenFTProfile().scaled(scale)
    raise ValueError(f"unknown network {network!r}")


def _sharded_campaign(network: str, seed: int, days: float, scale: float,
                      shards: int = 1, force_windows: bool = False,
                      with_telemetry: bool = True, sanitize: bool = True,
                      ) -> Tuple[Optional[str], Dict[str, float], str, int]:
    """One serial sharded campaign.

    Returns ``(digest, metrics, store sha, windows)``; the digest is
    None on the telemetry-less legs (matching the plain runner, whose
    kernel is uninstrumented without telemetry).
    """
    from ..core.sharded import run_sharded_campaign

    profile = _scaled_profile(network, scale)
    config = CampaignConfig(seed=seed, duration_days=days, shards=shards)
    telemetry = CampaignTelemetry() if with_telemetry else None
    kwargs = dict(profile=profile, telemetry=telemetry, executor="serial",
                  collect_digest=with_telemetry,
                  force_windows=force_windows)
    if sanitize:
        with DeterminismSanitizer(mode="raise"):
            result = run_sharded_campaign(network, config, **kwargs)
    else:
        result = run_sharded_campaign(network, config, **kwargs)
    metrics = {name: fn(result)
               for name, fn in HEADLINE_METRICS[network].items()}
    return (result.shards.digest, metrics, result.store.content_digest(),
            result.shards.windows)


@dataclass(frozen=True)
class ShardEquivalenceCheck:
    """Sharded-kernel determinism evidence for one (network, seed).

    Three claims, each checked directly:

    * ``shards=1`` is bit-identical to the plain kernel -- event digest,
      store sha256 and headline metrics all match, with telemetry on
      *and* off;
    * the window loop itself preserves that identity -- a ``shards=1``
      run forced through the full conservative-window machinery
      (``force_windows``) still matches the plain digest exactly;
    * N-shard results are invariant in N -- the ``MeasurementStore``
      content digests of the two N-shard legs (default N=2 and N=3)
      are identical.
    """

    network: str
    seed: int
    plain_digest: str
    single_digest: str
    windowed_digest: str
    plain_store_sha256: str
    single_store_sha256: str
    windowed_store_sha256: str
    bare_plain_store_sha256: str
    bare_single_store_sha256: str
    nshard_store_sha256: str
    nshard_alt_store_sha256: str
    nshards: Tuple[int, int]
    windows: int
    metrics_plain: Dict[str, float]
    metrics_single: Dict[str, float]
    metrics_nshard: Dict[str, float]

    @property
    def single_shard_identical(self) -> bool:
        return (self.plain_digest == self.single_digest == self.windowed_digest
                and self.plain_store_sha256 == self.single_store_sha256
                == self.windowed_store_sha256
                and self.bare_plain_store_sha256
                == self.bare_single_store_sha256
                and self.metrics_plain == self.metrics_single)

    @property
    def n_invariant(self) -> bool:
        return self.nshard_store_sha256 == self.nshard_alt_store_sha256

    @property
    def ok(self) -> bool:
        return self.single_shard_identical and self.n_invariant

    def render(self) -> str:
        verdict = "OK" if self.ok else "DIVERGED"
        lines = [f"seed {self.seed:>3d} ({self.network}): sharded kernel "
                 f"-> {verdict}",
                 f"    shards=1 == plain: "
                 + ("yes" if self.single_shard_identical else "NO"),
                 f"    windowed shards=1 ({self.windows} windows) digest: "
                 f"{self.windowed_digest[:16]}...",
                 f"    shards={self.nshards[0]} vs shards={self.nshards[1]} "
                 f"stores: "
                 + ("identical" if self.n_invariant else
                    f"DIFFER ({self.nshard_store_sha256[:16]}... != "
                    f"{self.nshard_alt_store_sha256[:16]}...)")]
        if self.plain_digest != self.single_digest:
            lines.append(f"    digests: plain {self.plain_digest[:16]}... "
                         f"!= shards=1 {self.single_digest[:16]}...")
        if self.metrics_plain != self.metrics_single:
            lines.append(f"    metrics diverged: {self.metrics_plain} != "
                         f"{self.metrics_single}")
        return "\n".join(lines)


def run_shard_equivalence_check(network: str, seed: int, days: float = 0.05,
                                scale: float = 0.35, sanitize: bool = True,
                                nshards: Tuple[int, int] = (2, 3),
                                ) -> ShardEquivalenceCheck:
    """Prove the sharded kernel's determinism contract for one seed."""
    plain = _digest_campaign(network, seed, days, scale, sanitize)
    single = _sharded_campaign(network, seed, days, scale, shards=1,
                               sanitize=sanitize)
    windowed = _sharded_campaign(network, seed, days, scale, shards=1,
                                 force_windows=True, sanitize=sanitize)

    profile = _scaled_profile(network, scale)
    config = CampaignConfig(seed=seed, duration_days=days)
    runner = (run_limewire_campaign if network == "limewire"
              else run_openft_campaign)
    bare_plain = runner(config, profile=profile).store.content_digest()
    bare_single = _sharded_campaign(network, seed, days, scale, shards=1,
                                    with_telemetry=False, sanitize=False)

    nshard = _sharded_campaign(network, seed, days, scale,
                               shards=nshards[0], sanitize=sanitize)
    nshard_alt = _sharded_campaign(network, seed, days, scale,
                                   shards=nshards[1], sanitize=sanitize)
    return ShardEquivalenceCheck(
        network=network, seed=seed,
        plain_digest=plain[0], single_digest=single[0],
        windowed_digest=windowed[0],
        plain_store_sha256=plain[3], single_store_sha256=single[2],
        windowed_store_sha256=windowed[2],
        bare_plain_store_sha256=bare_plain,
        bare_single_store_sha256=bare_single[2],
        nshard_store_sha256=nshard[2],
        nshard_alt_store_sha256=nshard_alt[2],
        nshards=nshards, windows=windowed[3],
        metrics_plain=plain[2], metrics_single=single[1],
        metrics_nshard=nshard[1])


def _probe_sanitizer() -> bool:
    """Does the armed sanitizer actually catch a bare random draw?"""
    try:
        with DeterminismSanitizer(mode="raise"):
            random.random()  # the deliberate injection
    except EntropyViolation:
        return True
    return False


def run_selfcheck(network: str = "limewire",
                  seeds: Optional[Sequence[int]] = None,
                  days: float = 0.1, scale: float = 0.35,
                  sanitize: bool = True) -> SelfcheckReport:
    """Run the full determinism selfcheck; see the module docstring."""
    seeds = tuple(seeds) if seeds else (1, 2)
    checks: List[SeedCheck] = []
    for seed in seeds:
        digest_a, events_a, metrics_a = run_digest_campaign(
            network, seed, days=days, scale=scale, sanitize=sanitize)
        digest_b, _events_b, metrics_b = run_digest_campaign(
            network, seed, days=days, scale=scale, sanitize=sanitize)
        checks.append(SeedCheck(
            network=network, seed=seed, digest_first=digest_a,
            digest_second=digest_b, events=events_a,
            metrics_first=metrics_a, metrics_second=metrics_b))
    first_digests = {check.digest_first for check in checks}
    cross_distinct = len(first_digests) == len(checks)
    return SelfcheckReport(checks=tuple(checks),
                           cross_seed_distinct=cross_distinct,
                           sanitizer_armed=_probe_sanitizer())


@dataclass(frozen=True)
class LockOrderReport:
    """Result of the runtime lock-order check (``selfcheck --lock-order``)."""

    network: str
    seed: int
    locks_tracked: int
    edge_count: int
    scrapes: int
    cycles: Tuple[Tuple[str, ...], ...]
    detail: str

    @property
    def ok(self) -> bool:
        # zero tracked locks would mean the recorder never saw the
        # telemetry plane get built -- that is a broken check, not a pass
        return self.locks_tracked > 0 and self.scrapes > 0 \
            and not self.cycles

    def render(self) -> str:
        lines = [f"lock-order check ({self.network}, seed {self.seed}): "
                 f"{self.scrapes} live scrapes during the campaign",
                 self.detail,
                 "lock-order: " + ("PASS" if self.ok else "FAIL")]
        return "\n".join(lines)


def run_lock_order_check(network: str = "limewire", seed: int = 1,
                         days: float = 0.05,
                         scale: float = 0.35) -> LockOrderReport:
    """Record every lock acquisition while scraping a live campaign.

    The runtime counterpart of detlint's static CONC002 pass: under a
    :class:`LockOrderRecorder`, build the full telemetry plane (hub +
    HTTP server), hammer it from a scrape thread over real HTTP while
    an instrumented campaign runs on the mainline, and fail on any
    cycle in the observed lock-acquisition graph.
    """
    from urllib.error import URLError
    from urllib.request import urlopen

    from ..telemetry.httpd import ObservatoryHub, TelemetryServer

    if network == "limewire":
        runner = run_limewire_campaign
        from ..peers.profiles import GnutellaProfile
        profile = GnutellaProfile().scaled(scale)
    elif network == "openft":
        runner = run_openft_campaign
        from ..peers.profiles import OpenFTProfile
        profile = OpenFTProfile().scaled(scale)
    else:
        raise ValueError(f"unknown network {network!r}")

    scrapes = [0]
    with LockOrderRecorder() as recorder:
        hub = ObservatoryHub(title="lock-order selfcheck")
        telemetry = CampaignTelemetry()
        hub.add_campaign(network, telemetry)
        server = TelemetryServer(hub).start()
        url = server.url
        stop = threading.Event()

        def scrape() -> None:
            while not stop.is_set():
                for endpoint in ("/metrics", "/healthz", "/snapshot.json"):
                    try:
                        with urlopen(url + endpoint, timeout=1) as response:
                            response.read()
                        scrapes[0] += 1
                    except (OSError, URLError):  # pragma: no cover
                        pass

        scraper = threading.Thread(target=scrape, name="lock-order-scraper",
                                   daemon=True)
        scraper.start()
        try:
            config = CampaignConfig(seed=seed, duration_days=days)
            runner(config, profile=profile, telemetry=telemetry)
        finally:
            stop.set()
            scraper.join(timeout=5.0)
            server.stop()
    return LockOrderReport(
        network=network, seed=seed, locks_tracked=recorder.locks_created,
        edge_count=len(recorder.edges), scrapes=scrapes[0],
        cycles=tuple(recorder.cycles()), detail=recorder.render())
