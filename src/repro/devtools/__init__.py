"""Developer tooling: the determinism & layering enforcement layer.

Everything under ``repro.devtools`` exists to keep the *measurement
infrastructure* trustworthy rather than to produce measurements:

* :mod:`repro.devtools.detlint` -- an AST-based static-analysis pass
  (``repro-study lint``) that turns determinism hazards (bare
  ``random.*``, wall-clock reads, unordered ``set`` iteration feeding
  the scheduler, ``hash()``-of-str ordering, ambient entropy) and
  layering violations into CI failures;
* :mod:`repro.devtools.sanitizer` -- a runtime twin of the linter: a
  context manager that patches forbidden entropy sources to raise (or
  record) during a campaign, and an event-stream digest that reduces a
  whole run to one comparable hash;
* :mod:`repro.devtools.selfcheck` -- the ``repro-study selfcheck``
  driver proving same-seed runs replay bit-identically with the
  sanitizer armed.

This package is *dev tooling*, not simulation code: it deliberately
names and patches the very entropy sources the linter bans, so it is
excluded from the lint walk (see ``[tool.detlint] exclude`` in
``pyproject.toml``).  Nothing below ``core`` may import it at module
level; ``core`` may defer-import the sanitizer for the opt-in
``run_replications(sanitize=True)`` path (a declared deferred edge).
"""

from .detlint import Finding, LintResult, lint_repo
from .sanitizer import (DeterminismSanitizer, EntropyViolation, EventDigest,
                        digest_telemetry)

__all__ = [
    "Finding", "LintResult", "lint_repo",
    "DeterminismSanitizer", "EntropyViolation", "EventDigest",
    "digest_telemetry",
]
