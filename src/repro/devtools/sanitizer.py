"""Runtime determinism sanitizer: catch at runtime what detlint checks
statically.

Two complementary tools:

* :class:`DeterminismSanitizer` -- a context manager that patches the
  forbidden entropy sources (module-level ``random.*`` draws,
  ``time.time``, ``os.urandom``, ``uuid.uuid1/uuid4``) to either raise
  :class:`EntropyViolation` (``mode="raise"``) or record the offending
  call site and pass through (``mode="record"``).  Named streams are
  untouched: :class:`repro.simnet.rng.SeededStream` owns private
  ``random.Random`` instances whose bound methods do not go through the
  patched module functions.  ``time.perf_counter`` is deliberately NOT
  patched -- the telemetry layer's sampled wall-time observation (the
  DET002 baseline whitelist) must keep working under the sanitizer.

* :class:`EventDigest` -- a sha256 over ``(time, label, seq)`` of every
  kernel event executed, fed through the simulator's telemetry slot
  (the kernel calls ``telemetry.on_event(time, label)`` when the hook
  exists).  Two same-seed campaigns are bit-identical iff their event
  streams are; the digest reduces that comparison to one hash, which is
  what ``repro-study selfcheck`` and the CI determinism gate compare.

The sanitizer patches *hot* global entry points; keep it OFF in
benchmark legs (see ``scripts/bench_compare.py``): a patched
``random.random`` adds a wrapper frame to any code under test, and the
digest adds per-event work.
"""

from __future__ import annotations

import hashlib
import os
import random
import struct
import time
import traceback
import uuid
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["EntropyViolation", "Violation", "DeterminismSanitizer",
           "EventDigest", "DigestTelemetry", "digest_telemetry"]


class EntropyViolation(RuntimeError):
    """A forbidden entropy source was used while the sanitizer was armed."""


@dataclass(frozen=True)
class Violation:
    """One recorded use of a forbidden entropy source."""

    source: str  # e.g. "random.random"
    filename: str
    lineno: int
    function: str

    def render(self) -> str:
        return (f"{self.source}() called from "
                f"{self.filename}:{self.lineno} in {self.function}()")


#: (module object, attribute) pairs the sanitizer replaces.  Bound
#: methods of private ``random.Random`` instances (named streams) and
#: ``time.perf_counter`` (telemetry sampling whitelist) stay live.
def _patch_targets() -> List[Tuple[object, str]]:
    targets: List[Tuple[object, str]] = [
        (time, "time"),
        (os, "urandom"),
        (uuid, "uuid1"),
        (uuid, "uuid4"),
    ]
    for name in ("random", "uniform", "randint", "randrange", "choice",
                 "choices", "sample", "shuffle", "gauss", "normalvariate",
                 "lognormvariate", "expovariate", "betavariate",
                 "gammavariate", "paretovariate", "vonmisesvariate",
                 "weibullvariate", "triangular", "getrandbits", "randbytes",
                 "seed"):
        if hasattr(random, name):
            targets.append((random, name))
    return targets


class DeterminismSanitizer:
    """Arm the entropy tripwires for the duration of a ``with`` block.

    >>> with DeterminismSanitizer() as sanitizer:
    ...     random.random()          # raises EntropyViolation
    >>> with DeterminismSanitizer(mode="record") as sanitizer:
    ...     random.random()          # works, but is recorded
    >>> sanitizer.violations         # [Violation(source='random.random', ...)]

    Re-entrant use raises: nesting two sanitizers would record the
    outer one's wrappers as originals and unpatch to the wrong state.
    """

    _armed = False  # class-level: one sanitizer per process at a time

    def __init__(self, mode: str = "raise") -> None:
        if mode not in ("raise", "record"):
            raise ValueError(f"mode must be 'raise' or 'record', got {mode!r}")
        self.mode = mode
        self.violations: List[Violation] = []
        self._saved: List[Tuple[object, str, Callable]] = []

    # -- bookkeeping ------------------------------------------------------
    def _note(self, source: str, original: Callable, args, kwargs):
        frame = traceback.extract_stack(limit=3)[0]
        violation = Violation(source=source, filename=frame.filename,
                              lineno=frame.lineno or 0,
                              function=frame.name)
        if self.mode == "raise":
            raise EntropyViolation(
                f"forbidden entropy source {violation.render()} -- "
                "simulation code must draw from Simulator.stream(name)")
        self.violations.append(violation)
        return original(*args, **kwargs)

    def _wrap(self, module: object, name: str) -> Callable:
        original = getattr(module, name)
        source = f"{getattr(module, '__name__', module)}.{name}"

        def tripwire(*args, **kwargs):
            return self._note(source, original, args, kwargs)

        tripwire.__name__ = f"sanitized_{name}"
        tripwire.__wrapped__ = original
        return tripwire

    # -- context protocol -------------------------------------------------
    def __enter__(self) -> "DeterminismSanitizer":
        if DeterminismSanitizer._armed:
            raise RuntimeError("a DeterminismSanitizer is already armed in "
                               "this process")
        DeterminismSanitizer._armed = True
        try:
            for module, name in _patch_targets():
                original = getattr(module, name)
                self._saved.append((module, name, original))
                setattr(module, name, self._wrap(module, name))
        except Exception:
            self._restore()
            raise
        return self

    def __exit__(self, *exc_info) -> None:
        self._restore()

    def _restore(self) -> None:
        for module, name, original in self._saved:
            setattr(module, name, original)
        self._saved.clear()
        DeterminismSanitizer._armed = False


class EventDigest:
    """Order-sensitive sha256 of the executed event stream.

    Each event contributes ``(virtual time, label, sequence number)``;
    the sequence number makes re-ordered but otherwise identical event
    sets distinguishable.  Equal digests => the kernels executed the
    same events at the same virtual times in the same order, which is
    the reproduction's definition of "the same run".
    """

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self.events = 0

    def on_event(self, time: float, label: str) -> None:
        """Fold one executed kernel event into the digest."""
        self._hash.update(struct.pack("<d", time))
        self._hash.update(label.encode("utf-8"))
        self._hash.update(struct.pack("<Q", self.events))
        self.events += 1

    def hexdigest(self) -> str:
        """Digest so far (the stream can keep growing afterwards)."""
        return self._hash.hexdigest()


class DigestTelemetry:
    """Minimal kernel-telemetry duck type that only computes the digest.

    Satisfies the contract :class:`repro.simnet.kernel.Simulator`
    expects of its ``telemetry=`` slot (``label_counts`` /
    ``sample_every`` / ``since_sample`` / ``observe_callback`` /
    ``flush``) plus the optional per-event ``on_event`` hook, without
    dragging in a registry.  Use :func:`digest_telemetry` to build one.
    """

    def __init__(self, digest: Optional[EventDigest] = None) -> None:
        self.digest = digest if digest is not None else EventDigest()
        self.label_counts: Dict[str, int] = {}
        # effectively never sample: no perf_counter reads, no histograms
        self.sample_every = 1 << 62
        self.since_sample = 0

    def on_event(self, time: float, label: str) -> None:
        self.digest.on_event(time, label)

    def observe_callback(self, label: str, seconds: float) -> None:
        pass  # pragma: no cover - sampling is disabled above

    def flush(self, sim) -> None:
        pass

    def hexdigest(self) -> str:
        return self.digest.hexdigest()


def digest_telemetry() -> DigestTelemetry:
    """A fresh digest-only telemetry object for ``Simulator(telemetry=)``."""
    return DigestTelemetry()
