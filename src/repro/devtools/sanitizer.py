"""Runtime determinism sanitizer: catch at runtime what detlint checks
statically.

Two complementary tools:

* :class:`DeterminismSanitizer` -- a context manager that patches the
  forbidden entropy sources (module-level ``random.*`` draws,
  ``time.time``, ``os.urandom``, ``uuid.uuid1/uuid4``) to either raise
  :class:`EntropyViolation` (``mode="raise"``) or record the offending
  call site and pass through (``mode="record"``).  Named streams are
  untouched: :class:`repro.simnet.rng.SeededStream` owns private
  ``random.Random`` instances whose bound methods do not go through the
  patched module functions.  ``time.perf_counter`` is deliberately NOT
  patched -- the telemetry layer's sampled wall-time observation (the
  DET002 baseline whitelist) must keep working under the sanitizer.

* :class:`EventDigest` -- a sha256 over ``(time, label, seq)`` of every
  kernel event executed, fed through the simulator's telemetry slot
  (the kernel calls ``telemetry.on_event(time, label)`` when the hook
  exists).  Two same-seed campaigns are bit-identical iff their event
  streams are; the digest reduces that comparison to one hash, which is
  what ``repro-study selfcheck`` and the CI determinism gate compare.

The sanitizer patches *hot* global entry points; keep it OFF in
benchmark legs (see ``scripts/bench_compare.py``): a patched
``random.random`` adds a wrapper frame to any code under test, and the
digest adds per-event work.
"""

from __future__ import annotations

import hashlib
import os
import random
import struct
import threading
import time
import traceback
import uuid
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

__all__ = ["EntropyViolation", "Violation", "DeterminismSanitizer",
           "EventDigest", "DigestTelemetry", "digest_telemetry",
           "LockOrderRecorder"]


class EntropyViolation(RuntimeError):
    """A forbidden entropy source was used while the sanitizer was armed."""


@dataclass(frozen=True)
class Violation:
    """One recorded use of a forbidden entropy source."""

    source: str  # e.g. "random.random"
    filename: str
    lineno: int
    function: str

    def render(self) -> str:
        return (f"{self.source}() called from "
                f"{self.filename}:{self.lineno} in {self.function}()")


#: (module object, attribute) pairs the sanitizer replaces.  Bound
#: methods of private ``random.Random`` instances (named streams) and
#: ``time.perf_counter`` (telemetry sampling whitelist) stay live.
def _patch_targets() -> List[Tuple[object, str]]:
    targets: List[Tuple[object, str]] = [
        (time, "time"),
        (os, "urandom"),
        (uuid, "uuid1"),
        (uuid, "uuid4"),
    ]
    for name in ("random", "uniform", "randint", "randrange", "choice",
                 "choices", "sample", "shuffle", "gauss", "normalvariate",
                 "lognormvariate", "expovariate", "betavariate",
                 "gammavariate", "paretovariate", "vonmisesvariate",
                 "weibullvariate", "triangular", "getrandbits", "randbytes",
                 "seed"):
        if hasattr(random, name):
            targets.append((random, name))
    return targets


class DeterminismSanitizer:
    """Arm the entropy tripwires for the duration of a ``with`` block.

    >>> with DeterminismSanitizer() as sanitizer:
    ...     random.random()          # raises EntropyViolation
    >>> with DeterminismSanitizer(mode="record") as sanitizer:
    ...     random.random()          # works, but is recorded
    >>> sanitizer.violations         # [Violation(source='random.random', ...)]

    Re-entrant use raises: nesting two sanitizers would record the
    outer one's wrappers as originals and unpatch to the wrong state.
    """

    _armed = False  # class-level: one sanitizer per process at a time

    def __init__(self, mode: str = "raise") -> None:
        if mode not in ("raise", "record"):
            raise ValueError(f"mode must be 'raise' or 'record', got {mode!r}")
        self.mode = mode
        self.violations: List[Violation] = []
        self._saved: List[Tuple[object, str, Callable]] = []

    # -- bookkeeping ------------------------------------------------------
    def _note(self, source: str, original: Callable, args, kwargs):
        frame = traceback.extract_stack(limit=3)[0]
        violation = Violation(source=source, filename=frame.filename,
                              lineno=frame.lineno or 0,
                              function=frame.name)
        if self.mode == "raise":
            raise EntropyViolation(
                f"forbidden entropy source {violation.render()} -- "
                "simulation code must draw from Simulator.stream(name)")
        self.violations.append(violation)
        return original(*args, **kwargs)

    def _wrap(self, module: object, name: str) -> Callable:
        original = getattr(module, name)
        source = f"{getattr(module, '__name__', module)}.{name}"

        def tripwire(*args, **kwargs):
            return self._note(source, original, args, kwargs)

        tripwire.__name__ = f"sanitized_{name}"
        tripwire.__wrapped__ = original
        return tripwire

    # -- context protocol -------------------------------------------------
    def __enter__(self) -> "DeterminismSanitizer":
        if DeterminismSanitizer._armed:
            raise RuntimeError("a DeterminismSanitizer is already armed in "
                               "this process")
        DeterminismSanitizer._armed = True
        try:
            for module, name in _patch_targets():
                original = getattr(module, name)
                self._saved.append((module, name, original))
                setattr(module, name, self._wrap(module, name))
        except Exception:
            self._restore()
            raise
        return self

    def __exit__(self, *exc_info) -> None:
        self._restore()

    def _restore(self) -> None:
        for module, name, original in self._saved:
            setattr(module, name, original)
        self._saved.clear()
        DeterminismSanitizer._armed = False


class EventDigest:
    """Order-sensitive sha256 of the executed event stream.

    Each event contributes ``(virtual time, label, sequence number)``;
    the sequence number makes re-ordered but otherwise identical event
    sets distinguishable.  Equal digests => the kernels executed the
    same events at the same virtual times in the same order, which is
    the reproduction's definition of "the same run".
    """

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self.events = 0

    def on_event(self, time: float, label: str) -> None:
        """Fold one executed kernel event into the digest."""
        self._hash.update(struct.pack("<d", time))
        self._hash.update(label.encode("utf-8"))
        self._hash.update(struct.pack("<Q", self.events))
        self.events += 1

    def hexdigest(self) -> str:
        """Digest so far (the stream can keep growing afterwards)."""
        return self._hash.hexdigest()


class DigestTelemetry:
    """Minimal kernel-telemetry duck type that only computes the digest.

    Satisfies the contract :class:`repro.simnet.kernel.Simulator`
    expects of its ``telemetry=`` slot (``label_counts`` /
    ``sample_every`` / ``since_sample`` / ``observe_callback`` /
    ``flush``) plus the optional per-event ``on_event`` hook, without
    dragging in a registry.  Use :func:`digest_telemetry` to build one.
    """

    def __init__(self, digest: Optional[EventDigest] = None) -> None:
        self.digest = digest if digest is not None else EventDigest()
        self.label_counts: Dict[str, int] = {}
        # effectively never sample: no perf_counter reads, no histograms
        self.sample_every = 1 << 62
        self.since_sample = 0

    def on_event(self, time: float, label: str) -> None:
        self.digest.on_event(time, label)

    def observe_callback(self, label: str, seconds: float) -> None:
        pass  # pragma: no cover - sampling is disabled above

    def flush(self, sim) -> None:
        pass

    def hexdigest(self) -> str:
        return self.digest.hexdigest()


def digest_telemetry() -> DigestTelemetry:
    """A fresh digest-only telemetry object for ``Simulator(telemetry=)``."""
    return DigestTelemetry()


# ---------------------------------------------------------------------------
# lock-order recording (the runtime half of detlint's CONC002)


class _RecordingLock:
    """A lock proxy that reports acquire/release to its recorder."""

    def __init__(self, inner, name: str,
                 recorder: "LockOrderRecorder") -> None:
        self._inner = inner
        self.name = name
        self._recorder = recorder

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._recorder._on_acquire(self)
        return got

    def release(self) -> None:
        self._recorder._on_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RecordingLock {self.name}>"


class LockOrderRecorder:
    """Record every lock-acquisition order and report cycles.

    The runtime counterpart of detlint's static CONC002 check: while
    armed, ``threading.Lock()``/``threading.RLock()`` return recording
    proxies named by their creation site.  Whenever a thread acquires
    lock *B* while holding lock *A*, the edge ``A -> B`` enters a
    process-wide acquisition graph; a cycle in that graph is a latent
    deadlock (two threads can each hold one lock of the cycle and wait
    forever for the next).

    Only locks created *while armed* are tracked, so arm the recorder
    before constructing the objects under test.  Like the sanitizer it
    is one-per-process and opt-in only -- every tracked acquisition
    pays a wrapper frame.

    >>> with LockOrderRecorder() as recorder:
    ...     a, b = threading.Lock(), threading.Lock()
    ...     with a:
    ...         with b: pass          # edge a -> b
    ...     with b:
    ...         with a: pass          # edge b -> a => cycle
    >>> recorder.cycles()             # [(a_site, b_site)]
    """

    _armed = False

    def __init__(self) -> None:
        self.locks_created = 0
        #: (holder site, acquired site) -> times observed
        self.edges: Dict[Tuple[str, str], int] = {}
        self._held = threading.local()
        # raw lock: the recorder must not record (or deadlock) itself
        self._graph_lock = threading.Lock()
        self._saved: List[Tuple[str, Callable]] = []

    # -- recording --------------------------------------------------------
    def _stack(self) -> List[_RecordingLock]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def _on_acquire(self, lock: _RecordingLock) -> None:
        stack = self._stack()
        if stack:
            edge = (stack[-1].name, lock.name)
            with self._graph_lock:
                self.edges[edge] = self.edges.get(edge, 0) + 1
        stack.append(lock)

    def _on_release(self, lock: _RecordingLock) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                return

    def _name_creation_site(self) -> str:
        # two frames up: _factory_wrapper's caller, i.e. Lock()'s caller
        frame = traceback.extract_stack(limit=3)[0]
        basename = frame.filename.rsplit("/", 1)[-1]
        return f"{basename}:{frame.lineno}"

    def _wrap_factory(self, original: Callable) -> Callable:
        def factory(*args, **kwargs):
            inner = original(*args, **kwargs)
            name = self._name_creation_site()
            self.locks_created += 1
            return _RecordingLock(inner, name, self)

        factory.__wrapped__ = original
        return factory

    # -- reporting --------------------------------------------------------
    def cycles(self) -> List[Tuple[str, ...]]:
        """Every elementary cycle in the acquisition graph (sorted)."""
        graph: Dict[str, Set[str]] = {}
        for src, dst in self.edges:
            if src != dst:  # re-entrant RLock self-edges are fine
                graph.setdefault(src, set()).add(dst)
        found: Set[Tuple[str, ...]] = set()

        def visit(node: str, path: List[str], on_path: Set[str]) -> None:
            for succ in sorted(graph.get(node, ())):
                if succ in on_path:
                    cycle = path[path.index(succ):]
                    # canonical rotation so each cycle reports once
                    pivot = cycle.index(min(cycle))
                    found.add(tuple(cycle[pivot:] + cycle[:pivot]))
                    continue
                path.append(succ)
                on_path.add(succ)
                visit(succ, path, on_path)
                on_path.discard(succ)
                path.pop()

        for start in sorted(graph):
            visit(start, [start], {start})
        return sorted(found)

    def render(self) -> str:
        lines = [f"lock-order: {self.locks_created} locks tracked, "
                 f"{len(self.edges)} distinct acquisition edges"]
        for (src, dst), count in sorted(self.edges.items()):
            lines.append(f"  {src} -> {dst}  (x{count})")
        cycles = self.cycles()
        if cycles:
            lines.append(f"CYCLES ({len(cycles)}) -- latent deadlock:")
            for cycle in cycles:
                lines.append("  " + " -> ".join(cycle + (cycle[0],)))
        else:
            lines.append("no cycles: every pair of locks is always taken "
                         "in the same order")
        return "\n".join(lines)

    # -- context protocol -------------------------------------------------
    def __enter__(self) -> "LockOrderRecorder":
        if LockOrderRecorder._armed:
            raise RuntimeError("a LockOrderRecorder is already armed in "
                               "this process")
        LockOrderRecorder._armed = True
        for name in ("Lock", "RLock"):
            original = getattr(threading, name)
            self._saved.append((name, original))
            setattr(threading, name, self._wrap_factory(original))
        return self

    def __exit__(self, *exc_info) -> None:
        for name, original in self._saved:
            setattr(threading, name, original)
        self._saved.clear()
        LockOrderRecorder._armed = False
