"""Content-addressed lint cache (``.detlint-cache/``).

The in-suite lint gate re-walks ~100 files on every ``pytest`` run;
almost none of them changed since the last run.  Per-file lint results
are a pure function of (file bytes, config, linter version), so they
memoize perfectly:

* the **key** is sha256 over a schema version, a digest of every
  config field that can change findings, the repo-relative path, and
  the file's raw bytes -- touch any of them and the entry misses;
* the **value** is the per-module findings plus the module's extracted
  import edges (the layer-DAG check is cross-file, so edges are cached
  per file and re-checked globally each run -- the check itself is
  cheap, the parse is not);
* entries are one JSON file each under ``<root>/.detlint-cache/``,
  written atomically (tmp + rename) so parallel runs can share a
  cache directory.

Cross-file passes that depend on *other* files' contents (the twin
registry) are never cached -- they re-run every time over the handful
of member modules.

The cache is an optimisation only: ``lint_repo(use_cache=True)`` must
produce byte-identical output to a cold run (asserted in tests), and
a corrupt or unreadable entry silently degrades to a re-lint.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .findings import Finding
from .layering import ImportEdge

__all__ = ["LintCache", "CACHE_DIR_NAME", "config_digest"]

#: bump when finding semantics change (new rules, changed messages)
_SCHEMA_VERSION = "detlint-cache-v1"

CACHE_DIR_NAME = ".detlint-cache"


def config_digest(config) -> str:
    """Digest of every config field that can change per-file findings."""
    payload = {
        "schema": _SCHEMA_VERSION,
        "package": config.package,
        "exclude": sorted(config.exclude),
        "rng_modules": sorted(config.rng_modules),
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class LintCache:
    """sha256-keyed store of per-file findings + import edges."""

    def __init__(self, root: Path, digest: str) -> None:
        self.directory = Path(root) / CACHE_DIR_NAME
        self.digest = digest
        self.hits = 0
        self.misses = 0

    def key(self, relpath: str, content: bytes) -> str:
        hasher = hashlib.sha256()
        hasher.update(self.digest.encode("ascii"))
        hasher.update(b"\x00")
        hasher.update(relpath.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(content)
        return hasher.hexdigest()

    def get(self, key: str) -> Optional[Dict]:
        path = self.directory / f"{key}.json"
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or "findings" not in entry \
                or "edges" not in entry:
            return None
        self.hits += 1
        return entry

    def put(self, key: str, findings: Sequence[Finding],
            edges: Sequence[ImportEdge]) -> None:
        self.misses += 1
        entry = {
            "findings": [[f.path, f.line, f.col, f.code, f.message, f.hint]
                         for f in findings],
            "edges": [[e.src_layer, e.dst_layer, e.path, e.line, e.col,
                       e.deferred, e.statement] for e in edges],
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.directory / f"{key}.json"
            tmp = path.with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(json.dumps(entry, sort_keys=True),
                           encoding="utf-8")
            tmp.replace(path)
        except OSError:
            pass  # a read-only tree just runs uncached

    @staticmethod
    def findings_of(entry: Dict) -> List[Finding]:
        return [Finding(path=row[0], line=row[1], col=row[2], code=row[3],
                        message=row[4], hint=row[5])
                for row in entry["findings"]]

    @staticmethod
    def edges_of(entry: Dict) -> List[ImportEdge]:
        return [ImportEdge(src_layer=row[0], dst_layer=row[1], path=row[2],
                           line=row[3], col=row[4], deferred=row[5],
                           statement=row[6])
                for row in entry["edges"]]
