"""Twin registry + drift checker (TWN001).

The fast paths (PRs 5-6) are only trustworthy because every one of
them has a reference twin proven bit-identical at runtime: the tiered
scheduler vs the binary heap, the zero-copy ``_on_envelope`` vs the
eager-decode ``_on_envelope_reference``, ``patch_ttl_hops`` vs a full
re-encode.  Runtime equivalence is a *late* signal though -- you learn
about drift from a digest mismatch three layers away.  This pass makes
the pairing a declared, versioned contract: ``pyproject.toml`` carries
a ``[tool.detlint.twins]`` table naming every pair and the *mirror
obligations* both sides must keep satisfying, and the checker projects
each side's normalized AST onto those obligations and fails TWN001 the
moment one side changes without the other.

Obligations (each projects a function/class body to a set of strings):

``counters``
    attribute paths incremented with ``+=`` (``self.`` stripped) --
    e.g. both envelope twins must bump ``stats.decode_errors``.
``handlers``
    dispatch targets: calls whose terminal name starts with
    ``_handle``, normalized by stripping twin suffixes (``_raw``,
    ``_reference``, ...); a ``getattr(self, f"_handle_{...}")``
    dynamic dispatch projects to the wildcard ``_handle_*``, which
    covers any named handler on the other side.
``guards``
    exception types caught (``except MessageError:`` on both sides).
``raises``
    exception types raised (the kernel loop twins must both refuse a
    backwards clock with ``ValueError``).
``sinks``
    calls into the fixed effect vocabulary (scheduling, callback
    delivery, telemetry hooks, sends) -- the instrumented drain loop
    must deliver through exactly the calls the plain loop does.
``api``
    public method names of a class pair (the drain contract:
    ``EventQueue`` and ``TieredEventQueue`` expose the same surface).

Members are written ``"pkg.module:Qual.name"``; a member that cannot
be resolved is itself a TWN001 (a renamed twin must rename its
registry entry in the same commit).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from .findings import Finding, Module

__all__ = ["TwinPair", "TwinMember", "parse_twins", "check_twins",
           "OBLIGATIONS"]

#: twin-implementation suffixes stripped before comparing names
_TWIN_SUFFIXES = ("_raw", "_reference", "_windowed", "_fast", "_slow")

#: the effect vocabulary the ``sinks`` obligation projects onto
_SINK_VOCAB = frozenset({
    "push", "cancel", "at", "after", "every", "schedule",
    "callback", "observe_callback", "on_event", "send", "send_many",
})

#: handler-dispatch wildcard produced by getattr(self, f"_handle_...")
_WILDCARD = "_handle_*"

OBLIGATIONS = ("counters", "handlers", "guards", "raises", "sinks", "api")


@dataclass(frozen=True)
class TwinMember:
    """One side of a pair: ``pkg.module:Qual.name``."""

    module: str
    qualname: str

    @classmethod
    def parse(cls, spec: str) -> "TwinMember":
        module, sep, qualname = spec.partition(":")
        if not sep or not module or not qualname:
            raise ValueError(
                f"twin member {spec!r} is not 'pkg.module:Qual.name'")
        return cls(module=module, qualname=qualname)

    def __str__(self) -> str:
        return f"{self.module}:{self.qualname}"


@dataclass(frozen=True)
class TwinPair:
    """A named fast/reference pair and its declared obligations."""

    name: str
    members: Tuple[TwinMember, ...]
    obligations: Tuple[str, ...]


def parse_twins(table: Dict) -> List[TwinPair]:
    """``[tool.detlint.twins.<name>]`` tables -> pair list (sorted)."""
    pairs: List[TwinPair] = []
    for name in sorted(table):
        entry = table[name]
        members = tuple(TwinMember.parse(spec)
                        for spec in entry.get("members", ()))
        if len(members) < 2:
            raise ValueError(
                f"twin pair {name!r} needs at least two members")
        obligations = tuple(entry.get("obligations", ()))
        unknown = [o for o in obligations if o not in OBLIGATIONS]
        if unknown:
            raise ValueError(
                f"twin pair {name!r} has unknown obligations {unknown}; "
                f"known: {OBLIGATIONS}")
        if not obligations:
            raise ValueError(f"twin pair {name!r} declares no obligations")
        pairs.append(TwinPair(name=name, members=members,
                              obligations=obligations))
    return pairs


# -- AST resolution -------------------------------------------------------


def _resolve(module: Module, qualname: str) -> Optional[ast.AST]:
    """Find a top-level function/class or ``Class.method`` node."""
    parts = qualname.split(".")
    body: Sequence[ast.stmt] = module.tree.body if module.tree else ()
    node: Optional[ast.AST] = None
    for part in parts:
        node = None
        for item in body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)) and item.name == part:
                node = item
                break
        if node is None:
            return None
        body = node.body if isinstance(node, ast.ClassDef) else ()
    return node


def _strip_suffix(name: str) -> str:
    for suffix in _TWIN_SUFFIXES:
        if name.endswith(suffix) and len(name) > len(suffix):
            return name[:-len(suffix)]
    return name


def _terminal(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _attr_path(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        path = ".".join(reversed(parts))
        if path.startswith("self."):
            path = path[len("self."):]
        return path
    return None


def _exc_names(node: Optional[ast.AST]) -> Iterator[str]:
    if node is None:
        yield "<bare>"
        return
    if isinstance(node, ast.Tuple):
        for elt in node.elts:
            yield from _exc_names(elt)
        return
    if isinstance(node, ast.Call):
        node = node.func
    name = _terminal(node)
    if name:
        yield name


# -- projections ----------------------------------------------------------


def _project(node: ast.AST, obligation: str) -> FrozenSet[str]:
    if obligation == "api":
        return _project_api(node)
    out: set = set()
    for sub in ast.walk(node):
        if obligation == "counters" and isinstance(sub, ast.AugAssign):
            path = _attr_path(sub.target)
            if path:
                out.add(path)
        elif obligation == "handlers" and isinstance(sub, ast.Call):
            if _is_wildcard_dispatch(sub):
                out.add(_WILDCARD)
                continue
            name = _terminal(sub.func)
            if name and name.startswith("_handle"):
                out.add(_strip_suffix(name))
        elif obligation == "guards" and isinstance(sub, ast.ExceptHandler):
            out.update(_exc_names(sub.type))
        elif obligation == "raises" and isinstance(sub, ast.Raise):
            out.update(_exc_names(sub.exc))
        elif obligation == "sinks" and isinstance(sub, ast.Call):
            name = _terminal(sub.func)
            if name in _SINK_VOCAB:
                out.add(name)
    return frozenset(out)


def _is_wildcard_dispatch(node: ast.Call) -> bool:
    """``getattr(obj, f"_handle_{...}")`` -- dynamic dispatch by name."""
    if not (isinstance(node.func, ast.Name) and node.func.id == "getattr"
            and len(node.args) >= 2):
        return False
    spec = node.args[1]
    if isinstance(spec, ast.JoinedStr) and spec.values:
        head = spec.values[0]
        return isinstance(head, ast.Constant) and \
            isinstance(head.value, str) and head.value.startswith("_handle")
    return False


def _project_api(node: ast.AST) -> FrozenSet[str]:
    if isinstance(node, ast.ClassDef):
        return frozenset(
            item.name for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and not item.name.startswith("_"))
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return frozenset({_strip_suffix(node.name)})
    return frozenset()


def _handlers_match(sides: Sequence[FrozenSet[str]]) -> bool:
    """Named handlers must match up to wildcard subsumption."""
    wildcards = [_WILDCARD in side for side in sides]
    if len(set(wildcards)) > 1:
        return False
    named = [side - {_WILDCARD} for side in sides]
    if all(wildcards):
        return True  # every named handler is covered by the other side
    return len(set(named)) == 1


# -- the check ------------------------------------------------------------


def check_twins(modules: Sequence[Module], pairs: Sequence[TwinPair],
                config_relpath: str = "pyproject.toml") -> List[Finding]:
    """TWN001 findings for every drifted or unresolvable pair."""
    by_dotted = {module.dotted: module for module in modules}
    findings: List[Finding] = []
    for pair in pairs:
        resolved: List[Tuple[TwinMember, Module, ast.AST]] = []
        missing = False
        for member in pair.members:
            module = by_dotted.get(member.module)
            node = _resolve(module, member.qualname) if module else None
            if module is None or node is None:
                findings.append(Finding(
                    config_relpath, 1, 0, "TWN001",
                    f"twin pair {pair.name!r}: member {member} not found "
                    "-- a renamed twin must update the registry in the "
                    "same commit",
                    "fix the [tool.detlint.twins] entry in pyproject.toml"))
                missing = True
                continue
            resolved.append((member, module, node))
        if missing or len(resolved) < 2:
            continue
        for obligation in pair.obligations:
            projections = [_project(node, obligation)
                           for _, _, node in resolved]
            if obligation == "handlers":
                if _handlers_match(projections):
                    continue
            elif len(set(projections)) == 1:
                continue
            findings.extend(_drift_findings(pair, obligation, resolved,
                                            projections))
    return sorted(findings)


def _drift_findings(pair: TwinPair, obligation: str,
                    resolved: Sequence[Tuple[TwinMember, Module, ast.AST]],
                    projections: Sequence[FrozenSet[str]]) -> List[Finding]:
    baseline = projections[0]
    base_member = resolved[0][0]
    findings: List[Finding] = []
    for (member, module, node), projection in \
            zip(resolved[1:], projections[1:]):
        if projection == baseline and obligation != "handlers":
            continue
        only_here = sorted(projection - baseline)
        only_base = sorted(baseline - projection)
        detail = []
        if only_here:
            detail.append(f"only in {member.qualname}: {only_here}")
        if only_base:
            detail.append(f"only in {base_member.qualname}: {only_base}")
        findings.append(Finding(
            module.relpath, node.lineno, node.col_offset, "TWN001",
            f"twin pair {pair.name!r} drifted on obligation "
            f"{obligation!r}: {'; '.join(detail) or 'projection mismatch'}",
            "change both twins together (or update the registry if the "
            "contract itself changed)"))
    return findings
