"""Finding and rule plumbing shared by every detlint check.

A :class:`Finding` is one diagnostic anchored to ``path:line:col`` with
a stable ``code`` (``DET001``..., ``LAY001``...) and a fix hint.  A
rule is anything satisfying the :class:`Rule` protocol: a ``code``, a
``name`` and a ``check(module)`` generator.  The engine instantiates
every registered rule once per run and sorts the merged findings, so
lint output is a deterministic function of the tree being linted --
the linter holds itself to the invariant it enforces.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Tuple

try:  # pragma: no cover - python < 3.8 only
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

__all__ = ["Finding", "Module", "Rule", "parse_module"]


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where, what, and how to fix it."""

    path: str  # repo-relative posix path
    line: int
    col: int
    code: str
    message: str
    hint: str = ""

    def render(self) -> str:
        """``path:line:col: CODE message  [fix: hint]`` (one line)."""
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if self.hint:
            text += f"  [fix: {self.hint}]"
        return text

    @property
    def location(self) -> Tuple[str, int]:
        return (self.path, self.line)


@dataclass
class Module:
    """One parsed source file handed to every rule."""

    path: Path  # absolute
    relpath: str  # repo-relative posix ("src/repro/simnet/kernel.py")
    dotted: str  # dotted module name ("repro.simnet.kernel")
    tree: ast.Module
    source: str = ""
    #: syntax errors surface here instead of raising mid-walk
    errors: List[str] = field(default_factory=list)


class Rule(Protocol):
    """The contract every lint rule implements."""

    code: str
    name: str

    def check(self, module: Module) -> Iterator[Finding]:
        """Yield findings for one module (order does not matter)."""
        ...  # pragma: no cover


def parse_module(path: Path, relpath: str, dotted: str,
                 source: str = None) -> Module:
    """Read and parse one file; syntax errors become module.errors.

    Pass ``source`` to parse already-read bytes (the cache path reads
    each file exactly once, for hashing and parsing both).
    """
    if source is None:
        source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
        errors: List[str] = []
    except SyntaxError as error:
        tree = ast.Module(body=[], type_ignores=[])
        errors = [f"syntax error: {error.msg} (line {error.lineno})"]
    return Module(path=path, relpath=relpath, dotted=dotted, tree=tree,
                  source=source, errors=errors)
