"""Dataflow taint pass (DET007/DET008).

The syntactic rules catch ``time.time()`` *at the call site*; this pass
catches the value after it has been laundered through a variable::

    jitter = time.time() % 1.0          # DET002 fires here already, but
    sim.after(base + jitter, cb)        # DET007 fires HERE -- the leak
                                        # actually reaches the scheduler

It is a forward, intra-procedural taint propagation over each function
body (module-level code is treated as one more scope), plus a one-level
call-graph summary pass so taint crosses helper functions defined in the
same module:

* **sources** -- every entropy read the syntactic rules know about
  (bare ``random.*``, wall-clock, ``os.urandom``/``os.getenv``/
  ``uuid4``/``secrets``), plus *iteration order* of ``set``/
  ``frozenset`` values (taint kind ``order`` instead of ``entropy``).
* **propagation** -- assignments, augmented assignment, tuple
  unpacking, arithmetic, f-strings, conditional expressions, container
  literals, attribute stores on ``self``, and mutating calls
  (``.append(tainted)`` taints the receiver).  ``sorted()`` / ``min`` /
  ``max`` / ``len`` cleanse *order* taint (the result no longer depends
  on hash order); nothing cleanses entropy.
* **summaries** -- pass one computes, for every function and method in
  the module, whether it ``taints_return`` (returns a tainted value)
  and which ``sink_params`` it forwards into a sink.  Pass two replays
  the analysis with those summaries visible, so
  ``sim.after(jitter(), cb)`` and ``sched_helper(time.time())`` both
  fire at the call site.
* **sinks** -- scheduling calls (``.at/.after/.every/.push/
  .schedule``), RNG seeding (``seed``/``derive_seed``/``Random(x)``),
  RNG draw arguments, and message-field constructors (a capitalized
  callable that is not an exception type).

Findings fire *only* when taint reaches a sink **through a variable**
(``direct`` source-at-sink expressions stay the territory of
DET001/002/006, and the lexical loop-body case stays DET003's), which
is what keeps this pass's false-positive rate near zero.

====== ==================================================================
code   hazard
====== ==================================================================
DET007 laundered entropy reaches a scheduling / seeding / message sink
DET008 unordered iteration order reaches a sink through a variable
====== ==================================================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .findings import Finding, Module
from .rules import (_DATETIME_FUNCS, _RANDOM_FUNCS, _RNG_METHODS,
                    _SCHED_METHODS, _TIME_FUNCS, _import_map, _is_set_expr,
                    _resolves)

__all__ = ["DataflowRule", "check_dataflow"]

#: calls whose result no longer depends on iteration order
_ORDER_CLEANSERS = frozenset({"sorted", "min", "max", "sum", "len", "any",
                              "all", "frozenset"})

#: mutating container methods: a tainted argument taints the receiver
_MUTATORS = frozenset({"append", "add", "update", "extend", "insert",
                       "appendleft", "setdefault"})

#: callables that seed randomness
_SEED_FUNCS = frozenset({"seed", "derive_seed"})

#: exception-ish suffixes excluded from the message-constructor sink
_EXC_SUFFIXES = ("Error", "Exception", "Warning")


@dataclass(frozen=True)
class Taint:
    """One tainted value: what kind, where it came from, how it moved."""

    kind: str          # "entropy" | "order" | "param"
    origin: str        # human description of the source
    line: int          # source line
    direct: bool = True    # still the literal source expression?
    param: str = ""        # parameter name when kind == "param"
    span: Tuple[int, int] = (0, 0)  # originating For-loop line span (order)


@dataclass
class _Summary:
    """One-level call summary for a module-local function."""

    params: Tuple[str, ...]
    taints_return: Optional[Taint] = None
    sink_params: Dict[str, str] = None  # param name -> sink description

    def __post_init__(self) -> None:
        if self.sink_params is None:
            self.sink_params = {}


def _terminal_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class _ScopeAnalysis:
    """Forward taint over one function body (or the module body)."""

    def __init__(self, module: Module, names: Dict[str, str],
                 summaries: Dict[str, _Summary],
                 class_of: Optional[str] = None,
                 params: Sequence[str] = (),
                 seed_params: bool = False) -> None:
        self.module = module
        self.names = names
        self.summaries = summaries
        self.class_of = class_of
        self.env: Dict[str, Taint] = {}
        self.findings: List[Finding] = []
        self.summary = _Summary(params=tuple(params))
        self.set_names: Set[str] = set()
        if seed_params:
            for param in params:
                if param in ("self", "cls"):
                    continue
                self.env[param] = Taint("param", f"parameter {param!r}", 0,
                                        direct=False, param=param)

    # -- source detection -------------------------------------------------

    def _entropy_source(self, node: ast.Call) -> Optional[str]:
        func = node.func
        name = _terminal_name(func)
        if name is None:
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            if name in _RANDOM_FUNCS and isinstance(base, ast.Name) and \
                    self.names.get(base.id, base.id) == "random":
                return f"random.{name}()"
            if name in _TIME_FUNCS and _resolves(self.names, base, "time"):
                return f"time.{name}()"
            if name in _DATETIME_FUNCS and (
                    _resolves(self.names, base, "datetime.datetime") or
                    _resolves(self.names, base, "datetime.date")):
                return f"datetime.{name}()"
            if name == "urandom" and _resolves(self.names, base, "os"):
                return "os.urandom()"
            if name == "getenv" and _resolves(self.names, base, "os"):
                return "os.getenv()"
            if name == "get" and _resolves(self.names, base, "os.environ"):
                return "os.environ.get()"
            if name in ("uuid1", "uuid4") and \
                    _resolves(self.names, base, "uuid"):
                return f"uuid.{name}()"
            if _resolves(self.names, base, "secrets"):
                return f"secrets.{name}()"
        else:
            origin = self.names.get(name, "")
            if origin.startswith("random.") and \
                    origin.split(".", 1)[1] in _RANDOM_FUNCS:
                return f"{origin}()"
            if origin.startswith("time.") and \
                    origin.split(".", 1)[1] in _TIME_FUNCS:
                return f"{origin}()"
            if origin in ("os.urandom", "os.getenv", "uuid.uuid1",
                          "uuid.uuid4") or origin.startswith("secrets."):
                return f"{origin}()"
        return None

    # -- expression taint -------------------------------------------------

    def _eval(self, node: ast.AST) -> Optional[Taint]:
        if isinstance(node, ast.Name):
            taint = self.env.get(node.id)
            return replace(taint, direct=False) if taint else None
        if isinstance(node, ast.Attribute):
            chain = _dotted_store_path(node)
            if chain is not None and chain in self.env:
                return replace(self.env[chain], direct=False)
            return self._eval(node.value)
        if isinstance(node, (ast.BinOp,)):
            return self._eval(node.left) or self._eval(node.right)
        if isinstance(node, ast.BoolOp):
            return self._first_taint(node.values)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Compare):
            return self._eval(node.left) or \
                self._first_taint(node.comparators)
        if isinstance(node, ast.IfExp):
            return self._eval(node.body) or self._eval(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return self._first_taint(node.elts)
        if isinstance(node, ast.Dict):
            return self._first_taint([k for k in node.keys if k] +
                                     list(node.values))
        if isinstance(node, ast.Subscript):
            if _resolves(self.names, node.value, "os.environ"):
                return Taint("entropy", "os.environ[...]", node.lineno)
            return self._eval(node.value)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.JoinedStr):
            return self._first_taint(node.values)
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        return None

    def _first_taint(self, nodes: Sequence[ast.AST]) -> Optional[Taint]:
        for node in nodes:
            taint = self._eval(node)
            if taint:
                return taint
        return None

    def _eval_call(self, node: ast.Call) -> Optional[Taint]:
        source = self._entropy_source(node)
        if source:
            return Taint("entropy", source, node.lineno)
        name = _terminal_name(node.func)
        arg_taint = self._first_taint(list(node.args) +
                                      [kw.value for kw in node.keywords])
        # sorted()/min()/max()/len() kill order taint; entropy survives
        if isinstance(node.func, ast.Name) and name in _ORDER_CLEANSERS:
            if arg_taint and arg_taint.kind == "order":
                return None
            return arg_taint
        # set.pop() / list(<set>) freeze an arbitrary hash order
        if isinstance(node.func, ast.Attribute) and name == "pop" and \
                not node.args and \
                _is_set_expr(node.func.value, self.set_names):
            return Taint("order", "set.pop()", node.lineno)
        if isinstance(node.func, ast.Name) and name in ("list", "tuple") \
                and node.args and \
                _is_set_expr(node.args[0], self.set_names):
            return Taint("order", f"{name}(<set>)", node.lineno)
        # module-local helper with a tainted return
        summary = self._callee_summary(node)
        if summary is not None and summary.taints_return is not None:
            via = summary.taints_return
            return Taint(via.kind, f"{via.origin} via helper", node.lineno,
                         direct=False, span=via.span)
        # unknown call: taint flows through its arguments
        if arg_taint:
            return replace(arg_taint, direct=False)
        return None

    def _callee_summary(self, node: ast.Call) -> Optional[_Summary]:
        func = node.func
        if isinstance(func, ast.Name):
            return self.summaries.get(func.id)
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and \
                func.value.id == "self" and self.class_of:
            return self.summaries.get(f"{self.class_of}.{func.attr}")
        return None

    # -- sinks ------------------------------------------------------------

    def _sink_for_call(self, node: ast.Call) -> Optional[str]:
        name = _terminal_name(node.func)
        if name is None:
            return None
        if isinstance(node.func, ast.Attribute):
            if name in _SCHED_METHODS:
                return f"scheduling call .{name}()"
            if name in _RNG_METHODS:
                return f"RNG draw .{name}()"
        if name in _SEED_FUNCS:
            return f"RNG seeding {name}()"
        if name == "Random":
            return "random.Random(<seed>)"
        if name[0].isupper() and not name.endswith(_EXC_SUFFIXES) and \
                "_" not in name:
            return f"message/field constructor {name}()"
        return None

    def _check_sinks(self, stmt: ast.stmt) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if not isinstance(node, ast.Call):
                continue
            sink = self._sink_for_call(node)
            summary = self._callee_summary(node)
            if sink is None and not (summary and summary.sink_params):
                continue
            args = list(node.args) + [kw.value for kw in node.keywords]
            for index, arg in enumerate(args):
                taint = self._eval(arg)
                if taint is None:
                    continue
                if sink is not None:
                    self._report(node, taint, sink)
                if summary and index < len(args) and summary.sink_params:
                    param = self._param_for_arg(summary, node, index)
                    if param in summary.sink_params:
                        self._report(node, taint,
                                     summary.sink_params[param] +
                                     " inside the callee")

    @staticmethod
    def _param_for_arg(summary: _Summary, node: ast.Call,
                       index: int) -> Optional[str]:
        if index < len(node.args):
            return summary.params[index] if index < len(summary.params) \
                else None
        keyword = node.keywords[index - len(node.args)]
        return keyword.arg

    def _report(self, node: ast.Call, taint: Taint, sink: str) -> None:
        if taint.kind == "param":
            self.summary.sink_params.setdefault(taint.param, sink)
            return
        if taint.direct:
            return  # source-at-sink: DET001/002/006 territory
        if taint.kind == "order" and \
                taint.span[0] <= node.lineno <= taint.span[1]:
            return  # sink lexically inside the originating loop: DET003
        code = "DET007" if taint.kind == "entropy" else "DET008"
        if taint.kind == "entropy":
            message = (f"laundered entropy from {taint.origin} "
                       f"(line {taint.line}) reaches {sink}")
            hint = ("derive the value from Simulator.now or a named "
                    "seeded stream instead of ambient entropy")
        else:
            message = (f"unordered iteration order from {taint.origin} "
                       f"(line {taint.line}) reaches {sink} through a "
                       "variable")
            hint = "sort the set (sorted(...)) before the order can escape"
        self.findings.append(Finding(self.module.relpath, node.lineno,
                                     node.col_offset, code, message, hint))

    # -- statement walk ---------------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> None:
        self._collect_set_names(body)
        # two passes so taint assigned late in a loop body reaches sinks
        # earlier in the same loop on the next iteration
        for _ in range(2):
            self._process_block(body, check=False)
        self._process_block(body, check=True)

    def _collect_set_names(self, body: Sequence[ast.stmt]) -> None:
        for _ in range(2):
            for stmt in body:
                for node in _walk_statements(stmt):
                    if isinstance(node, ast.Assign) and \
                            _is_set_expr(node.value, self.set_names):
                        self.set_names.update(
                            t.id for t in node.targets
                            if isinstance(t, ast.Name))

    def _process_block(self, body: Sequence[ast.stmt],
                       check: bool) -> None:
        for stmt in body:
            self._process_stmt(stmt, check)

    def _process_stmt(self, stmt: ast.stmt, check: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scope: analysed separately
        if check:
            self._check_sinks(stmt)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._process_assign(stmt)
        elif isinstance(stmt, ast.For):
            self._process_for(stmt, check)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            taint = self._eval(stmt.value)
            if taint and taint.kind != "param" and \
                    self.summary.taints_return is None:
                self.summary.taints_return = replace(taint, direct=False)
        elif isinstance(stmt, (ast.If,)):
            self._process_block(stmt.body, check)
            self._process_block(stmt.orelse, check)
        elif isinstance(stmt, (ast.While,)):
            self._process_block(stmt.body, check)
            self._process_block(stmt.orelse, check)
        elif isinstance(stmt, ast.With):
            self._process_block(stmt.body, check)
        elif isinstance(stmt, ast.Try):
            self._process_block(stmt.body, check)
            for handler in stmt.handlers:
                self._process_block(handler.body, check)
            self._process_block(stmt.orelse, check)
            self._process_block(stmt.finalbody, check)
        elif isinstance(stmt, ast.Expr):
            self._process_mutator(stmt.value)

    def _process_assign(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.AugAssign):
            taint = self._eval(stmt.value) or self._target_taint(stmt.target)
            targets: List[ast.AST] = [stmt.target]
            value: Optional[ast.AST] = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return
            taint = self._eval(stmt.value)
            targets = [stmt.target]
            value = stmt.value
        else:
            taint = self._eval(stmt.value)
            targets = list(stmt.targets)
            value = stmt.value
        stays_set = value is not None and _is_set_expr(value, self.set_names)
        for target in targets:
            self._bind(target, taint, stays_set=stays_set)

    def _target_taint(self, target: ast.AST) -> Optional[Taint]:
        if isinstance(target, ast.Name):
            return self.env.get(target.id)
        chain = _dotted_store_path(target)
        return self.env.get(chain) if chain else None

    def _bind(self, target: ast.AST, taint: Optional[Taint],
              stays_set: bool = False) -> None:
        if isinstance(target, ast.Name):
            if taint:
                self.env[target.id] = replace(taint, direct=False)
            else:
                self.env.pop(target.id, None)
                if not stays_set:
                    self.set_names.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taint, stays_set=stays_set)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint, stays_set=stays_set)
        else:
            chain = _dotted_store_path(target)
            if chain:
                if taint:
                    self.env[chain] = replace(taint, direct=False)
                else:
                    self.env.pop(chain, None)

    def _process_for(self, stmt: ast.For, check: bool) -> None:
        iter_taint = self._eval(stmt.iter)
        span = (stmt.lineno, getattr(stmt, "end_lineno", stmt.lineno) or
                stmt.lineno)
        if _is_unordered_iterable(stmt.iter, self.set_names):
            self._bind(stmt.target, Taint(
                "order", "iteration over an unordered set", stmt.lineno,
                direct=False, span=span))
        elif iter_taint:
            self._bind(stmt.target, replace(iter_taint, direct=False))
        else:
            self._bind(stmt.target, None)
        self._process_block(stmt.body, check)
        self._process_block(stmt.orelse, check)

    def _process_mutator(self, node: ast.AST) -> None:
        if not (isinstance(node, ast.Call) and
                isinstance(node.func, ast.Attribute) and
                node.func.attr in _MUTATORS):
            return
        taint = self._first_taint(list(node.args) +
                                  [kw.value for kw in node.keywords])
        if taint and taint.kind != "param":
            receiver = node.func.value
            if isinstance(receiver, ast.Name):
                self.env.setdefault(receiver.id,
                                    replace(taint, direct=False))
            else:
                chain = _dotted_store_path(receiver)
                if chain:
                    self.env.setdefault(chain, replace(taint, direct=False))


def _dotted_store_path(node: ast.AST) -> Optional[str]:
    """``self.x.y`` -> ``"self.x.y"`` for attribute chains off a Name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_unordered_iterable(node: ast.AST, set_names: Set[str]) -> bool:
    if _is_set_expr(node, set_names):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr == "keys" and \
            _is_set_expr(node.func.value, set_names):
        return True
    return False


def _walk_statements(stmt: ast.stmt) -> Iterator[ast.AST]:
    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _scopes(module: Module) -> Iterator[Tuple[Optional[str], str,
                                              Sequence[ast.stmt],
                                              Sequence[str]]]:
    """(enclosing class, qualified name, body, params) per scope."""
    yield None, "<module>", module.tree.body, ()
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node.name, node.body, _params(node)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    yield (node.name, f"{node.name}.{item.name}",
                           item.body, _params(item))


def _params(node: ast.AST) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return tuple(names)


def check_dataflow(module: Module,
                   rng_modules: Tuple[str, ...] = ()) -> List[Finding]:
    """Run the two-pass taint analysis over one module."""
    if module.tree is None or module.dotted in rng_modules:
        return []
    names = _import_map(module)
    # pass one: build call summaries (params seeded with "param" taint)
    summaries: Dict[str, _Summary] = {}
    for class_of, qualname, body, params in _scopes(module):
        if qualname == "<module>":
            continue
        analysis = _ScopeAnalysis(module, names, {}, class_of, params,
                                  seed_params=True)
        analysis.run(body)
        summaries[qualname] = analysis.summary
    # pass two: real findings, summaries visible at call sites
    findings: List[Finding] = []
    for class_of, qualname, body, params in _scopes(module):
        analysis = _ScopeAnalysis(module, names, summaries, class_of,
                                  params, seed_params=False)
        analysis.run(body)
        findings.extend(analysis.findings)
    seen: Set[Tuple[int, int, str, str]] = set()
    unique: List[Finding] = []
    for finding in sorted(findings):
        key = (finding.line, finding.col, finding.code, finding.message)
        if key not in seen:
            seen.add(key)
            unique.append(finding)
    return unique


class DataflowRule:
    """Rule adapter so the engine can run the taint pass like any rule."""

    code = "DET007"
    name = "dataflow-taint"

    def __init__(self, rng_modules: Tuple[str, ...] = ()) -> None:
        self.rng_modules = rng_modules

    def check(self, module: Module) -> Iterator[Finding]:
        yield from check_dataflow(module, self.rng_modules)
