"""The layering checker (LAY001/LAY002): imports must follow the DAG.

The repo's architecture is a strict layering -- ``simnet`` at the
bottom knows nothing about the reproduction built on top of it,
``telemetry`` is a leaf observed-by-everyone package that the network
stacks never import, ``scanner`` is independent of both networks, and
``core`` orchestrates all of them.  That DAG is *declared* in
``pyproject.toml`` under ``[tool.detlint.layers]`` and this module
checks the declaration against the **real** ``import``/``from`` graph
extracted from the AST of every file under ``src/``.

Two codes:

* ``LAY001`` -- a module-level import crosses the DAG the wrong way.
  Module-level imports are the architecture: they bind at import time
  and make the packages inseparable.
* ``LAY002`` -- a function-level (deferred) import crosses the DAG and
  is not declared in ``deferred_imports``.  Deferred imports are the
  sanctioned escape hatch for opt-in dev tooling (e.g. ``core`` loads
  the sanitizer only when ``run_replications(sanitize=True)``), but
  every such edge must be declared or it is a violation like any other.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from .findings import Finding, Module

__all__ = ["ImportEdge", "extract_edges", "check_layers", "check_edges",
           "ROOT_LAYER"]

#: layer key for modules directly under the top package (cli.py, __init__.py)
ROOT_LAYER = "<root>"


@dataclass(frozen=True)
class ImportEdge:
    """One intra-project import: which layer imported which, and where."""

    src_layer: str
    dst_layer: str
    path: str
    line: int
    col: int
    deferred: bool  # inside a function body (runtime, not import time)
    statement: str  # rendered import target, for the message


def _layer_of(dotted: str, package: str) -> str:
    """``repro.simnet.kernel`` -> ``simnet``; ``repro.cli`` -> ROOT_LAYER."""
    parts = dotted.split(".")
    if parts[0] != package or len(parts) < 2:
        return ROOT_LAYER
    # ``repro.cli`` is a root module; ``repro.simnet.*`` is layer simnet --
    # a submodule is a layer only if it has children, but at the dotted-name
    # level the second component *is* the layer for both cases, so treat
    # ``repro.<x>`` with a known two-part name as root when <x> is a module.
    return parts[1]


def _resolve_relative(module: Module, node: ast.ImportFrom,
                      package: str) -> List[str]:
    """Absolute dotted targets of a relative ``from ... import`` statement."""
    # the containing package: for a plain module that is dotted minus the
    # module name; a package __init__ *is* its own containing package
    base = module.dotted.split(".")
    if not _is_package(module):
        base = base[:-1]
    # each level beyond 1 climbs one more package
    climb = node.level - 1
    if climb:
        base = base[:-climb] if climb < len(base) else []
    mod = node.module.split(".") if node.module else []
    target = base + mod
    if not target or target[0] != package:
        return []
    return [".".join(target)]


def _is_package(module: Module) -> bool:
    return module.path.name == "__init__.py"


def extract_edges(modules: Sequence[Module], package: str = "repro"
                  ) -> List[ImportEdge]:
    """Every intra-``package`` import edge in the given modules."""
    edges: List[ImportEdge] = []
    for module in modules:
        src_parts = module.dotted.split(".")
        if src_parts[0] != package:
            continue
        if len(src_parts) > 2 or (len(src_parts) == 2
                                  and _is_package(module)):
            src_layer = src_parts[1]
        else:  # repro/__init__.py, repro/cli.py, ...
            src_layer = ROOT_LAYER
        for node, deferred in _walk_imports(module.tree):
            targets: List[str] = []
            if isinstance(node, ast.Import):
                targets = [a.name for a in node.names
                           if a.name.split(".")[0] == package]
            elif isinstance(node, ast.ImportFrom):
                if node.level > 0:
                    targets = _resolve_relative(module, node, package)
                elif node.module and node.module.split(".")[0] == package:
                    targets = [node.module]
            for target in targets:
                dst_parts = target.split(".")
                dst_layer = dst_parts[1] if len(dst_parts) > 1 else ROOT_LAYER
                edges.append(ImportEdge(
                    src_layer=src_layer, dst_layer=dst_layer,
                    path=module.relpath, line=node.lineno,
                    col=node.col_offset, deferred=deferred,
                    statement=target))
    return edges


def _walk_imports(tree: ast.Module
                  ) -> Iterator[Tuple[ast.stmt, bool]]:
    """(import node, is-deferred) for every import in the tree."""
    stack: List[Tuple[ast.AST, bool]] = [(tree, False)]
    while stack:
        node, deferred = stack.pop()
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node, deferred
            continue
        inside = deferred or isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for child in ast.iter_child_nodes(node):
            stack.append((child, inside))


def check_layers(modules: Sequence[Module],
                 layers: Dict[str, Sequence[str]],
                 deferred_allowed: Set[Tuple[str, str]],
                 package: str = "repro") -> List[Finding]:
    """Check the real import graph against the declared DAG.

    ``layers`` maps a layer name (top-level subpackage, or ``<root>``)
    to the layers it may import at module level; the value ``"*"``
    allows everything.  ``deferred_allowed`` is a set of
    ``(src, dst)`` pairs additionally permitted inside functions.
    """
    return check_edges(extract_edges(modules, package=package), layers,
                       deferred_allowed)


def check_edges(edges: Sequence[ImportEdge],
                layers: Dict[str, Sequence[str]],
                deferred_allowed: Set[Tuple[str, str]]) -> List[Finding]:
    """The DAG check over already-extracted edges (cache-friendly)."""
    findings: List[Finding] = []
    for edge in edges:
        if edge.src_layer == edge.dst_layer:
            continue
        declared = layers.get(edge.src_layer)
        if declared is None:
            findings.append(Finding(
                edge.path, edge.line, edge.col, "LAY001",
                f"layer {edge.src_layer!r} is not declared in "
                "[tool.detlint.layers]",
                "add it to pyproject.toml with its allowed imports"))
            continue
        allowed = "*" in declared or edge.dst_layer in declared
        if allowed:
            continue
        if edge.deferred:
            if (edge.src_layer, edge.dst_layer) in deferred_allowed:
                continue
            findings.append(Finding(
                edge.path, edge.line, edge.col, "LAY002",
                f"deferred import of {edge.statement!r} crosses the layer "
                f"DAG ({edge.src_layer} -> {edge.dst_layer}) and is not a "
                "declared deferred edge",
                "declare it in [tool.detlint] deferred_imports or move the "
                "dependency down the stack"))
        else:
            findings.append(Finding(
                edge.path, edge.line, edge.col, "LAY001",
                f"import of {edge.statement!r} violates the layer DAG "
                f"({edge.src_layer} -> {edge.dst_layer} not allowed)",
                f"only {sorted(declared)} may be imported from "
                f"{edge.src_layer}; restructure or move the code"))
    return findings
