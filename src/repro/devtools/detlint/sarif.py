"""SARIF 2.1.0 export (``repro-study lint --sarif out.sarif``).

GitHub code scanning (and most editors) ingest SARIF; uploading the
lint run turns every finding into an inline PR annotation instead of a
line in a CI log.  The export is deterministic: rules and results are
emitted in sorted order, and no timestamps or absolute paths appear --
two runs over the same tree produce byte-identical files, the same bar
the text report meets.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .findings import Finding

__all__ = ["to_sarif", "render_sarif"]

_RULE_DESCRIPTIONS = {
    "DET000": "file does not parse",
    "DET001": "bare random.* / unseeded RNG outside the stream module",
    "DET002": "wall-clock read in simulation code",
    "DET003": "unordered set iteration feeding the scheduler or RNG",
    "DET004": "builtin hash() varies with PYTHONHASHSEED",
    "DET005": "id() used as an ordering key",
    "DET006": "ambient entropy (environ, urandom, uuid4, secrets)",
    "DET007": "laundered entropy reaches a scheduling/seed/message sink",
    "DET008": "unordered iteration order reaches a sink through a variable",
    "LAY001": "module-level import violates the declared layer DAG",
    "LAY002": "undeclared deferred import crosses the layer DAG",
    "TWN001": "fast/reference twin pair drifted on a declared obligation",
    "CONC001": "unsynchronized cross-thread mutation of shared state",
    "CONC002": "lock-order inversion in the static acquisition graph",
    "CONC003": "blocking call inside a kernel callback",
}


def to_sarif(findings: Sequence[Finding],
             tool_version: str = "2") -> Dict:
    """The SARIF log object for one lint run."""
    codes = sorted({finding.code for finding in findings})
    rules = [{
        "id": code,
        "shortDescription": {
            "text": _RULE_DESCRIPTIONS.get(code, code)},
        "defaultConfiguration": {"level": "error"},
    } for code in codes]
    index_of = {code: index for index, code in enumerate(codes)}
    results: List[Dict] = []
    for finding in sorted(findings):
        message = finding.message
        if finding.hint:
            message += f" (fix: {finding.hint})"
        results.append({
            "ruleId": finding.code,
            "ruleIndex": index_of[finding.code],
            "level": "error",
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": max(1, finding.line),
                               "startColumn": finding.col + 1},
                },
            }],
        })
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "detlint",
                "informationUri": ("https://example.invalid/repro/"
                                   "devtools/detlint"),
                "version": tool_version,
                "rules": rules,
            }},
            "results": results,
        }],
    }


def render_sarif(findings: Sequence[Finding]) -> str:
    """The SARIF log as pretty-printed, key-sorted JSON."""
    return json.dumps(to_sarif(findings), indent=2, sort_keys=True) + "\n"
