"""The detlint engine: configuration, file walk, baseline, verdict.

Configuration lives in ``pyproject.toml`` under ``[tool.detlint]`` so
the declared layer DAG and the twin registry are versioned next to the
package metadata they describe.  The engine is itself held to the
determinism bar it enforces: the file walk is sorted, rule order is
fixed, and findings are sorted by ``(path, line, col, code)`` -- two
runs over the same tree always print byte-identical reports, cached or
cold.

Four pass families run per lint:

1. the syntactic rules (DET001-DET006, ``rules.py``);
2. the dataflow taint pass (DET007/DET008, ``dataflow.py``);
3. the concurrency pass (CONC001-CONC003, ``concurrency.py``);
4. cross-file checks: the layer DAG (LAY001/LAY002, ``layering.py``)
   and the twin registry (TWN001, ``twins.py``).

The first three are per-module and memoize through the content-
addressed cache (``cache.py``); the cross-file checks re-run every
time over cached edges / freshly parsed twin members.

The baseline file is the *only* sanctioned suppression mechanism.  It
started as a DET002-only wall-clock whitelist; the dataflow, twin and
concurrency codes may now be grandfathered too -- but every entry must
carry an annotation (a ``#`` comment) explaining why the finding
cannot perturb simulation state, and the hard-error codes (DET001,
DET004-DET006, the LAY codes) stay unbaselineable: there is never a
good reason for bare randomness or a layering violation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .cache import LintCache, config_digest
from .concurrency import check_concurrency
from .dataflow import check_dataflow
from .findings import Finding, Module, parse_module
from .layering import ImportEdge, check_edges, extract_edges
from .rules import all_rules
from .twins import TwinPair, check_twins, parse_twins

try:  # python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - older interpreters
    tomllib = None

__all__ = ["LintConfig", "LintResult", "load_config", "collect_modules",
           "lint_modules", "lint_repo", "BaselineError"]

#: rule codes the baseline may suppress (annotated grandfathering only).
#: DET002 is the historical telemetry wall-time whitelist; the analysis
#: passes added in v2 may be baselined while their findings are burned
#: down.  DET001/004/005/006 and the layering codes are hard errors.
BASELINE_ALLOWED_CODES = ("DET002", "DET003", "DET007", "DET008",
                          "TWN001", "CONC001", "CONC002", "CONC003")


class BaselineError(ValueError):
    """The baseline file tried to suppress something it must not."""


@dataclass
class LintConfig:
    """Parsed ``[tool.detlint]`` configuration."""

    root: Path  # repo root (directory holding pyproject.toml)
    package: str = "repro"
    src: str = "src"
    exclude: Tuple[str, ...] = ()
    baseline: Optional[str] = None
    rng_modules: Tuple[str, ...] = ()
    layers: Dict[str, Sequence[str]] = field(default_factory=dict)
    deferred_imports: Set[Tuple[str, str]] = field(default_factory=set)
    twins: List[TwinPair] = field(default_factory=list)

    @property
    def src_dir(self) -> Path:
        return self.root / self.src

    @property
    def baseline_path(self) -> Optional[Path]:
        return self.root / self.baseline if self.baseline else None


def _parse_deferred(entries: Sequence[str]) -> Set[Tuple[str, str]]:
    """``["core -> devtools"]`` -> ``{("core", "devtools")}``."""
    edges = set()
    for entry in entries:
        src, sep, dst = entry.partition("->")
        if not sep:
            raise ValueError(
                f"deferred_imports entry {entry!r} is not 'src -> dst'")
        edges.add((src.strip(), dst.strip()))
    return edges


def load_config(root: Path) -> LintConfig:
    """Read ``[tool.detlint]`` from ``<root>/pyproject.toml``."""
    root = Path(root)
    pyproject = root / "pyproject.toml"
    table: Dict = {}
    if pyproject.exists() and tomllib is not None:
        with pyproject.open("rb") as handle:
            table = tomllib.load(handle).get("tool", {}).get("detlint", {})
    return LintConfig(
        root=root,
        package=table.get("package", "repro"),
        src=table.get("src", "src"),
        exclude=tuple(table.get("exclude", ())),
        baseline=table.get("baseline"),
        rng_modules=tuple(table.get("rng_modules", ())),
        layers=dict(table.get("layers", {})),
        deferred_imports=_parse_deferred(table.get("deferred_imports", ())),
        twins=parse_twins(table.get("twins", {})),
    )


def _excluded(relpath: str, exclude: Tuple[str, ...]) -> bool:
    return any(relpath.startswith(prefix.rstrip("/") + "/") or
               relpath == prefix for prefix in exclude)


def _collect_files(config: LintConfig,
                   paths: Optional[Sequence[Path]] = None
                   ) -> List[Tuple[Path, str, str]]:
    """(abspath, relpath, dotted) per lintable file, sorted."""
    package_dir = config.src_dir / config.package
    roots = [Path(p) for p in paths] if paths else [package_dir]
    files: List[Path] = []
    for entry in roots:
        if entry.is_dir():
            files.extend(entry.rglob("*.py"))
        elif entry.suffix == ".py":
            files.append(entry)
    collected: List[Tuple[Path, str, str]] = []
    for path in sorted(set(file.resolve() for file in files)):
        try:
            rel_src = path.relative_to(config.src_dir.resolve())
        except ValueError:
            rel_src = Path(path.name)
        package_rel = rel_src.as_posix()
        if _excluded(package_rel, config.exclude):
            continue
        try:
            relpath = path.relative_to(config.root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        collected.append((path, relpath, _dotted_name(rel_src)))
    return collected


def collect_modules(config: LintConfig,
                    paths: Optional[Sequence[Path]] = None) -> List[Module]:
    """Parse every lintable file, in sorted (deterministic) order.

    Without ``paths``, walks ``<src>/<package>``; with ``paths``, lints
    exactly those files/directories (still applying the excludes).
    """
    return [parse_module(path, relpath, dotted)
            for path, relpath, dotted in _collect_files(config, paths)]


def _dotted_name(rel_src: Path) -> str:
    parts = list(rel_src.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class LintResult:
    """The outcome of one lint run."""

    findings: List[Finding]
    suppressed: List[Finding]
    unused_baseline: List[str]
    files_checked: int
    #: True when only a subset of files was linted (--changed-only):
    #: unused-baseline accounting is meaningless for a partial walk
    partial: bool = False
    cache_hits: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def render(self, strict: bool = False) -> str:
        lines = [finding.render() for finding in self.findings]
        if not self.partial:
            for entry in self.unused_baseline:
                lines.append(f"warning: unused baseline entry: {entry}")
        lines.append(
            f"detlint: {self.files_checked} files, "
            f"{len(self.findings)} finding"
            f"{'' if len(self.findings) == 1 else 's'}"
            f" ({len(self.suppressed)} baselined)")
        if strict and self.unused_baseline and not self.partial:
            lines.append("detlint: strict mode: unused baseline entries "
                         "are errors")
        return "\n".join(lines)

    def exit_code(self, strict: bool = False) -> int:
        if self.findings:
            return 1
        if strict and self.unused_baseline and not self.partial:
            return 1
        return 0


def load_baseline(path: Path) -> List[Tuple[str, str]]:
    """Parse ``CODE path  # why`` lines; reject unbaselineable codes."""
    entries: List[Tuple[str, str]] = []
    for raw_line in path.read_text(encoding="utf-8").splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise BaselineError(
                f"baseline line {raw_line!r} is not 'CODE path  # why'")
        code, entry_path = parts
        if code not in BASELINE_ALLOWED_CODES:
            raise BaselineError(
                f"baseline may only whitelist {BASELINE_ALLOWED_CODES}; "
                f"found {code} for {entry_path} -- that code is a hard "
                "error, fix the finding instead")
        if "#" not in raw_line:
            raise BaselineError(
                f"baseline entry {entry_path} lacks an annotation -- every "
                "grandfathered finding must say why it is safe")
        entries.append((code, entry_path))
    return entries


def module_passes(module: Module, config: LintConfig) -> List[Finding]:
    """Every per-module pass: syntactic rules, dataflow, concurrency."""
    findings: List[Finding] = []
    for error in module.errors:
        findings.append(Finding(module.relpath, 1, 0, "DET000",
                                error, "fix the syntax error"))
    for rule in all_rules(config.rng_modules):
        findings.extend(rule.check(module))
    findings.extend(check_dataflow(module, config.rng_modules))
    findings.extend(check_concurrency(module))
    return sorted(findings)


def _cross_passes(config: LintConfig, edges: Sequence[ImportEdge],
                  twin_modules: Sequence[Module],
                  run_twins: bool = True) -> List[Finding]:
    findings: List[Finding] = []
    if config.layers:
        findings.extend(check_edges(edges, config.layers,
                                    config.deferred_imports))
    if config.twins and run_twins:
        findings.extend(check_twins(twin_modules, config.twins))
    return findings


def lint_modules(modules: Sequence[Module],
                 config: LintConfig) -> List[Finding]:
    """Run every pass over parsed modules; findings come back sorted."""
    findings: List[Finding] = []
    for module in modules:
        findings.extend(module_passes(module, config))
    findings.extend(_cross_passes(
        config, extract_edges(modules, package=config.package), modules))
    return sorted(findings)


def lint_repo(root: Path, paths: Optional[Sequence[Path]] = None,
              config: Optional[LintConfig] = None,
              use_cache: bool = False,
              partial: bool = False) -> LintResult:
    """Lint the repo rooted at ``root`` (the directory of pyproject.toml).

    With ``use_cache=True``, per-module findings and import edges are
    memoized under ``<root>/.detlint-cache/`` keyed by file content --
    output is byte-identical to a cold run.  ``partial=True`` marks a
    subset walk (``--changed-only``): unused-baseline strictness is
    suspended, since entries for unwalked files are not stale.
    """
    config = config or load_config(Path(root))
    partial = partial or paths is not None
    files = _collect_files(config, paths)
    cache = LintCache(config.root, config_digest(config)) if use_cache \
        else None
    findings: List[Finding] = []
    edges: List[ImportEdge] = []
    twin_dotted = {member.module for pair in config.twins
                   for member in pair.members}
    twin_modules: List[Module] = []
    for path, relpath, dotted in files:
        module: Optional[Module] = None
        entry = None
        if cache is not None:
            data = path.read_bytes()
            key = cache.key(relpath, data)
            entry = cache.get(key)
            if entry is not None:
                findings.extend(cache.findings_of(entry))
                edges.extend(cache.edges_of(entry))
        if entry is None:
            if cache is not None:
                module = parse_module(path, relpath, dotted,
                                      source=data.decode("utf-8"))
            else:
                module = parse_module(path, relpath, dotted)
            module_findings = module_passes(module, config)
            module_edges = extract_edges([module], package=config.package)
            findings.extend(module_findings)
            edges.extend(module_edges)
            if cache is not None:
                cache.put(key, module_findings, module_edges)
        if dotted in twin_dotted:
            if module is None:
                module = parse_module(path, relpath, dotted)
            twin_modules.append(module)
    # a subset walk (explicit paths / --changed-only) may simply not
    # include the twin members: a missing member is only a finding when
    # the whole tree was walked
    findings.extend(_cross_passes(config, edges, twin_modules,
                                  run_twins=paths is None))
    findings = sorted(findings)
    suppressed: List[Finding] = []
    unused: List[str] = []
    baseline_path = config.baseline_path
    if baseline_path is not None and baseline_path.exists():
        entries = load_baseline(baseline_path)
        kept: List[Finding] = []
        used: Set[Tuple[str, str]] = set()
        for finding in findings:
            key = (finding.code, finding.path)
            if key in entries:
                suppressed.append(finding)
                used.add(key)
            else:
                kept.append(finding)
        findings = kept
        unused = [f"{code} {path}" for code, path in entries
                  if (code, path) not in used]
    return LintResult(findings=findings, suppressed=suppressed,
                      unused_baseline=unused, files_checked=len(files),
                      partial=partial,
                      cache_hits=cache.hits if cache else 0)
