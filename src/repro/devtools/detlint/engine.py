"""The detlint engine: configuration, file walk, baseline, verdict.

Configuration lives in ``pyproject.toml`` under ``[tool.detlint]`` so
the declared layer DAG is versioned next to the package metadata it
describes.  The engine is itself held to the determinism bar it
enforces: the file walk is sorted, rule order is fixed, and findings
are sorted by ``(path, line, col, code)`` -- two runs over the same
tree always print byte-identical reports.

The baseline file is the *only* sanctioned suppression mechanism and
it accepts nothing but DET002 (wall-clock) entries: the telemetry
layer legitimately reads ``perf_counter`` to observe the simulation,
and the kernel's sampled-callback timing is part of that whitelist.
Every entry must carry an annotation (a ``#`` comment) explaining why
the wall-clock read cannot perturb simulation state.  Any other code
in the baseline is a configuration error, not a suppression.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .findings import Finding, Module, parse_module
from .layering import check_layers
from .rules import all_rules

try:  # python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - older interpreters
    tomllib = None

__all__ = ["LintConfig", "LintResult", "load_config", "collect_modules",
           "lint_modules", "lint_repo", "BaselineError"]

#: the only rule code the baseline may suppress (telemetry wall time)
BASELINE_ALLOWED_CODES = ("DET002",)


class BaselineError(ValueError):
    """The baseline file tried to suppress something it must not."""


@dataclass
class LintConfig:
    """Parsed ``[tool.detlint]`` configuration."""

    root: Path  # repo root (directory holding pyproject.toml)
    package: str = "repro"
    src: str = "src"
    exclude: Tuple[str, ...] = ()
    baseline: Optional[str] = None
    rng_modules: Tuple[str, ...] = ()
    layers: Dict[str, Sequence[str]] = field(default_factory=dict)
    deferred_imports: Set[Tuple[str, str]] = field(default_factory=set)

    @property
    def src_dir(self) -> Path:
        return self.root / self.src

    @property
    def baseline_path(self) -> Optional[Path]:
        return self.root / self.baseline if self.baseline else None


def _parse_deferred(entries: Sequence[str]) -> Set[Tuple[str, str]]:
    """``["core -> devtools"]`` -> ``{("core", "devtools")}``."""
    edges = set()
    for entry in entries:
        src, sep, dst = entry.partition("->")
        if not sep:
            raise ValueError(
                f"deferred_imports entry {entry!r} is not 'src -> dst'")
        edges.add((src.strip(), dst.strip()))
    return edges


def load_config(root: Path) -> LintConfig:
    """Read ``[tool.detlint]`` from ``<root>/pyproject.toml``."""
    root = Path(root)
    pyproject = root / "pyproject.toml"
    table: Dict = {}
    if pyproject.exists() and tomllib is not None:
        with pyproject.open("rb") as handle:
            table = tomllib.load(handle).get("tool", {}).get("detlint", {})
    return LintConfig(
        root=root,
        package=table.get("package", "repro"),
        src=table.get("src", "src"),
        exclude=tuple(table.get("exclude", ())),
        baseline=table.get("baseline"),
        rng_modules=tuple(table.get("rng_modules", ())),
        layers=dict(table.get("layers", {})),
        deferred_imports=_parse_deferred(table.get("deferred_imports", ())),
    )


def _excluded(relpath: str, exclude: Tuple[str, ...]) -> bool:
    return any(relpath.startswith(prefix.rstrip("/") + "/") or
               relpath == prefix for prefix in exclude)


def collect_modules(config: LintConfig,
                    paths: Optional[Sequence[Path]] = None) -> List[Module]:
    """Parse every lintable file, in sorted (deterministic) order.

    Without ``paths``, walks ``<src>/<package>``; with ``paths``, lints
    exactly those files/directories (still applying the excludes).
    """
    package_dir = config.src_dir / config.package
    roots = [Path(p) for p in paths] if paths else [package_dir]
    files: List[Path] = []
    for entry in roots:
        if entry.is_dir():
            files.extend(entry.rglob("*.py"))
        elif entry.suffix == ".py":
            files.append(entry)
    modules: List[Module] = []
    for path in sorted(set(file.resolve() for file in files)):
        try:
            rel_src = path.relative_to(config.src_dir.resolve())
        except ValueError:
            rel_src = Path(path.name)
        package_rel = rel_src.as_posix()
        if _excluded(package_rel, config.exclude):
            continue
        try:
            relpath = path.relative_to(config.root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        dotted = _dotted_name(rel_src)
        modules.append(parse_module(path, relpath, dotted))
    return modules


def _dotted_name(rel_src: Path) -> str:
    parts = list(rel_src.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class LintResult:
    """The outcome of one lint run."""

    findings: List[Finding]
    suppressed: List[Finding]
    unused_baseline: List[str]
    files_checked: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def render(self, strict: bool = False) -> str:
        lines = [finding.render() for finding in self.findings]
        for entry in self.unused_baseline:
            lines.append(f"warning: unused baseline entry: {entry}")
        lines.append(
            f"detlint: {self.files_checked} files, "
            f"{len(self.findings)} finding"
            f"{'' if len(self.findings) == 1 else 's'}"
            f" ({len(self.suppressed)} baselined)")
        if strict and self.unused_baseline:
            lines.append("detlint: strict mode: unused baseline entries "
                         "are errors")
        return "\n".join(lines)

    def exit_code(self, strict: bool = False) -> int:
        if self.findings:
            return 1
        if strict and self.unused_baseline:
            return 1
        return 0


def load_baseline(path: Path) -> List[Tuple[str, str]]:
    """Parse ``CODE path  # why`` lines; reject non-wall-clock codes."""
    entries: List[Tuple[str, str]] = []
    for raw_line in path.read_text(encoding="utf-8").splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise BaselineError(
                f"baseline line {raw_line!r} is not 'CODE path  # why'")
        code, entry_path = parts
        if code not in BASELINE_ALLOWED_CODES:
            raise BaselineError(
                f"baseline may only whitelist {BASELINE_ALLOWED_CODES} "
                f"(telemetry wall time); found {code} for {entry_path}")
        if "#" not in raw_line:
            raise BaselineError(
                f"baseline entry {entry_path} lacks an annotation -- every "
                "wall-clock whitelist entry must say why it is safe")
        entries.append((code, entry_path))
    return entries


def lint_modules(modules: Sequence[Module],
                 config: LintConfig) -> List[Finding]:
    """Run every rule plus the layering check; findings come back sorted."""
    findings: List[Finding] = []
    rules = all_rules(config.rng_modules)
    for module in modules:
        for error in module.errors:
            findings.append(Finding(module.relpath, 1, 0, "DET000",
                                    error, "fix the syntax error"))
        for rule in rules:
            findings.extend(rule.check(module))
    if config.layers:
        findings.extend(check_layers(modules, config.layers,
                                     config.deferred_imports,
                                     package=config.package))
    return sorted(findings)


def lint_repo(root: Path, paths: Optional[Sequence[Path]] = None,
              config: Optional[LintConfig] = None) -> LintResult:
    """Lint the repo rooted at ``root`` (the directory of pyproject.toml)."""
    config = config or load_config(Path(root))
    modules = collect_modules(config, paths)
    findings = lint_modules(modules, config)
    suppressed: List[Finding] = []
    unused: List[str] = []
    baseline_path = config.baseline_path
    if baseline_path is not None and baseline_path.exists():
        entries = load_baseline(baseline_path)
        kept: List[Finding] = []
        used: Set[Tuple[str, str]] = set()
        for finding in findings:
            key = (finding.code, finding.path)
            if key in entries:
                suppressed.append(finding)
                used.add(key)
            else:
                kept.append(finding)
        findings = kept
        unused = [f"{code} {path}" for code, path in entries
                  if (code, path) not in used]
    return LintResult(findings=findings, suppressed=suppressed,
                      unused_baseline=unused, files_checked=len(modules))
