"""detlint: the determinism & layering linter (``repro-study lint``).

An AST-based static-analysis suite purpose-built for this repo's core
invariant -- same seed, same bits.  Four pass families:

* :mod:`.rules` -- the syntactic DET rule catalogue (DET001-006);
* :mod:`.dataflow` -- intra-procedural taint (DET007/DET008): entropy
  and iteration-order taint tracked through assignments until it
  reaches a scheduling/seed/message sink;
* :mod:`.layering` -- the import-DAG check (LAY001/LAY002);
* :mod:`.twins` -- the fast/reference twin-drift check (TWN001) over
  pairs declared in ``[tool.detlint.twins]``;
* :mod:`.concurrency` -- shared-state lint (CONC001-003) for the
  telemetry threads that run alongside the simulation.

:mod:`.engine` holds configuration/baseline semantics, :mod:`.cache`
the content-addressed result cache and :mod:`.sarif` the SARIF export.
"""

from .cache import CACHE_DIR_NAME, LintCache, config_digest
from .concurrency import check_concurrency
from .dataflow import check_dataflow
from .engine import (BASELINE_ALLOWED_CODES, BaselineError, LintConfig,
                     LintResult, collect_modules, lint_modules, lint_repo,
                     load_baseline, load_config, module_passes)
from .findings import Finding, Module, Rule, parse_module
from .layering import ImportEdge, check_edges, check_layers, extract_edges
from .rules import DEFAULT_RULES, all_rules
from .sarif import render_sarif, to_sarif
from .twins import TwinMember, TwinPair, check_twins, parse_twins

__all__ = [
    "BASELINE_ALLOWED_CODES", "BaselineError", "LintConfig", "LintResult",
    "collect_modules", "lint_modules", "lint_repo", "load_baseline",
    "load_config", "module_passes",
    "Finding", "Module", "Rule", "parse_module",
    "ImportEdge", "check_edges", "check_layers", "extract_edges",
    "DEFAULT_RULES", "all_rules",
    "check_dataflow", "check_concurrency",
    "TwinMember", "TwinPair", "check_twins", "parse_twins",
    "CACHE_DIR_NAME", "LintCache", "config_digest",
    "render_sarif", "to_sarif",
]
