"""detlint: the determinism & layering linter (``repro-study lint``).

An AST-based static-analysis pass purpose-built for this repo's core
invariant -- same seed, same bits.  See :mod:`.rules` for the DET
rule catalogue, :mod:`.layering` for the import-DAG check and
:mod:`.engine` for configuration/baseline semantics.
"""

from .engine import (BaselineError, LintConfig, LintResult, collect_modules,
                     lint_modules, lint_repo, load_baseline, load_config)
from .findings import Finding, Module, Rule, parse_module
from .layering import ImportEdge, check_layers, extract_edges
from .rules import DEFAULT_RULES, all_rules

__all__ = [
    "BaselineError", "LintConfig", "LintResult", "collect_modules",
    "lint_modules", "lint_repo", "load_baseline", "load_config",
    "Finding", "Module", "Rule", "parse_module",
    "ImportEdge", "check_layers", "extract_edges",
    "DEFAULT_RULES", "all_rules",
]
