"""Concurrency / shared-state lint (CONC001-CONC003).

The observability plane (PR 7) put real threads next to the
simulation: a ``ThreadingHTTPServer`` scrapes live telemetry while the
kernel mutates it.  That coexistence is safe only under a discipline
-- every datum both sides touch goes through one lock, locks never
nest in conflicting orders, and nothing scheduled *inside* the kernel
ever blocks on wall-clock time.  This pass checks the discipline
statically, per module:

``CONC001`` unsynchronized cross-thread mutation
    Thread entries are HTTP handler methods (``do_*`` on a
    ``BaseHTTPRequestHandler`` subclass), ``run`` on a ``Thread``
    subclass, and anything passed to ``threading.Thread(target=...)``
    or an executor ``.submit``.  Methods reachable from an entry (by
    call-name closure within the module) form the *thread side*;
    everything else is the mainline.  An attribute written outside
    ``__init__`` on one side and accessed on the other with no common
    lock in the enclosing ``with`` chains is flagged.  A class that
    *starts* threads while handing itself out (``TelemetryServer``)
    gets the stricter rule: any two of its methods may run on
    different threads, so cross-method unlocked mutation is flagged
    even without an in-module entry path.

``CONC002`` lock-order inversion
    Every ``with <lock>`` nested inside another contributes an edge to
    the static acquisition graph; a cycle means two call paths can
    deadlock.  The runtime twin of this check is
    ``repro.devtools.sanitizer.LockOrderRecorder``.

``CONC003`` blocking call inside a kernel callback
    Functions scheduled via ``.at/.after/.every/.push/.schedule`` run
    inside the simulator's drain loop; ``time.sleep``, an argument-less
    ``.join()`` / ``.wait()``, or a ``.recv()``/``.accept()`` there
    stalls virtual time on wall time (and under ``serve`` can deadlock
    against the scrape thread).

Lock recognition is conservative: an attribute assigned
``threading.Lock()`` / ``RLock()`` / ``Condition()`` anywhere in the
class, or whose name contains ``lock``/``mutex``/``cond``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from .findings import Finding, Module
from .rules import _import_map, _resolves

__all__ = ["ConcurrencyRule", "check_concurrency"]

#: scheduling methods whose callable arguments become kernel callbacks
_SCHED_SINKS = frozenset({"at", "after", "every", "push", "schedule"})

#: attribute mutators: self.X.append(...) counts as a write to X
_MUTATORS = frozenset({"append", "add", "update", "extend", "insert",
                       "pop", "popitem", "clear", "remove", "discard",
                       "setdefault", "appendleft"})

#: factory terminals that make an attribute a lock
_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                             "BoundedSemaphore"})

_LOCKISH_NAME_PARTS = ("lock", "mutex", "cond")


def _terminal(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _base_names(node: ast.ClassDef) -> List[str]:
    names = []
    for base in node.bases:
        name = _terminal(base)
        if name:
            names.append(name)
    return names


@dataclass
class _Access:
    attr: str
    write: bool
    method: str
    line: int
    col: int
    locks: FrozenSet[str]


@dataclass
class _ClassInfo:
    name: str
    node: ast.ClassDef
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    lock_attrs: Set[str] = field(default_factory=set)
    accesses: List[_Access] = field(default_factory=list)
    starts_threads: bool = False


class _ModuleIndex:
    """Everything the three checks need, collected in one walk."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.names = _import_map(module)
        self.functions: Dict[str, ast.FunctionDef] = {}
        self.classes: Dict[str, _ClassInfo] = {}
        #: qualname -> terminal names it calls
        self.calls: Dict[str, Set[str]] = {}
        #: entry qualnames / bare target names seeding thread reachability
        self.entry_names: Set[str] = set()
        #: names of functions handed to the scheduler (kernel callbacks)
        self.callback_names: Set[str] = set()
        #: lambdas handed to the scheduler, analysed in place
        self.callback_lambdas: List[Tuple[str, ast.Lambda]] = []
        self._collect()

    # -- collection -------------------------------------------------------

    def _collect(self) -> None:
        tree = self.module.tree
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
                self.calls[node.name] = self._called_names(node)
                self._collect_nested(node)
            elif isinstance(node, ast.ClassDef):
                info = _ClassInfo(name=node.name, node=node)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        info.methods[item.name] = item
                        self.calls[f"{node.name}.{item.name}"] = \
                            self._called_names(item)
                        self._collect_nested(item)
                self._find_lock_attrs(info)
                self.classes[node.name] = info
                self._mark_entries_from_bases(info)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                self._scan_thread_creation(node)
                self._scan_scheduler_args(node)
        for info in self.classes.values():
            for method_name, method in info.methods.items():
                self._collect_accesses(info, method_name, method)

    def _collect_nested(self, scope: ast.AST) -> None:
        # closures handed to Thread(target=...) or the scheduler are the
        # common idiom; register them by bare name so reachability and
        # scope scans see them (first definition wins on a collision)
        for node in ast.walk(scope):
            if node is scope:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name not in self.functions:
                self.functions[node.name] = node
                self.calls.setdefault(node.name, self._called_names(node))

    def _called_names(self, scope: ast.AST) -> Set[str]:
        called: Set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Call):
                name = _terminal(node.func)
                if name:
                    called.add(name)
        return called

    def _find_lock_attrs(self, info: _ClassInfo) -> None:
        for method in info.methods.values():
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                if not (isinstance(node.value, ast.Call) and
                        _terminal(node.value.func) in _LOCK_FACTORIES):
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and \
                            isinstance(target.value, ast.Name) and \
                            target.value.id == "self":
                        info.lock_attrs.add(target.attr)

    def _mark_entries_from_bases(self, info: _ClassInfo) -> None:
        bases = _base_names(info.node)
        if any("HTTPRequestHandler" in base or "ThreadingMixIn" in base
               for base in bases):
            for name in info.methods:
                if name.startswith("do_") or name == "handle":
                    self.entry_names.add(f"{info.name}.{name}")
        if any(base == "Thread" for base in bases) and "run" in info.methods:
            self.entry_names.add(f"{info.name}.run")

    def _scan_thread_creation(self, node: ast.Call) -> None:
        name = _terminal(node.func)
        is_thread = (name == "Thread" and (
            isinstance(node.func, ast.Name) or
            _resolves(self.names, node.func.value, "threading")
            if isinstance(node.func, ast.Attribute) else True))
        is_submit = isinstance(node.func, ast.Attribute) and name == "submit"
        if not (is_thread or is_submit):
            return
        targets: List[ast.AST] = []
        if is_thread:
            targets = [kw.value for kw in node.keywords
                       if kw.arg == "target"]
        elif node.args:
            targets = [node.args[0]]
        for target in targets:
            self._note_entry_target(target)
        if is_thread:
            owner = self._enclosing_class(node)
            if owner is not None:
                owner.starts_threads = True

    def _note_entry_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.entry_names.add(target.id)
        elif isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and \
                    target.value.id == "self":
                owner = self._enclosing_class(target)
                if owner is not None:
                    self.entry_names.add(f"{owner.name}.{target.attr}")
                    return
            self.entry_names.add(target.attr)

    def _enclosing_class(self, node: ast.AST) -> Optional[_ClassInfo]:
        for info in self.classes.values():
            for method in info.methods.values():
                for sub in ast.walk(method):
                    if sub is node:
                        return info
        return None

    def _scan_scheduler_args(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Attribute) and
                node.func.attr in _SCHED_SINKS):
            return
        candidates = list(node.args) + [kw.value for kw in node.keywords
                                        if kw.arg in ("callback", "target")]
        for arg in candidates:
            if isinstance(arg, ast.Name) and (
                    arg.id in self.functions or
                    any(arg.id in info.methods
                        for info in self.classes.values())):
                self.callback_names.add(arg.id)
            elif isinstance(arg, ast.Attribute) and \
                    isinstance(arg.value, ast.Name) and \
                    arg.value.id == "self":
                self.callback_names.add(arg.attr)
            elif isinstance(arg, ast.Lambda):
                self.callback_lambdas.append(
                    (f".{node.func.attr}() at line {node.lineno}", arg))

    # -- per-method attribute accesses under the lock stack ---------------

    def _collect_accesses(self, info: _ClassInfo, method_name: str,
                          method: ast.FunctionDef) -> None:
        locks: List[str] = []

        def lock_of(expr: ast.AST) -> Optional[str]:
            if isinstance(expr, ast.Attribute) and \
                    isinstance(expr.value, ast.Name) and \
                    expr.value.id == "self":
                attr = expr.attr
                if attr in info.lock_attrs or any(
                        part in attr.lower()
                        for part in _LOCKISH_NAME_PARTS):
                    return f"{info.name}.{attr}"
            if isinstance(expr, ast.Name) and any(
                    part in expr.id.lower()
                    for part in _LOCKISH_NAME_PARTS):
                return expr.id
            return None

        def note(attr: str, write: bool, node: ast.AST) -> None:
            if attr in info.lock_attrs:
                return
            if attr in info.methods:
                return  # self._helper() is a call, not shared data
            info.accesses.append(_Access(
                attr=attr, write=write, method=method_name,
                line=node.lineno, col=node.col_offset,
                locks=frozenset(locks)))

        def visit(node: ast.AST) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                return
            if isinstance(node, ast.With):
                acquired = []
                for item in node.items:
                    name = lock_of(item.context_expr)
                    if name:
                        locks.append(name)
                        acquired.append(name)
                for item in node.items:
                    visit(item.context_expr)
                for stmt in node.body:
                    visit(stmt)
                for name in acquired:
                    locks.remove(name)
                return
            if isinstance(node, ast.Attribute) and \
                    isinstance(node.value, ast.Name) and \
                    node.value.id == "self":
                note(node.attr, isinstance(node.ctx, (ast.Store, ast.Del)),
                     node)
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _MUTATORS:
                receiver = node.func.value
                if isinstance(receiver, ast.Attribute) and \
                        isinstance(receiver.value, ast.Name) and \
                        receiver.value.id == "self":
                    note(receiver.attr, True, node)
            if isinstance(node, ast.Subscript) and \
                    isinstance(node.ctx, (ast.Store, ast.Del)) and \
                    isinstance(node.value, ast.Attribute) and \
                    isinstance(node.value.value, ast.Name) and \
                    node.value.value.id == "self":
                note(node.value.attr, True, node)
            for child in ast.iter_child_nodes(node):
                visit(child)

        for stmt in method.body:
            visit(stmt)

    # -- reachability ------------------------------------------------------

    def thread_reachable(self) -> Set[str]:
        """Qualnames of functions/methods reachable from thread entries."""
        reachable_names: Set[str] = set()
        for entry in self.entry_names:
            reachable_names.add(entry.rsplit(".", 1)[-1])
        qualnames = set(self.calls)
        reached: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for qualname in qualnames - reached:
                bare = qualname.rsplit(".", 1)[-1]
                if bare in reachable_names or qualname in self.entry_names:
                    reached.add(qualname)
                    reachable_names |= self.calls[qualname]
                    changed = True
        return reached

    def callback_reachable(self) -> Set[str]:
        """Qualnames reachable from kernel-callback entry points."""
        reachable_names = set(self.callback_names)
        reached: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for qualname in set(self.calls) - reached:
                bare = qualname.rsplit(".", 1)[-1]
                if bare in reachable_names:
                    reached.add(qualname)
                    reachable_names |= self.calls[qualname]
                    changed = True
        return reached


# -- CONC001 --------------------------------------------------------------


def _conc001(index: _ModuleIndex) -> Iterator[Finding]:
    module = index.module
    reached = index.thread_reachable()
    for class_name in sorted(index.classes):
        info = index.classes[class_name]
        any_thread_side = any(f"{class_name}.{m}" in reached
                              for m in info.methods)
        if not (any_thread_side or info.starts_threads):
            continue
        by_attr: Dict[str, List[_Access]] = {}
        for access in info.accesses:
            by_attr.setdefault(access.attr, []).append(access)
        for attr in sorted(by_attr):
            accesses = by_attr[attr]
            writes = [a for a in accesses
                      if a.write and a.method != "__init__"]
            if not writes:
                continue
            reported = False
            for write in writes:
                if reported:
                    break
                write_thread = f"{class_name}.{write.method}" in reached
                for other in accesses:
                    if other.method == "__init__" or \
                            other.method == write.method:
                        continue
                    other_thread = f"{class_name}.{other.method}" in reached
                    cross = (write_thread != other_thread) or (
                        info.starts_threads)
                    if not cross:
                        continue
                    if write.locks & other.locks:
                        continue
                    why = ("the class starts threads and hands itself out"
                           if info.starts_threads and
                           write_thread == other_thread
                           else "one side runs on the scrape/worker thread")
                    yield Finding(
                        module.relpath, write.line, write.col, "CONC001",
                        f"unsynchronized cross-thread mutation: "
                        f"{class_name}.{attr} is written in "
                        f".{write.method}() and accessed in "
                        f".{other.method}() (line {other.line}) with no "
                        f"common lock; {why}",
                        "guard both sides with one lock (with self._lock:)")
                    reported = True
                    break


# -- CONC002 --------------------------------------------------------------


def _conc002(index: _ModuleIndex) -> Iterator[Finding]:
    edges: Dict[Tuple[str, str], Tuple[int, int]] = {}

    for qualname, scope in _all_scopes(index):
        info = _class_for(index, qualname)
        stack: List[str] = []

        def lock_of(expr: ast.AST) -> Optional[str]:
            if isinstance(expr, ast.Attribute) and \
                    isinstance(expr.value, ast.Name) and \
                    expr.value.id == "self" and info is not None:
                attr = expr.attr
                if attr in info.lock_attrs or any(
                        part in attr.lower()
                        for part in _LOCKISH_NAME_PARTS):
                    return f"{info.name}.{attr}"
            if isinstance(expr, ast.Name) and any(
                    part in expr.id.lower()
                    for part in _LOCKISH_NAME_PARTS):
                return expr.id
            return None

        def visit(node: ast.AST) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)) and node is not scope:
                return
            if isinstance(node, ast.With):
                acquired = []
                for item in node.items:
                    name = lock_of(item.context_expr)
                    if name:
                        for held in stack:
                            if held != name:
                                edges.setdefault(
                                    (held, name),
                                    (node.lineno, node.col_offset))
                        stack.append(name)
                        acquired.append(name)
                for stmt in node.body:
                    visit(stmt)
                for name in acquired:
                    stack.remove(name)
                return
            for child in ast.iter_child_nodes(node):
                visit(child)

        visit(scope)

    reported: Set[FrozenSet[str]] = set()
    for (first, second) in sorted(edges):
        if (second, first) in edges and \
                frozenset((first, second)) not in reported:
            reported.add(frozenset((first, second)))
            line, col = edges[(first, second)]
            other_line, _ = edges[(second, first)]
            yield Finding(
                index.module.relpath, line, col, "CONC002",
                f"lock-order inversion: {first} is acquired before "
                f"{second} here but after it at line {other_line} -- two "
                "threads taking the two paths deadlock",
                "pick one global acquisition order and stick to it")


# -- CONC003 --------------------------------------------------------------


def _conc003(index: _ModuleIndex) -> Iterator[Finding]:
    reached = index.callback_reachable()
    scopes: List[Tuple[str, ast.AST]] = [
        (qualname, scope) for qualname, scope in _all_scopes(index)
        if qualname in reached]
    scopes.extend(index.callback_lambdas)
    for qualname, scope in scopes:
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            blocking = _blocking_call(index, node)
            if blocking:
                yield Finding(
                    index.module.relpath, node.lineno, node.col_offset,
                    "CONC003",
                    f"blocking call {blocking} inside kernel callback "
                    f"{qualname}: stalls virtual time on wall time "
                    "(and can deadlock against the scrape thread)",
                    "kernel callbacks must return immediately; model "
                    "delays with sim.after()")


def _blocking_call(index: _ModuleIndex, node: ast.Call) -> Optional[str]:
    func = node.func
    name = _terminal(func)
    if name == "sleep":
        if isinstance(func, ast.Attribute) and \
                _resolves(index.names, func.value, "time"):
            return "time.sleep()"
        if isinstance(func, ast.Name) and \
                index.names.get(name, "") == "time.sleep":
            return "time.sleep()"
        return None
    if name in ("join", "wait") and isinstance(func, ast.Attribute) and \
            not node.args and not node.keywords:
        return f".{name}() without a timeout"
    if name in ("recv", "accept") and isinstance(func, ast.Attribute):
        timeouts = [kw for kw in node.keywords if kw.arg == "timeout"]
        if not timeouts:
            return f".{name}()"
    return None


# -- plumbing -------------------------------------------------------------


def _all_scopes(index: _ModuleIndex) -> Iterator[Tuple[str, ast.AST]]:
    for name in sorted(index.functions):
        yield name, index.functions[name]
    for class_name in sorted(index.classes):
        info = index.classes[class_name]
        for method_name in sorted(info.methods):
            yield f"{class_name}.{method_name}", info.methods[method_name]


def _class_for(index: _ModuleIndex, qualname: str) -> Optional[_ClassInfo]:
    if "." in qualname:
        return index.classes.get(qualname.split(".", 1)[0])
    return None


def check_concurrency(module: Module) -> List[Finding]:
    """Run all three concurrency checks over one module."""
    if module.tree is None:
        return []
    index = _ModuleIndex(module)
    findings: List[Finding] = []
    findings.extend(_conc001(index))
    findings.extend(_conc002(index))
    findings.extend(_conc003(index))
    return sorted(findings)


class ConcurrencyRule:
    """Rule adapter so the engine runs this pass like any other rule."""

    code = "CONC001"
    name = "concurrency"

    def check(self, module: Module) -> Iterator[Finding]:
        yield from check_concurrency(module)
