"""The determinism rules (DET001...DET006).

Each rule targets one class of reproducibility bug the measurement
infrastructure must never contain: a campaign with seed *s* has to
produce bit-identical results serially, under ``workers=N`` fan-out,
across interpreter restarts and across ``PYTHONHASHSEED`` values.  The
rules are deliberately heuristic -- AST-level, single-function dataflow
at most -- because the point is to catch the common hazards cheaply in
CI, not to prove the absence of nondeterminism.

====== ==================================================================
code   hazard
====== ==================================================================
DET001 bare ``random.*`` / unseeded ``random.Random()`` / global numpy
       randomness outside the named-stream module (``simnet/rng.py``)
DET002 wall-clock reads (``time.time``, ``perf_counter``,
       ``datetime.now``...) -- only the telemetry sampling whitelist in
       the committed baseline may contain these
DET003 iteration over ``set``/``frozenset`` (or ``dict.keys()`` of one)
       without ``sorted()`` where the loop body schedules events or
       draws randomness
DET004 builtin ``hash()`` of interpreter-salted values (str/bytes):
       changes with ``PYTHONHASHSEED``
DET005 ``id()`` used as a sort key: memory-layout-dependent order
DET006 ambient entropy: ``os.environ``/``os.getenv``, ``os.urandom``,
       ``uuid.uuid1/uuid4``, ``secrets.*``
====== ==================================================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .findings import Finding, Module

__all__ = [
    "BareRandomRule", "WallClockRule", "UnorderedIterRule", "HashSeedRule",
    "IdOrderRule", "AmbientEntropyRule", "DEFAULT_RULES", "all_rules",
]

#: module-level ``random`` functions that consume the shared global state
_RANDOM_FUNCS = frozenset({
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "sample", "shuffle", "gauss", "normalvariate", "lognormvariate",
    "expovariate", "betavariate", "gammavariate", "paretovariate",
    "vonmisesvariate", "weibullvariate", "triangular", "getrandbits",
    "randbytes", "seed", "setstate", "getstate", "binomialvariate",
})

#: ``numpy.random`` module-level functions backed by the global RandomState
_NUMPY_GLOBAL_FUNCS = frozenset({
    "random", "rand", "randn", "randint", "random_sample", "ranf",
    "choice", "shuffle", "permutation", "seed", "normal", "uniform",
    "exponential", "poisson", "binomial",
})

#: wall-clock reads on the ``time`` module
_TIME_FUNCS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "localtime",
    "gmtime", "ctime", "asctime",
})

#: wall-clock constructors on ``datetime.datetime`` / ``datetime.date``
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: methods that push work into the event queue
_SCHED_METHODS = frozenset({"at", "after", "every", "push", "schedule"})

#: draw methods of :class:`repro.simnet.rng.SeededStream` (and random.Random)
_RNG_METHODS = frozenset({
    "uniform", "randint", "random", "expovariate", "gauss",
    "lognormvariate", "choice", "choices", "sample", "shuffle",
    "bernoulli", "geometric", "zipf_rank", "bytes",
})


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ImportMap(ast.NodeVisitor):
    """Local name -> dotted origin for imports in one module."""

    def __init__(self) -> None:
        self.names: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.names[alias.asname or alias.name.split(".")[0]] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:  # relative import: never stdlib entropy
            return
        for alias in node.names:
            origin = f"{node.module}.{alias.name}" if node.module else alias.name
            self.names[alias.asname or alias.name] = origin


def _import_map(module: Module) -> Dict[str, str]:
    mapper = _ImportMap()
    mapper.visit(module.tree)
    return mapper.names


def _resolves(module_names: Dict[str, str], node: ast.AST,
              target: str) -> bool:
    """True when the Name/Attribute chain denotes ``target`` (dotted)."""
    chain = _dotted(node)
    if chain is None:
        return False
    head, _, rest = chain.partition(".")
    origin = module_names.get(head)
    if origin is None:
        resolved = chain
    else:
        resolved = origin + ("." + rest if rest else "")
    return resolved == target or chain == target


class BareRandomRule:
    """DET001: global-state randomness outside the named-stream module."""

    code = "DET001"
    name = "bare-random"

    def __init__(self, rng_modules: Tuple[str, ...] = ()) -> None:
        self.rng_modules = rng_modules

    def check(self, module: Module) -> Iterator[Finding]:
        if module.dotted in self.rng_modules:
            return
        names = _import_map(module)
        random_aliases = {local for local, origin in names.items()
                          if origin == "random"}
        from_random = {local: origin.split(".", 1)[1]
                       for local, origin in names.items()
                       if origin.startswith("random.")}
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, random_aliases,
                                            from_random)

    def _check_import(self, module: Module, node: ast.AST
                      ) -> Iterator[Finding]:
        targets = []
        if isinstance(node, ast.Import):
            targets = [a.name for a in node.names
                       if a.name == "random" or a.name.startswith("random.")]
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            targets = [f"random.{a.name}" for a in node.names]
        for target in targets:
            yield Finding(
                module.relpath, node.lineno, node.col_offset, self.code,
                f"import of {target!r} in simulation code",
                "draw from a named stream: Simulator.stream(name) / "
                "repro.simnet.rng.SeededStream")

    def _check_call(self, module: Module, node: ast.Call,
                    random_aliases: Set[str],
                    from_random: Dict[str, str]) -> Iterator[Finding]:
        func = node.func
        # random.<fn>(...) through any import alias
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and \
                func.value.id in (random_aliases | {"random"}):
            if func.attr in _RANDOM_FUNCS:
                yield Finding(
                    module.relpath, node.lineno, node.col_offset, self.code,
                    f"bare random.{func.attr}() uses the process-global "
                    "PRNG state",
                    "use Simulator.stream(name).<draw>() so the draw has a "
                    "named, seeded stream")
            elif func.attr == "Random" and not node.args and not node.keywords:
                yield Finding(
                    module.relpath, node.lineno, node.col_offset, self.code,
                    "random.Random() without a seed is entropy-seeded",
                    "pass an explicit seed derived via "
                    "repro.simnet.rng.derive_seed")
        # from random import shuffle; shuffle(...)
        elif isinstance(func, ast.Name) and func.id in from_random and \
                from_random[func.id] in _RANDOM_FUNCS:
            yield Finding(
                module.relpath, node.lineno, node.col_offset, self.code,
                f"bare {from_random[func.id]}() imported from random",
                "use Simulator.stream(name).<draw>()")
        # np.random.<fn>(...) global numpy state
        elif isinstance(func, ast.Attribute) and \
                func.attr in _NUMPY_GLOBAL_FUNCS and \
                isinstance(func.value, ast.Attribute) and \
                func.value.attr == "random" and \
                isinstance(func.value.value, ast.Name) and \
                func.value.value.id in ("np", "numpy"):
            yield Finding(
                module.relpath, node.lineno, node.col_offset, self.code,
                f"numpy global-state randomness np.random.{func.attr}()",
                "use np.random.default_rng(seed) with an explicit seed")


class WallClockRule:
    """DET002: wall-clock reads.

    Simulation code must tell time with ``Simulator.now`` (virtual
    seconds).  The only place real time may leak in is the telemetry
    sampling whitelist, carried by the committed baseline file -- this
    rule itself flags *every* read.
    """

    code = "DET002"
    name = "wall-clock"

    def check(self, module: Module) -> Iterator[Finding]:
        names = _import_map(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            target = None
            if isinstance(func, ast.Attribute) and func.attr in _TIME_FUNCS \
                    and _resolves(names, func.value, "time"):
                target = f"time.{func.attr}"
            elif isinstance(func, ast.Name):
                origin = names.get(func.id, "")
                if origin.startswith("time.") and \
                        origin.split(".", 1)[1] in _TIME_FUNCS:
                    target = origin
            if target is None and isinstance(func, ast.Attribute) and \
                    func.attr in _DATETIME_FUNCS:
                base = func.value
                if _resolves(names, base, "datetime.datetime") or \
                        _resolves(names, base, "datetime.date"):
                    target = f"datetime.{func.attr}"
            if target is not None:
                yield Finding(
                    module.relpath, node.lineno, node.col_offset, self.code,
                    f"wall-clock read {target}() in simulation code",
                    "use Simulator.now (virtual time); telemetry sampling "
                    "belongs in the baseline whitelist")


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    """Heuristic: does this expression evaluate to a set/frozenset?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and \
            node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and \
            isinstance(node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)):
        # a & b etc. stays a set when either side is one
        return _is_set_expr(node.left, set_names) or \
            _is_set_expr(node.right, set_names)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr in ("union", "intersection", "difference",
                                   "symmetric_difference", "copy") \
            and _is_set_expr(node.func.value, set_names):
        return True
    return False


def _is_unordered_iter(node: ast.AST, set_names: Set[str]) -> bool:
    """Set-typed iterable, or ``.keys()`` of one, not wrapped in sorted()."""
    if _is_set_expr(node, set_names):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr == "keys" and \
            _is_set_expr(node.func.value, set_names):
        return True
    return False


def _has_sink_call(body: List[ast.stmt]) -> Optional[str]:
    """Name of the first scheduling/RNG call inside ``body``, if any."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute):
                if node.func.attr in _SCHED_METHODS:
                    return f"scheduling call .{node.func.attr}()"
                if node.func.attr in _RNG_METHODS:
                    return f"RNG draw .{node.func.attr}()"
    return None


def _walk_scope(body: List[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function scopes."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue  # a different scope: it gets its own pass
        stack.extend(ast.iter_child_nodes(node))


def _iter_stmts_ordered(body: List[ast.stmt]) -> Iterator[ast.stmt]:
    """Statements in source order, not descending into nested scopes."""
    for node in body:
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        for block in ("body", "orelse", "finalbody"):
            inner = getattr(node, block, None)
            if inner:
                yield from _iter_stmts_ordered(inner)
        for handler in getattr(node, "handlers", ()):
            yield from _iter_stmts_ordered(handler.body)


class UnorderedIterRule:
    """DET003: unordered set iteration feeding the scheduler or RNG.

    ``for peer in peers_set: sim.after(...)`` executes in hash order --
    a different order (and therefore a different event interleaving or
    draw sequence) every interpreter run.  Wrapping the iterable in
    ``sorted()`` fixes it.  Single-function heuristic: the iterable
    must be recognisably set-typed and the loop body must contain a
    scheduling or draw call.
    """

    code = "DET003"
    name = "unordered-iteration"

    def check(self, module: Module) -> Iterator[Finding]:
        scopes: List = [module.tree]
        scopes.extend(node for node in ast.walk(module.tree)
                      if isinstance(node, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)))
        for scope in scopes:
            set_names: Set[str] = set()
            # two passes so chains like ``a = set(); b = a`` resolve
            # regardless of traversal order
            for _ in range(2):
                for node in _walk_scope(scope.body):
                    if isinstance(node, ast.Assign) and \
                            _is_set_expr(node.value, set_names):
                        set_names.update(t.id for t in node.targets
                                         if isinstance(t, ast.Name))
                    elif isinstance(node, ast.AnnAssign) and \
                            isinstance(node.target, ast.Name) and \
                            node.value is not None and \
                            _is_set_expr(node.value, set_names):
                        set_names.add(node.target.id)
            # third pass, in source order: a name rebound to a non-set
            # value (``s = sorted(s)``) stops being set-typed from that
            # point on -- without the kill, the sorted copy kept firing
            for node in _iter_stmts_ordered(scope.body):
                if isinstance(node, ast.Assign):
                    is_set = _is_set_expr(node.value, set_names)
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            (set_names.add if is_set
                             else set_names.discard)(target.id)
                elif isinstance(node, ast.AnnAssign) and \
                        isinstance(node.target, ast.Name) and \
                        node.value is not None:
                    if _is_set_expr(node.value, set_names):
                        set_names.add(node.target.id)
                    else:
                        set_names.discard(node.target.id)
            for node in _walk_scope(scope.body):
                if isinstance(node, ast.For) and \
                        _is_unordered_iter(node.iter, set_names):
                    sink = _has_sink_call(node.body)
                    if sink:
                        yield Finding(
                            module.relpath, node.lineno, node.col_offset,
                            self.code,
                            "iteration over an unordered set reaches a "
                            f"{sink}: order depends on hash seed",
                            "iterate sorted(<set>) so the event/draw order "
                            "is stable")
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.GeneratorExp)):
                    for gen in node.generators:
                        if _is_unordered_iter(gen.iter, set_names) and \
                                _comp_has_sink(node):
                            yield Finding(
                                module.relpath, node.lineno, node.col_offset,
                                self.code,
                                "comprehension over an unordered set feeds "
                                "a scheduling/RNG call",
                                "wrap the iterable in sorted()")


def _comp_has_sink(comp: ast.AST) -> bool:
    for node in ast.walk(comp):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in (_SCHED_METHODS | _RNG_METHODS):
            return True
    return False


class HashSeedRule:
    """DET004: builtin ``hash()`` -- salted per process for str/bytes."""

    code = "DET004"
    name = "hash-seed"

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id == "hash" and len(node.args) == 1:
                arg = node.args[0]
                if isinstance(arg, ast.Constant) and \
                        isinstance(arg.value, (int, float)):
                    continue  # numeric hash is PYTHONHASHSEED-stable
                yield Finding(
                    module.relpath, node.lineno, node.col_offset, self.code,
                    "builtin hash() of a (potential) str/bytes value varies "
                    "with PYTHONHASHSEED",
                    "use zlib.crc32(value.encode()) or "
                    "repro.simnet.rng.derive_seed for stable hashing")


class IdOrderRule:
    """DET005: ``id()`` as an ordering key -- allocation-order dependent."""

    code = "DET005"
    name = "id-order"

    _ORDER_FUNCS = frozenset({"sorted", "min", "max"})

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            is_order_call = (
                (isinstance(node.func, ast.Name) and
                 node.func.id in self._ORDER_FUNCS) or
                (isinstance(node.func, ast.Attribute) and
                 node.func.attr == "sort"))
            if not is_order_call:
                continue
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                if self._uses_id(keyword.value):
                    yield Finding(
                        module.relpath, node.lineno, node.col_offset,
                        self.code,
                        "id() used as a sort key: order follows memory "
                        "layout, not data",
                        "sort by a stable attribute (name, sequence "
                        "number) instead")

    @staticmethod
    def _uses_id(key: ast.AST) -> bool:
        if isinstance(key, ast.Name) and key.id == "id":
            return True
        if isinstance(key, ast.Lambda):
            return any(isinstance(sub, ast.Call) and
                       isinstance(sub.func, ast.Name) and sub.func.id == "id"
                       for sub in ast.walk(key.body))
        return False


class AmbientEntropyRule:
    """DET006: entropy from the environment the seed does not control."""

    code = "DET006"
    name = "ambient-entropy"

    def check(self, module: Module) -> Iterator[Finding]:
        names = _import_map(module)
        for node in ast.walk(module.tree):
            found = None
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    if func.attr == "urandom" and \
                            _resolves(names, func.value, "os"):
                        found = ("os.urandom()", "draw bytes from "
                                 "Simulator.stream(name).bytes(n)")
                    elif func.attr == "getenv" and \
                            _resolves(names, func.value, "os"):
                        found = ("os.getenv()", "thread configuration "
                                 "through CampaignConfig instead")
                    elif func.attr in ("uuid1", "uuid4") and \
                            _resolves(names, func.value, "uuid"):
                        found = (f"uuid.{func.attr}()",
                                 "derive ids from the seed "
                                 "(repro.simnet.rng.derive_seed) or a "
                                 "counter")
                    elif func.attr == "get" and \
                            _resolves(names, func.value, "os.environ"):
                        found = ("os.environ.get()", "thread configuration "
                                 "through CampaignConfig instead")
                    elif _resolves(names, func.value, "secrets"):
                        found = (f"secrets.{func.attr}()",
                                 "simulation code never needs "
                                 "cryptographic entropy")
                elif isinstance(func, ast.Name):
                    origin = names.get(func.id, "")
                    if origin in ("os.urandom", "uuid.uuid1", "uuid.uuid4") \
                            or origin.startswith("secrets."):
                        found = (f"{origin}()",
                                 "derive from the campaign seed instead")
            elif isinstance(node, ast.Subscript) and \
                    _resolves(names, node.value, "os.environ"):
                found = ("os.environ[...]", "thread configuration through "
                         "CampaignConfig instead")
            if found:
                yield Finding(
                    module.relpath, node.lineno, node.col_offset, self.code,
                    f"ambient entropy source {found[0]} in simulation code",
                    found[1])


def all_rules(rng_modules: Tuple[str, ...]) -> List:
    """One instance of every determinism rule, in code order."""
    return [
        BareRandomRule(rng_modules=rng_modules),
        WallClockRule(),
        UnorderedIterRule(),
        HashSeedRule(),
        IdOrderRule(),
        AmbientEntropyRule(),
    ]


DEFAULT_RULES = ("DET001", "DET002", "DET003", "DET004", "DET005", "DET006")
