"""Fuzz/robustness tests: hostile bytes must fail *cleanly*.

Both protocol stacks parse data from arbitrary peers, so every decoder
must either return a value or raise its module's typed error -- never an
unrelated exception -- and node message handlers must swallow garbage
while counting it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnutella.ggep import GgepError, decode_ggep
from repro.gnutella.handshake import HandshakeError, HandshakeMessage
from repro.gnutella.messages import MessageError, parse_frame
from repro.gnutella.qrp import decode_qrp
from repro.openft.packets import PacketError, decode_packet
from repro.transfer.http import HttpError, HttpRequest, HttpResponse

_settings = settings(max_examples=200, deadline=None)


@given(st.binary(max_size=200))
@_settings
def test_gnutella_frame_parser_total(data):
    try:
        parse_frame(data)
    except MessageError:
        pass


@given(st.binary(max_size=200))
@_settings
def test_openft_packet_parser_total(data):
    try:
        decode_packet(data)
    except PacketError:
        pass


@given(st.binary(max_size=200))
@_settings
def test_ggep_parser_total(data):
    try:
        decode_ggep(data)
    except GgepError:
        pass


@given(st.binary(max_size=200))
@_settings
def test_qrp_parser_total(data):
    try:
        decode_qrp(data)
    except ValueError:
        pass


@given(st.binary(max_size=200))
@_settings
def test_handshake_parser_total(data):
    try:
        HandshakeMessage.decode(data)
    except HandshakeError:
        pass


@given(st.binary(max_size=200))
@_settings
def test_http_parsers_total(data):
    for parser in (HttpRequest.decode, HttpResponse.decode):
        try:
            parser(data)
        except HttpError:
            pass


class TestNodesSwallowGarbage:
    def test_gnutella_servent(self, sim):
        from repro.gnutella.servent import GnutellaServent
        from repro.simnet.addresses import AddressAllocator
        from repro.simnet.rng import SeededStream
        from repro.simnet.transport import Transport

        transport = Transport(sim)
        allocator = AddressAllocator(sim.stream("a"))
        servent = GnutellaServent(sim, transport, "victim",
                                  allocator.allocate(), role="ultrapeer")
        transport.attach("attacker", lambda env: None)
        stream = SeededStream(13, "fuzz")
        for _ in range(100):
            transport.send("attacker", "victim",
                           stream.bytes(stream.randint(0, 80)))
        sim.run_until(60.0)
        assert servent.stats.decode_errors == 100
        assert servent.is_online()

    def test_openft_node(self, sim):
        from repro.openft.constants import CLASS_SEARCH
        from repro.openft.nodes import OpenFTNode
        from repro.simnet.addresses import AddressAllocator
        from repro.simnet.rng import SeededStream
        from repro.simnet.transport import Transport

        transport = Transport(sim)
        allocator = AddressAllocator(sim.stream("a"))
        node = OpenFTNode(sim, transport, "victim", allocator.allocate(),
                          klass=CLASS_SEARCH)
        transport.attach("attacker", lambda env: None)
        stream = SeededStream(14, "fuzz")
        for _ in range(100):
            transport.send("attacker", "victim",
                           stream.bytes(stream.randint(0, 80)))
        sim.run_until(60.0)
        assert node.stats.decode_errors == 100
