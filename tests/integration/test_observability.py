"""The observability plane is read-only: serving changes nothing.

Replays the same campaign with the HTTP server off and with it on --
while scraper threads hammer the endpoints mid-run -- and demands the
kernel :class:`EventDigest` and the measurement store's sha256 stay
bit-identical.  This is the acceptance gate for the whole plane: the
hub may only ever snapshot, never schedule.
"""

import json
import threading
import urllib.request

import pytest

from repro.core.measure.campaign import (CampaignConfig,
                                         run_limewire_campaign,
                                         run_openft_campaign)
from repro.devtools.sanitizer import EventDigest
from repro.peers.profiles import GnutellaProfile, OpenFTProfile
from repro.telemetry import CampaignTelemetry

RUNNERS = {
    "limewire": (run_limewire_campaign, GnutellaProfile),
    "openft": (run_openft_campaign, OpenFTProfile),
}


def run_campaign(network, tmp_path, *, serve):
    """One full campaign; returns (digest hex, store sha, scrape count)."""
    runner, profile_cls = RUNNERS[network]
    telemetry = CampaignTelemetry.for_directory(
        tmp_path / ("on" if serve else "off"), network)
    digest = EventDigest()
    telemetry.kernel.on_event = digest.on_event
    config = CampaignConfig(seed=13, duration_days=0.05)
    profile = profile_cls().scaled(0.35)

    scrapes = [0]
    if not serve:
        runner(config, profile, telemetry=telemetry)
        return digest.hexdigest(), None, scrapes[0]

    server = telemetry.serve(port=0, name=network)
    stop = threading.Event()

    def scraper():
        while not stop.is_set():
            for route in ("metrics", "healthz", "snapshot.json",
                          "dashboard.json", "journal", "hotspots.json"):
                try:
                    with urllib.request.urlopen(server.url + route,
                                                timeout=10) as response:
                        assert response.status == 200
                        response.read()
                    scrapes[0] += 1
                except (OSError, AssertionError):
                    pass
            stop.wait(0.02)

    threads = [threading.Thread(target=scraper, daemon=True)
               for _ in range(3)]
    try:
        for thread in threads:
            thread.start()
        result = runner(config, profile, telemetry=telemetry)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        server.stop()
    return (digest.hexdigest(), result.store.content_digest(),
            scrapes[0])


class TestServerEquivalence:
    @pytest.mark.parametrize("network", ["limewire", "openft"])
    def test_digest_and_store_identical_with_server_on(self, network,
                                                       tmp_path):
        off_digest, _store, _scrapes = run_campaign(network, tmp_path,
                                                    serve=False)
        on_digest, on_store, scrapes = run_campaign(network, tmp_path,
                                                    serve=True)
        assert scrapes > 0, "server was never scraped mid-run"
        assert on_digest == off_digest
        assert on_store is not None

    def test_store_sha_matches_a_bare_rerun(self, tmp_path):
        # same seed without any telemetry at all: the store must land
        # on the same content digest the served run produced
        runner, profile_cls = RUNNERS["limewire"]
        _digest, served_store, _scrapes = run_campaign(
            "limewire", tmp_path, serve=True)
        bare = runner(CampaignConfig(seed=13, duration_days=0.05),
                      profile_cls().scaled(0.35))
        assert bare.store.content_digest() == served_store

    def test_trace_file_written_and_loadable(self, tmp_path):
        telemetry = CampaignTelemetry.for_directory(tmp_path, "limewire")
        runner, profile_cls = RUNNERS["limewire"]
        runner(CampaignConfig(seed=13, duration_days=0.02),
               profile_cls().scaled(0.35), telemetry=telemetry)
        written = telemetry.write_outputs(tmp_path, "limewire")
        payload = json.loads(written["trace"].read_text())
        assert payload["traceEvents"]
        assert payload["otherData"]["spans_recorded"] > 0
