"""Determinism contract of the sharded campaign kernel.

The three load-bearing claims, each proven directly on both networks:

* ``shards=1`` is bit-identical to the plain kernel -- event digest,
  store sha256 and headline metrics, with telemetry on and off, and
  also when forced through the full conservative-window loop;
* N-shard stores are invariant in N (N=2 == N=3 for a fixed seed);
* the process executor computes exactly what the serial twin does.

Campaigns here are deliberately tiny (~half a virtual hour): every
property is bitwise, so scale adds runtime without adding evidence.
"""

from dataclasses import replace

import pytest

from repro.core.experiments import replicate_one
from repro.core.measure.campaign import (CampaignConfig, default_profile,
                                         run_limewire_campaign,
                                         run_openft_campaign)
from repro.core.sharded import (ShardPlan, combine_shard_digests,
                                plan_for_world, run_sharded_campaign)
from repro.devtools.sanitizer import EventDigest
from repro.simnet.shard import window_run_target
from repro.telemetry.runtime import CampaignTelemetry

SEED = 3
PLAIN_RUNNERS = {"limewire": run_limewire_campaign,
                 "openft": run_openft_campaign}


def tiny_config(**overrides) -> CampaignConfig:
    base = dict(seed=SEED, duration_days=0.02, drain_s=300.0)
    base.update(overrides)
    return CampaignConfig(**base)


def plain_campaign(network, with_digest=False):
    telemetry = None
    digest = None
    if with_digest:
        telemetry = CampaignTelemetry()
        digest = EventDigest()
        telemetry.kernel.on_event = digest.on_event
    result = PLAIN_RUNNERS[network](tiny_config(),
                                    profile=default_profile(network, 0.3),
                                    telemetry=telemetry)
    return result, digest


def sharded_campaign(network, shards=1, executor="serial", **kwargs):
    return run_sharded_campaign(
        network, tiny_config(shards=shards),
        profile=default_profile(network, 0.3), executor=executor, **kwargs)


@pytest.mark.parametrize("network", ("limewire", "openft"))
class TestSingleShardBitIdentity:
    def test_store_and_metrics_match_plain(self, network):
        plain, _ = plain_campaign(network)
        single = sharded_campaign(network, shards=1)
        assert single.store.content_digest() == plain.store.content_digest()
        assert len(single.store) == len(plain.store)
        assert single.shards.nshards == 1
        assert single.shards.windows == 0  # degenerate: no window loop

    def test_event_digest_matches_plain(self, network):
        plain, digest = plain_campaign(network, with_digest=True)
        telemetry = CampaignTelemetry()
        single = sharded_campaign(network, shards=1, telemetry=telemetry,
                                  collect_digest=True)
        assert single.shards.digest == digest.hexdigest()
        assert single.store.content_digest() == plain.store.content_digest()

    def test_forced_window_loop_is_still_identical(self, network):
        # force_windows runs the real conservative-window machinery with
        # one shard: proves the window algebra itself changes nothing
        plain, digest = plain_campaign(network, with_digest=True)
        windowed = sharded_campaign(network, shards=1,
                                    telemetry=CampaignTelemetry(),
                                    collect_digest=True, force_windows=True)
        assert windowed.shards.windows > 0
        assert windowed.shards.digest == digest.hexdigest()
        assert (windowed.store.content_digest()
                == plain.store.content_digest())


@pytest.mark.parametrize("network", ("limewire", "openft"))
class TestShardCountInvariance:
    def test_store_digest_invariant_in_n(self, network):
        two = sharded_campaign(network, shards=2)
        three = sharded_campaign(network, shards=3)
        assert two.store.content_digest() == three.store.content_digest()
        assert len(two.store) > 0

    def test_same_n_replays_identically(self, network):
        first = sharded_campaign(network, shards=2, telemetry=None)
        second = sharded_campaign(network, shards=2,
                                  telemetry=CampaignTelemetry())
        # telemetry is read-only for the sharded kernel too
        assert (first.store.content_digest()
                == second.store.content_digest())


class TestProcessExecutor:
    def test_process_matches_serial(self):
        serial = sharded_campaign("limewire", shards=2, executor="serial")
        process = sharded_campaign("limewire", shards=2, executor="process")
        assert process.shards.executor == "process"
        assert (process.store.content_digest()
                == serial.store.content_digest())
        assert process.shards.windows == serial.shards.windows

    def test_cross_shard_tallies_are_symmetric(self):
        result = sharded_campaign("limewire", shards=2, executor="process")
        sent = sum(entry["cross_sent"] for entry in result.shards.shards)
        received = sum(entry["cross_received"]
                       for entry in result.shards.shards)
        assert sent == received > 0


class TestCampaignDispatch:
    def test_config_shards_routes_through_sharded_driver(self):
        result = run_limewire_campaign(
            tiny_config(shards=2), profile=default_profile("limewire", 0.3),
            shard_executor="serial")
        direct = sharded_campaign("limewire", shards=2)
        assert result.shards is not None
        assert result.shards.nshards == 2
        assert result.store.content_digest() == direct.store.content_digest()

    def test_shards_must_be_positive(self):
        with pytest.raises(ValueError):
            CampaignConfig(shards=0)

    def test_replicate_one_reports_shard_fingerprints(self):
        out = replicate_one("limewire", tiny_config(shards=2),
                            default_profile("limewire", 0.3), SEED,
                            shard_executor="serial")
        metrics, snapshot, shards = out
        assert snapshot is None  # no telemetry_dir
        assert [entry["shard"] for entry in shards] == [0, 1]
        assert all(len(entry["fingerprint"]) == 16 for entry in shards)
        assert set(metrics) == {"prevalence", "top3_share", "private_share"}


class TestShardPrimitives:
    def test_plan_round_robins_groups(self):
        plan = ShardPlan.from_groups(2, [["u0", "l0"], ["u1"], ["u2", "l2"]])
        assert plan.owner_of("u0") == plan.owner_of("l0") == 0
        assert plan.owner_of("u1") == 1
        assert plan.owner_of("u2") == plan.owner_of("l2") == 0
        assert plan.owner_of("crawler") == 0  # unmapped -> default shard

    def test_window_target_is_end_exclusive(self):
        assert window_run_target(10.0) < 10.0

    def test_combine_single_digest_passes_through(self):
        assert combine_shard_digests(["abc"]) == "abc"
        assert combine_shard_digests(["abc", "def"]) not in ("abc", "def")
        assert combine_shard_digests([None, "abc"]) is None

    def test_plan_for_world_keeps_leaves_with_their_ultrapeer(self):
        plain, _ = plain_campaign("limewire")
        world = plain.world
        plan = plan_for_world("limewire", world, 2)
        hubs = {hub.endpoint_id: plan.owner_of(hub.endpoint_id)
                for hub in world.network.ultrapeers}
        assert set(hubs.values()) == {0, 1}  # both shards populated
        for leaf in world.network.leaves:
            shields = [pid for pid in leaf.peer_ids if pid in hubs]
            if shields:
                assert (plan.owner_of(leaf.endpoint_id)
                        == hubs[shields[0]])
