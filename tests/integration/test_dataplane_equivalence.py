"""Golden-digest proof that the data-plane fast path changes nothing.

Every test here replays the same campaign on the fast twins
(encode-once fan-out, lazy decode, args-carrying delivery events) and
on the reference twins (per-send re-encode, eager decode, closure
deliveries) and demands bit-identical outcomes: the kernel
:class:`EventDigest`, the measurement store's sha256, and the headline
metrics.  Variants cover both networks, telemetry on and off, and an
armed :class:`FaultPlan` -- the injector tap must keep seeing every
fan-out envelope individually.
"""

import pytest

from repro.core.experiments import HEADLINE_METRICS
from repro.core.measure.campaign import (CampaignConfig,
                                         run_limewire_campaign,
                                         run_openft_campaign)
from repro.devtools.selfcheck import run_equivalence_check
from repro.faults import FaultPlan, LossBurst
from repro.peers.profiles import GnutellaProfile, OpenFTProfile
from repro.simnet import fastpath
from repro.simnet.kernel import Simulator
from repro.simnet.transport import LatencyModel, Transport


class TestGoldenDigests:
    """Fast vs reference with full telemetry + kernel digest attached."""

    @pytest.mark.parametrize("network,seed", [
        ("limewire", 5), ("limewire", 23), ("openft", 5),
    ])
    def test_fast_path_is_bit_identical(self, network, seed):
        check = run_equivalence_check(network, seed, days=0.05, scale=0.3)
        assert check.ok, check.render()
        assert check.events > 0

    def test_check_restores_the_fast_path(self):
        run_equivalence_check("limewire", 5, days=0.02, scale=0.25)
        assert not fastpath.slow_path_enabled()


def _campaign_fingerprint(runner, profile, config):
    result = runner(config, profile=profile)
    network = result.store.network
    metrics = {name: fn(result)
               for name, fn in HEADLINE_METRICS[network].items()}
    injected = dict(result.faults.injected) if result.faults else None
    return result.store.content_digest(), metrics, injected


def _both_planes(runner, profile, config):
    fast = _campaign_fingerprint(runner, profile, config)
    with fastpath.use_slow_path():
        slow = _campaign_fingerprint(runner, profile, config)
    return fast, slow


class TestWithoutTelemetry:
    """The digest harness rides telemetry; prove equivalence bare too."""

    def test_limewire(self):
        fast, slow = _both_planes(
            run_limewire_campaign, GnutellaProfile().scaled(0.3),
            CampaignConfig(seed=9, duration_days=0.05))
        assert fast == slow

    def test_openft(self):
        fast, slow = _both_planes(
            run_openft_campaign, OpenFTProfile().scaled(0.3),
            CampaignConfig(seed=9, duration_days=0.05))
        assert fast == slow


class TestUnderFaults:
    def test_limewire_with_loss_burst(self):
        """Same drops, same survivors, same injector tallies both planes."""
        plan = FaultPlan(clauses=(LossBurst(start_s=100.0, end_s=2000.0,
                                            loss_rate=0.25),))
        config = CampaignConfig(seed=13, duration_days=0.05,
                                fault_plan=plan)
        fast, slow = _both_planes(run_limewire_campaign,
                                  GnutellaProfile().scaled(0.3), config)
        assert fast == slow
        _digest, _metrics, injected = fast
        assert injected and injected.get("loss", 0) > 0

    def test_injector_tap_sees_each_fanout_send(self):
        """send_many must schedule one interceptable delivery per
        receiver -- a batched delivery would let one loss draw kill (or
        spare) the whole fan-out."""
        from repro.faults.injectors import FaultInjector

        sim = Simulator(seed=4)
        transport = Transport(sim, LatencyModel())
        plan = FaultPlan(clauses=(LossBurst(start_s=0.0, end_s=60.0,
                                            loss_rate=1.0),))
        injector = FaultInjector(sim, transport, plan, protect=())
        injector.install()

        delivered = []
        transport.attach("src", lambda e: None)
        for peer in ("a", "b", "c"):
            transport.attach(peer, delivered.append)
        queued = transport.send_many("src", ("a", "b", "c"), b"payload")
        assert queued == 3
        sim.run_until(30.0)
        assert injector.injected.get("loss") == 3  # one draw per envelope
        assert delivered == []
        assert transport.drop_causes["fault-injected"] == 3
