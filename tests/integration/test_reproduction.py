"""Integration tests: the paper's headline claims, within shape bands.

These run against the shared 1-virtual-day campaigns (seed fixed in
conftest).  Bands follow DESIGN.md: we reproduce shapes, not the exact
2006 numbers.
"""

import pytest

from repro.core.analysis.concentration import top_malware, top_n_share
from repro.core.analysis.prevalence import compute_prevalence
from repro.core.analysis.sizes import size_dictionary
from repro.core.analysis.sources import (address_breakdown,
                                         host_concentration,
                                         top_host_share)
from repro.core.analysis.timeseries import daily_series
from repro.core.filtering.evaluate import evaluate_filter
from repro.core.filtering.existing import ExistingLimewireFilter
from repro.core.filtering.sizefilter import SizeBasedFilter
from repro.malware.corpus import limewire_strains


class TestC1Prevalence:
    def test_limewire_prevalence_band(self, limewire_campaign):
        # paper: 68%
        fraction = compute_prevalence(limewire_campaign.store).fraction
        assert 0.55 <= fraction <= 0.80

    def test_openft_prevalence_band(self, openft_campaign):
        # paper: 3%
        fraction = compute_prevalence(openft_campaign.store).fraction
        assert 0.01 <= fraction <= 0.08

    def test_limewire_dwarfs_openft(self, limewire_campaign,
                                    openft_campaign):
        assert (compute_prevalence(limewire_campaign.store).fraction
                > 8 * compute_prevalence(openft_campaign.store).fraction)


class TestC2Concentration:
    def test_limewire_top3_band(self, limewire_campaign):
        # paper: 99%
        assert top_n_share(limewire_campaign.store, 3) >= 0.95

    def test_openft_top3_band(self, openft_campaign):
        # paper: 75%
        assert 0.60 <= top_n_share(openft_campaign.store, 3) <= 0.92

    def test_limewire_sees_a_strain_tail(self, limewire_campaign):
        # more strains than the top three appear in the data
        assert len(top_malware(limewire_campaign.store)) >= 5


class TestC3PrivateSources:
    def test_private_share_band(self, limewire_campaign):
        # paper: 28%
        breakdown = address_breakdown(limewire_campaign.store)
        assert 0.18 <= breakdown.fraction("private") <= 0.36

    def test_no_loopback_or_reserved_sources(self, limewire_campaign):
        breakdown = address_breakdown(limewire_campaign.store)
        assert breakdown.counts.get("loopback", 0) == 0
        assert breakdown.counts.get("reserved", 0) == 0


class TestC4SingleHost:
    def test_top_openft_strain_from_single_host(self, openft_campaign):
        # paper: the top virus (67% of malicious responses) is served by a
        # single host
        rows = top_malware(openft_campaign.store)
        assert rows, "OpenFT campaign saw no malware"
        top_strain = rows[0].name
        assert rows[0].share >= 0.45
        assert top_host_share(openft_campaign.store,
                              top_strain) == pytest.approx(1.0)

    def test_limewire_malware_is_diffuse(self, limewire_campaign):
        # contrast: Limewire's worms spread over many hosts
        assert top_host_share(limewire_campaign.store) < 0.15
        assert len(host_concentration(limewire_campaign.store)) > 30


class TestC5C6Filtering:
    def test_existing_filter_band(self, limewire_campaign):
        # paper: ~6%
        existing = ExistingLimewireFilter.stale_blocklist(limewire_strains())
        report = evaluate_filter(existing, limewire_campaign.store)
        assert 0.02 <= report.detection_rate <= 0.12

    def test_size_filter_band(self, limewire_campaign):
        # paper: >99% detection, very low false positives
        size_filter = SizeBasedFilter.learn(limewire_campaign.store)
        report = evaluate_filter(size_filter, limewire_campaign.store)
        assert report.detection_rate >= 0.99
        assert report.false_positive_rate <= 0.01

    def test_size_filter_beats_existing_by_an_order(self, limewire_campaign):
        existing = evaluate_filter(
            ExistingLimewireFilter.stale_blocklist(limewire_strains()),
            limewire_campaign.store)
        size = evaluate_filter(SizeBasedFilter.learn(limewire_campaign.store),
                               limewire_campaign.store)
        assert size.detection_rate > 8 * existing.detection_rate

    def test_size_dictionary_is_tiny(self, limewire_campaign):
        # the whole point: a handful of integers covers the epidemic
        profiles = size_dictionary(limewire_campaign.store, top_n=3)
        total_sizes = sum(len(profile.common_sizes) for profile in profiles)
        assert total_sizes <= 6


class TestF3Stability:
    def test_daily_shares_stable(self, limewire_campaign):
        points = [point for point in daily_series(limewire_campaign.store)
                  if point.downloadable > 50]
        assert points
        shares = [point.malicious_share for point in points]
        assert max(shares) - min(shares) < 0.25
