"""Failure injection: the measurement under a lossy overlay.

5% message loss breaks individual floods and share syncs, but the
paper's shapes are ratios over thousands of responses -- they must
survive (the 2006 Internet was not lossless either).
"""

from dataclasses import replace

import pytest

from repro.core.analysis.concentration import top_n_share
from repro.core.analysis.prevalence import compute_prevalence
from repro.core.measure import (CampaignConfig, run_limewire_campaign,
                                run_openft_campaign)
from repro.peers.profiles import GnutellaProfile, OpenFTProfile


@pytest.fixture(scope="module")
def lossy_limewire():
    return run_limewire_campaign(
        CampaignConfig(seed=6, duration_days=0.5),
        profile=replace(GnutellaProfile().scaled(0.5), loss_rate=0.05))


class TestLossyLimewire:
    def test_responses_still_collected(self, lossy_limewire):
        assert len(lossy_limewire.store) > 500

    def test_messages_actually_dropped(self, lossy_limewire):
        transport = lossy_limewire.world.transport
        assert transport.dropped > 0.02 * transport.delivered

    def test_prevalence_band_holds(self, lossy_limewire):
        fraction = compute_prevalence(lossy_limewire.store).fraction
        assert 0.50 <= fraction <= 0.85

    def test_concentration_holds(self, lossy_limewire):
        assert top_n_share(lossy_limewire.store, 3) >= 0.95


class TestLossyOpenFT:
    def test_campaign_survives_loss(self):
        result = run_openft_campaign(
            CampaignConfig(seed=6, duration_days=0.5),
            profile=replace(OpenFTProfile().scaled(0.5), loss_rate=0.05))
        assert len(result.store) > 100
        fraction = compute_prevalence(result.store).fraction
        assert 0.0 <= fraction <= 0.15
