"""Whole-campaign determinism: same seed, bit-identical measurement.

The strongest regression property the reproduction offers: every table
in EXPERIMENTS.md is a pure function of (seed, config, profile).
"""

from repro.core.measure import (CampaignConfig, run_limewire_campaign,
                                run_openft_campaign)
from repro.peers.profiles import GnutellaProfile, OpenFTProfile


def _snapshot(store):
    return [record.to_json() for record in store]


class TestCampaignDeterminism:
    def test_limewire_identical_runs(self):
        config = CampaignConfig(seed=17, duration_days=0.2)
        profile = GnutellaProfile().scaled(0.4)
        first = run_limewire_campaign(config, profile=profile)
        second = run_limewire_campaign(config, profile=profile)
        assert first.store.queries_issued == second.store.queries_issued
        assert _snapshot(first.store) == _snapshot(second.store)

    def test_limewire_seed_changes_world(self):
        profile = GnutellaProfile().scaled(0.4)
        first = run_limewire_campaign(
            CampaignConfig(seed=17, duration_days=0.2), profile=profile)
        second = run_limewire_campaign(
            CampaignConfig(seed=18, duration_days=0.2), profile=profile)
        assert _snapshot(first.store) != _snapshot(second.store)

    def test_openft_identical_runs(self):
        config = CampaignConfig(seed=17, duration_days=0.2)
        profile = OpenFTProfile().scaled(0.4)
        first = run_openft_campaign(config, profile=profile)
        second = run_openft_campaign(config, profile=profile)
        assert _snapshot(first.store) == _snapshot(second.store)
