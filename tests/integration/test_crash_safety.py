"""End-to-end crash safety: SIGKILL a live campaign, resume, same bits.

The unit tests in ``tests/resilience`` prove the frame format recovers
from truncation at every byte offset; this module proves the claim at
the process level -- a real child interpreter running a real
replication campaign, killed with SIGKILL at an arbitrary moment, whose
checkpoint then resumes to a report bit-identical to an uninterrupted
run.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.experiments import run_replications
from repro.core.measure.campaign import CampaignConfig
from repro.peers.profiles import GnutellaProfile
from repro.resilience import scan_frames

SEEDS = (1, 2, 3, 4, 5, 6)
PROFILE = GnutellaProfile().scaled(0.3)

CHILD_SCRIPT = """
import sys
from repro.core.experiments import run_replications
from repro.core.measure.campaign import CampaignConfig
from repro.peers.profiles import GnutellaProfile

run_replications("limewire", seeds={seeds!r},
                 config=CampaignConfig(seed=0, duration_days=0.05),
                 profile=GnutellaProfile().scaled(0.3),
                 workers=1, checkpoint={journal!r})
print("COMPLETED")
"""


def child_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def reference_report(tmp_path):
    """Uninterrupted run of the same campaign (fresh journal)."""
    journal = tmp_path / "reference.jsonl"
    report = run_replications(
        "limewire", seeds=SEEDS,
        config=CampaignConfig(seed=0, duration_days=0.05),
        profile=PROFILE, workers=1, checkpoint=journal)
    return report, journal


class TestSigkillMidCampaign:
    def test_resume_after_sigkill_is_bit_identical(self, tmp_path):
        journal = tmp_path / "killed.jsonl"
        script = CHILD_SCRIPT.format(seeds=SEEDS, journal=str(journal))
        child = subprocess.Popen([sys.executable, "-c", script],
                                 env=child_env(),
                                 stdout=subprocess.PIPE,
                                 stderr=subprocess.PIPE)
        # kill as soon as at least one seed has been committed but
        # (with six seeds pending) long before the campaign finishes
        deadline = time.monotonic() + 120
        try:
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    break
                if journal.exists() and \
                        journal.read_bytes().count(b"\n") >= 2:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("child never committed a seed")
        finally:
            if child.poll() is None:
                child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        out = child.stdout.read()
        child.stdout.close()
        child.stderr.close()
        assert b"COMPLETED" not in out, \
            "campaign finished before the kill; nothing was interrupted"

        committed = scan_frames(journal)
        done_before = [r["seed"] for r in committed.records
                       if r.get("kind") == "seed"]
        assert done_before, "kill landed before any seed committed"
        assert len(done_before) < len(SEEDS)

        # resume in this process: recorded seeds are reused, the rest
        # computed fresh -- and the merged report matches a run that
        # was never interrupted, bit for bit
        resumed = run_replications(
            "limewire", seeds=SEEDS,
            config=CampaignConfig(seed=0, duration_days=0.05),
            profile=PROFILE, workers=1, checkpoint=journal)
        reference, ref_journal = reference_report(tmp_path)
        assert resumed.completed_seeds == reference.completed_seeds
        for name, summary in reference.metrics.items():
            assert resumed.metrics[name].values == summary.values, name

        # journal-level identity: the seed records (checksummed frames)
        # match the uninterrupted journal's
        resumed_scan = scan_frames(journal)
        ref_scan = scan_frames(ref_journal)
        assert [r for r in resumed_scan.records
                if r.get("kind") == "seed"] == \
            [r for r in ref_scan.records if r.get("kind") == "seed"]

        # committed seeds were reused, not recomputed: their records
        # are literally the pre-kill bytes
        resumed_seeds = [r["seed"] for r in resumed_scan.records
                         if r.get("kind") == "seed"]
        assert resumed_seeds[:len(done_before)] == done_before

    def test_sigkill_mid_append_torn_line_recovers(self, tmp_path):
        # deterministic variant: emulate a kill landing mid-write by
        # truncating the final record to a fragment, then resume
        reference, ref_journal = reference_report(tmp_path)
        torn = tmp_path / "torn.jsonl"
        data = ref_journal.read_bytes()
        torn.write_bytes(data[: int(len(data) * 0.8)])
        resumed = run_replications(
            "limewire", seeds=SEEDS,
            config=CampaignConfig(seed=0, duration_days=0.05),
            profile=PROFILE, workers=1, checkpoint=torn)
        for name, summary in reference.metrics.items():
            assert resumed.metrics[name].values == summary.values, name
        assert scan_frames(torn).healthy


def digested_campaign(seed):
    """(EventDigest, store sha256) for one tiny campaign -- picklable."""
    from repro.core.measure.campaign import (CampaignConfig,
                                             run_limewire_campaign)
    from repro.devtools.sanitizer import EventDigest
    from repro.peers.profiles import GnutellaProfile
    from repro.telemetry import CampaignTelemetry

    digest = EventDigest()
    telemetry = CampaignTelemetry()
    telemetry.kernel.on_event = digest.on_event
    result = run_limewire_campaign(
        CampaignConfig(seed=seed, duration_days=0.05),
        profile=GnutellaProfile().scaled(0.3), telemetry=telemetry)
    return digest.hexdigest(), result.store.content_digest()


class TestSupervisedBitIdentity:
    def test_supervised_digests_match_in_process(self):
        # the acceptance bar: a supervised worker's campaign is the
        # same campaign -- full kernel event stream (EventDigest) and
        # collected bytes (measurement-store sha256), not just the
        # headline metrics
        from repro.resilience import SupervisionPolicy, supervised_map

        seeds = [1, 2]
        expected = [digested_campaign(seed) for seed in seeds]
        supervised = supervised_map(
            digested_campaign, seeds, workers=2,
            policy=SupervisionPolicy(deadline_s=300, stall_timeout_s=30))
        assert supervised == expected


SHARD_SEEDS = (1, 2, 3)


def sharded_config(fault_plan=None):
    return CampaignConfig(seed=0, duration_days=0.02, drain_s=300.0,
                          shards=2, fault_plan=fault_plan)


def run_sharded_replications(fault_plan=None, checkpoint=None):
    return run_replications(
        "limewire", seeds=SHARD_SEEDS, config=sharded_config(fault_plan),
        profile=PROFILE, workers=1, checkpoint=checkpoint,
        shard_executor="process")


class TestShardWorkerKill:
    """A SIGKILLed shard worker takes the retry/quarantine path.

    The ShardCrash host clause makes the executor SIGKILL its own
    shard-1 worker a few barrier rounds into the campaign; the
    replication supervisor must treat the dead seed like any crashed
    worker -- retry once, quarantine if the retry dies too -- and the
    surviving seeds' results must be byte-identical to a run with no
    chaos at all (host clauses are non-scientific by construction).
    """

    def test_killed_shard_retries_to_clean_result(self, tmp_path):
        from repro.faults import FaultPlan, ShardCrash

        clean = run_sharded_replications()
        journal = tmp_path / "shardkill.jsonl"
        plan = FaultPlan(shard_crash=ShardCrash(
            seeds=(2,), attempts=1, shard=1, after_windows=3))
        report = run_sharded_replications(plan, checkpoint=journal)
        # attempt 0 died mid-window, the retry (attempt 1) completed
        assert not report.degraded
        assert report.completed_seeds == SHARD_SEEDS
        for name, summary in clean.metrics.items():
            assert report.metrics[name].values == summary.values, name
        # per-shard fingerprints landed in the checkpoint journal
        records = scan_frames(journal).records
        by_seed = {r["seed"]: r for r in records if r.get("kind") == "seed"}
        assert set(by_seed) == set(SHARD_SEEDS)
        for seed in SHARD_SEEDS:
            shards = by_seed[seed]["shards"]
            assert [entry["shard"] for entry in shards] == [0, 1]

    def test_killed_shard_quarantines_after_retry(self):
        from repro.faults import FaultPlan, ShardCrash

        clean = run_sharded_replications()
        plan = FaultPlan(shard_crash=ShardCrash(
            seeds=(2,), attempts=2, shard=1, after_windows=3))
        report = run_sharded_replications(plan)
        # both attempts died: seed 2 quarantined, the campaign degrades
        assert report.degraded
        assert report.completed_seeds == (1, 3)
        assert [failure.seed for failure in report.failures] == [2]
        assert "shard 1" in report.failures[0].error
        # the surviving seeds' metrics are untouched by the chaos
        for name, summary in clean.metrics.items():
            survivors = (summary.values[0], summary.values[2])
            assert report.metrics[name].values == survivors, name
