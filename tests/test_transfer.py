"""Tests for the HTTP transfer substrate."""

import pytest

from repro.files.payload import Blob
from repro.transfer.http import (HttpError, HttpRequest, HttpResponse,
                                 gnutella_index_request,
                                 gnutella_urn_request, openft_request)
from repro.transfer.server import busy, not_found, parse_target, serve_request

BLOB = Blob(content_key="t", extension="exe", size=58_368)


class TestRequestCodec:
    def test_roundtrip(self):
        request = gnutella_urn_request("urn:sha1:ABCDEF")
        decoded = HttpRequest.decode(request.encode())
        assert decoded.method == "GET"
        assert decoded.target == "/uri-res/N2R?urn:sha1:ABCDEF"
        assert decoded.header("user-agent").startswith("LimeWire")

    def test_index_request_target(self):
        request = gnutella_index_request(42, "setup.exe")
        assert request.target == "/get/42/setup.exe"

    def test_openft_request_target(self):
        request = openft_request("ab" * 16)
        assert request.target == f"/?md5={'ab' * 16}"

    def test_malformed_request_line(self):
        with pytest.raises(HttpError):
            HttpRequest.decode(b"GETnothing\r\n\r\n")

    def test_missing_terminator(self):
        with pytest.raises(HttpError):
            HttpRequest.decode(b"GET / HTTP/1.1\r\n")


class TestResponseCodec:
    def test_roundtrip(self):
        response = HttpResponse(status=200, reason="OK",
                                headers={"Content-Length": "100"})
        decoded = HttpResponse.decode(response.encode())
        assert decoded.ok
        assert decoded.content_length() == 100

    def test_bad_status(self):
        with pytest.raises(HttpError):
            HttpResponse.decode(b"HTTP/1.1 abc OK\r\n\r\n")

    def test_bad_content_length(self):
        response = HttpResponse(status=200, reason="OK",
                                headers={"Content-Length": "abc"})
        with pytest.raises(HttpError):
            HttpResponse.decode(response.encode()).content_length()

    def test_no_content_length(self):
        assert HttpResponse(status=404, reason="NF").content_length() is None


class TestParseTarget:
    def test_urn(self):
        request = gnutella_urn_request("urn:sha1:XYZ")
        assert parse_target(request) == ("urn", "urn:sha1:XYZ")

    def test_index(self):
        request = gnutella_index_request(7, "a%20b.exe")
        assert parse_target(request) == ("index", "a b.exe")

    def test_md5(self):
        request = openft_request("cd" * 16)
        assert parse_target(request) == ("md5", "cd" * 16)

    def test_unknown(self):
        with pytest.raises(HttpError):
            parse_target(HttpRequest(method="GET", target="/index.html"))

    def test_malformed_get(self):
        with pytest.raises(HttpError):
            parse_target(HttpRequest(method="GET", target="/get/abc"))


class TestServeRequest:
    def test_success_gnutella(self):
        request = gnutella_urn_request(BLOB.sha1_urn())
        response, blob = serve_request(
            request, resolve=lambda key: BLOB if key == BLOB.sha1_urn()
            else None)
        assert response.ok
        assert blob is BLOB
        assert response.content_length() == BLOB.size
        assert response.header("X-Gnutella-Content-URN") == BLOB.sha1_urn()

    def test_success_openft_hash_header(self):
        request = openft_request(BLOB.md5_hex())
        response, blob = serve_request(request, resolve=lambda key: BLOB)
        assert response.ok
        assert response.header("X-OpenftHash") == f"md5:{BLOB.md5_hex()}"

    def test_not_found(self):
        request = gnutella_urn_request("urn:sha1:MISSING")
        response, blob = serve_request(request, resolve=lambda key: None)
        assert response.status == 404
        assert blob is None

    def test_busy(self):
        request = gnutella_urn_request(BLOB.sha1_urn())
        response, blob = serve_request(request, resolve=lambda key: BLOB,
                                       is_busy=True)
        assert response.status == 503
        assert blob is None
        assert response.header("Retry-After")

    def test_bad_method(self):
        request = HttpRequest(method="POST", target="/uri-res/N2R?x")
        response, _ = serve_request(request, resolve=lambda key: None)
        assert response.status == 405

    def test_bad_target(self):
        request = HttpRequest(method="GET", target="/favicon.ico")
        response, _ = serve_request(request, resolve=lambda key: None)
        assert response.status == 400

    def test_helpers(self):
        assert not_found().status == 404
        assert busy(30).header("Retry-After") == "30"
